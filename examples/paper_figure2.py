#!/usr/bin/env python3
"""Reproduce the paper's Figure 2: regions and equivalent access classes.

Compiles the exact example program from the paper and prints the region
tree with its equivalent access classes, alias table, and LCDD table —
the same structure the figure draws.

Run:  python examples/paper_figure2.py
"""

from repro import CompileOptions, compile_source
from repro.hli.tables import RefModKey, RegionType

SOURCE = """\
int a[10];
int b[10];
int sum;

void foo() {
    int i, j;
    for (i = 0; i < 10; i++) {
        sum = sum + a[i];
    }
    for (i = 0; i < 10; i++) {
        a[i] = b[0] + 1;
        for (j = 1; j < 10; j++) {
            b[j] = b[j] + b[j-1];
            a[i] = a[i] + sum;
        }
    }
}
"""


def main() -> None:
    print(SOURCE)
    comp = compile_source(SOURCE, "fig2.c", CompileOptions(schedule=False))
    entry = comp.hli.entry("foo")

    print("Line table (item ID, access type per source line):")
    for line in sorted(entry.line_table.entries):
        items = entry.line_table.entries[line].items
        rendered = "  ".join(f"{{{iid}:{t.name.lower()}}}" for iid, t in items)
        print(f"  line {line:2d}:  {rendered}")
    print()

    def show(region_id: int, indent: int = 0) -> None:
        r = entry.regions[region_id]
        pad = "  " * indent
        kind = "procedure" if r.region_type is RegionType.UNIT else "loop"
        print(f"{pad}Region {r.region_id} ({kind}, lines {r.line_start}..{r.line_end}):")
        for c in r.eq_classes:
            tag = "" if c.equiv_type.name == "DEFINITE" else "  (maybe)"
            members = c.member_items + [f"<class {x}>" for x in c.member_classes]
            print(f"{pad}  eq class {c.class_id}: {c.label:8s} members={members}{tag}")
        for a in r.alias_entries:
            print(f"{pad}  alias: classes {sorted(a.class_ids)}")
        for d in r.lcdd_entries:
            dist = d.distance if d.distance is not None else "?"
            print(
                f"{pad}  LCDD: {d.src_class} -> {d.dst_class} "
                f"[{d.dep_type.name.lower()}] distance {dist}"
            )
        for m in r.refmod_entries:
            key = "call" if m.key_kind is RefModKey.CALL_ITEM else "subregion"
            print(f"{pad}  REF/MOD {key} {m.key_id}: ref={m.ref_classes} mod={m.mod_classes}")
        for sub in r.sub_region_ids:
            show(sub, indent + 1)

    show(entry.root_region_id)

    print()
    print("Compare with the paper's Figure 2:")
    print("  Region 1 partitions everything into {sum, a[0..9], b[0..9]};")
    print("  Region 3 keeps b[0] separate from the merged (maybe) b class,")
    print("  related through the alias table; the j loop carries the")
    print("  b[j] -> b[j-1] dependence at distance 1.")


if __name__ == "__main__":
    main()
