#!/usr/bin/env python3
"""Figure 6 walkthrough: loop unrolling with HLI maintenance.

Shows the LCDD table of a recurrence loop before and after the back-end
unrolls it by 4: the distance-1 arc partially turns into
intra-iteration alias facts (copies k and k+1 now touch the same
location inside one unrolled iteration) and the crossing arc gets a
rescaled distance — then demonstrates the scheduling payoff.

Run:  python examples/unroll_and_maintain.py
"""

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.hli.tables import RegionType
from repro.machine.executor import execute
from repro.machine.superscalar import R10000Model

SOURCE = """\
double acc[512];
double weight[512];

int main() {
    int i, t;
    for (i = 0; i < 512; i++) {
        acc[i] = 1.0;
        weight[i] = 0.002 * i;
    }
    for (t = 0; t < 4; t++) {
        for (i = 1; i < 509; i++) {
            acc[i] = acc[i-1] * 0.5 + weight[i];
        }
    }
    return acc[256] > 0.0;
}
"""


def dump_loop_tables(comp, title: str) -> None:
    print(f"--- {title} ---")
    entry = comp.hli.entry("main")
    for rid in sorted(entry.regions):
        r = entry.regions[rid]
        if r.region_type is not RegionType.LOOP or not r.lcdd_entries:
            continue
        trip = r.loop_trip if r.loop_trip >= 0 else "?"
        print(f"  loop region {rid} (trip={trip}, step={r.loop_step}):")
        print(f"    {len(r.eq_classes)} equivalence classes, "
              f"{len(r.alias_entries)} alias entries")
        for d in r.lcdd_entries:
            dist = d.distance if d.distance is not None else "?"
            print(f"    LCDD {d.src_class} -> {d.dst_class} "
                  f"[{d.dep_type.name.lower()}] distance {dist}")
    print()


def main() -> None:
    plain = compile_source(SOURCE, "rec.c", CompileOptions(schedule=False))
    dump_loop_tables(plain, "HLI before unrolling")

    unrolled = compile_source(
        SOURCE, "rec.c", CompileOptions(mode=DDGMode.COMBINED, unroll=4, schedule=False)
    )
    stats = unrolled.opt_stats.unroll
    print(f"unrolled {stats.loops_unrolled} loop(s), cloned {stats.items_cloned} items\n")
    dump_loop_tables(unrolled, "HLI after unrolling by 4 (maintenance applied)")

    print("--- scheduling payoff on the R10000 model ---")
    for label, opts in (
        ("no unroll, gcc deps  ", CompileOptions(mode=DDGMode.GCC)),
        ("no unroll, hli deps  ", CompileOptions(mode=DDGMode.COMBINED)),
        ("unroll x4, gcc deps  ", CompileOptions(mode=DDGMode.GCC, unroll=4)),
        ("unroll x4, hli deps  ", CompileOptions(mode=DDGMode.COMBINED, unroll=4)),
    ):
        comp = compile_source(SOURCE, "rec.c", opts)
        res = execute(comp.rtl)
        cycles = R10000Model().time(res.trace).cycles
        print(f"  {label}: ret={res.ret}  cycles={cycles}")


if __name__ == "__main__":
    main()
