#!/usr/bin/env python3
"""Quickstart: compile a program through the full HLI pipeline.

Walks the paper's Figure 3 flow end to end:

  MiniC source -> front-end analysis -> HLI file
              -> back-end lowering  -> HLI import/mapping
              -> scheduling with/without HLI -> machine-model timing

Run:  python examples/quickstart.py
"""

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.hli.writer import format_hli
from repro.machine.executor import execute
from repro.machine.pipeline import R4600Model
from repro.machine.superscalar import R10000Model

SOURCE = """\
double u[400];
double w[400];
double v[400];

int main() {
    int i, t;
    double s1, s2;
    for (i = 0; i < 400; i++) {
        u[i] = 0.01 * i;
        w[i] = 1.0;
        v[i] = 0.5;
    }
    s1 = 0.0;
    s2 = 0.0;
    for (t = 0; t < 4; t++) {
        for (i = 1; i < 399; i++) {
            w[i] = w[i] * 0.99 + u[i];
            s1 = s1 + u[i-1] * v[i];
            s2 = s2 + u[i+1] * v[i-1];
        }
    }
    return (s1 + s2) > 0.0;
}
"""


def main() -> None:
    print("=== 1. Compile with the Figure 5 combined dependence mode ===")
    comp = compile_source(SOURCE, "sweep.c", CompileOptions(mode=DDGMode.COMBINED))

    print("\n--- The generated HLI file (line table + region tables) ---")
    print(format_hli(comp.hli))

    stats = comp.total_dep_stats()
    print("--- Dependence statistics (first scheduling pass) ---")
    print(f"  total memory dependence queries : {stats.total_tests}")
    print(f"  GCC local analyzer answers yes  : {stats.gcc_yes}")
    print(f"  HLI answers yes                 : {stats.hli_yes}")
    print(f"  combined (AND) answers yes      : {stats.combined_yes}")
    print(f"  dependence edge reduction       : {stats.reduction * 100:.0f}%")

    print("\n=== 2. Execute both schedules and time them ===")
    cycles = {}
    for mode in (DDGMode.GCC, DDGMode.COMBINED):
        c = compile_source(SOURCE, "sweep.c", CompileOptions(mode=mode))
        res = execute(c.rtl)
        cycles[mode.value] = (
            R4600Model().time(res.trace).cycles,
            R10000Model().time(res.trace).cycles,
        )
        print(f"  mode={mode.value:9s} ret={res.ret} "
              f"R4600={cycles[mode.value][0]} cyc  R10000={cycles[mode.value][1]} cyc")

    for mi, name in ((0, "R4600"), (1, "R10000")):
        sp = cycles["gcc"][mi] / cycles["combined"][mi]
        print(f"  {name} speedup from HLI scheduling: {sp:.3f}x")


if __name__ == "__main__":
    main()
