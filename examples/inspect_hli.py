#!/usr/bin/env python3
"""Write, inspect, and query a binary HLI file (the Figure 1 layout).

Compiles a program, saves its HLI to disk in the binary interchange
format, re-opens it with the on-demand reader (the way the paper's
back-end reads HLI "function by function"), and runs the five basic
query functions against it.

Run:  python examples/inspect_hli.py [source.c]
"""

import sys
import tempfile
from pathlib import Path

from repro import CompileOptions, compile_source
from repro.hli.query import HLIQuery
from repro.hli.reader import HLIFileReader, save_hli
from repro.hli.sizes import size_report
from repro.hli.writer import format_entry

DEFAULT_SOURCE = """\
int histogram[64];
int samples[256];
int total;

void tally(int n) {
    int i, bucket;
    for (i = 0; i < n; i++) {
        bucket = samples[i] & 63;
        histogram[bucket] = histogram[bucket] + 1;
        total = total + 1;
    }
}

int main() {
    int i;
    for (i = 0; i < 256; i++) {
        samples[i] = i * 37;
    }
    tally(256);
    return total;
}
"""


def main() -> None:
    if len(sys.argv) > 1:
        source = Path(sys.argv[1]).read_text()
        name = sys.argv[1]
    else:
        source, name = DEFAULT_SOURCE, "histogram.c"

    comp = compile_source(source, name, CompileOptions(schedule=False))

    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "program.hli"
        nbytes = save_hli(comp.hli, path)
        rep = size_report(comp.hli, source)
        print(f"wrote {path.name}: {nbytes} bytes "
              f"({rep.bytes_per_line:.1f} bytes per source line, "
              f"{rep.code_lines} code lines)")
        print()

        reader = HLIFileReader.open(path)
        print(f"program units in the file: {reader.unit_names()}")
        print()

        for unit in reader.unit_names():
            entry = reader.entry(unit)  # decoded on demand
            print(format_entry(entry))

        # exercise the query API on the first unit with items
        for unit in reader.unit_names():
            entry = reader.entry(unit)
            items = [iid for iid, _ in entry.line_table.all_items()]
            if len(items) < 2:
                continue
            q = HLIQuery(entry)
            a, b = items[0], items[1]
            print(f"query demo on unit '{unit}':")
            print(f"  get_equiv_acc({a}, {b})  = {q.get_equiv_acc(a, b).value}")
            print(f"  get_alias({a}, {b})      = {q.get_alias(a, b).value}")
            print(f"  get_lcdd({a}, {b})       = {q.get_lcdd(a, b)}")
            info = q.get_region_info(a)
            print(f"  get_region_info({a})    = {info}")
            break


if __name__ == "__main__":
    main()
