#!/usr/bin/env python3
"""Domain scenario: why HLI matters for scientific stencil codes.

This is the workload class the paper's evaluation is built around
(tomcatv/swim-like relaxation kernels).  The script compiles a 2-D
Jacobi relaxation three ways — GCC-only dependence info, HLI-only, and
the Figure 5 combination — shows the dependence-edge reduction, dumps a
scheduled basic block so the instruction reordering is visible, and
times all three on both machine models.

Run:  python examples/stencil_scheduling.py
"""

from repro import CompileOptions, compile_source
from repro.backend.cfg import build_cfg
from repro.backend.ddg import DDGMode
from repro.machine.executor import execute
from repro.machine.pipeline import R4600Model
from repro.machine.superscalar import R10000Model

SOURCE = """\
double grid[1024];
double next[1024];

int main() {
    int i, j, sweep;
    for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) {
            grid[i * 32 + j] = 0.25 * i - 0.125 * j;
        }
    }
    for (sweep = 0; sweep < 4; sweep++) {
        for (i = 1; i < 31; i++) {
            for (j = 1; j < 31; j++) {
                next[i * 32 + j] = 0.25 * (grid[i * 32 + j - 1]
                    + grid[i * 32 + j + 1]
                    + grid[(i - 1) * 32 + j]
                    + grid[(i + 1) * 32 + j]);
            }
        }
        for (i = 1; i < 31; i++) {
            for (j = 1; j < 31; j++) {
                grid[i * 32 + j] = next[i * 32 + j];
            }
        }
    }
    return grid[16 * 32 + 16] < 1000.0;
}
"""


def biggest_block(comp):
    fn = comp.rtl.functions["main"]
    return max(build_cfg(fn).blocks, key=lambda b: len(b.insns))


def main() -> None:
    print("2-D Jacobi relaxation, compiled under three dependence modes\n")

    timings = {}
    for mode in (DDGMode.GCC, DDGMode.HLI, DDGMode.COMBINED):
        comp = compile_source(SOURCE, "jacobi.c", CompileOptions(mode=mode))
        stats = comp.total_dep_stats()
        res = execute(comp.rtl)
        t4600 = R4600Model().time(res.trace)
        t10k = R10000Model().time(res.trace)
        timings[mode.value] = (t4600.cycles, t10k.cycles)
        print(
            f"mode={mode.value:9s} queries={stats.total_tests:3d} "
            f"gcc_yes={stats.gcc_yes:2d} hli_yes={stats.hli_yes:2d} "
            f"combined_yes={stats.combined_yes:2d} | ret={res.ret} "
            f"R4600={t4600.cycles} R10000={t10k.cycles}"
        )
        if mode is DDGMode.COMBINED:
            print(f"\ndependence-edge reduction: {stats.reduction * 100:.0f}%")

    print("\nspeedups (GCC schedule / HLI-combined schedule):")
    for idx, machine in ((0, "R4600"), (1, "R10000")):
        sp = timings["gcc"][idx] / timings["combined"][idx]
        print(f"  {machine}: {sp:.3f}x")

    # Show the scheduler's freedom: dump the hottest block both ways.
    print("\n--- hottest basic block, GCC-only schedule ---")
    comp_gcc = compile_source(SOURCE, "jacobi.c", CompileOptions(mode=DDGMode.GCC))
    for insn in biggest_block(comp_gcc).insns[:18]:
        print("   ", insn)
    print("\n--- hottest basic block, HLI-combined schedule ---")
    comp_hli = compile_source(SOURCE, "jacobi.c", CompileOptions(mode=DDGMode.COMBINED))
    for insn in biggest_block(comp_hli).insns[:18]:
        print("   ", insn)
    print("\nNote how loads from grid[] migrate above the next[] store once")
    print("the HLI proves the two arrays (and neighbouring columns) disjoint.")


if __name__ == "__main__":
    main()
