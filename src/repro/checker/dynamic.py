"""Dynamic-trace auditing: ground truth from actual execution.

The static auditor only flags claims the oracle can *prove* wrong.  The
dynamic auditor goes the other way: it runs the compiled RTL on the
interpreter, splits the memory trace into basic-block execution windows
(the scope within which the scheduler reorders), and replays every
consumed ``get_equiv_acc`` verdict against the concrete addresses the
two references actually touched:

* ``NONE`` while both references hit the **same** byte address in one
  window — the scheduler could have produced wrong code (``HLI001``);
* ``DEFINITE`` while the addresses **differ** — a store-forwarding
  consumer would have produced a wrong value (``HLI008``).

Both are witnesses, not heuristics: a finding comes with the concrete
address(es) observed.  Windows are capped (quadratic check) — the cap
is reported through ``claims_checked['trace_windows']``.
"""

from __future__ import annotations

from ..backend.rtl import BRANCH_OPS, Opcode
from ..hli.query import EquivAcc, HLIQuery
from ..machine.executor import execute
from .rules import (
    Diagnostic,
    HLI001_UNSOUND_NODEP,
    HLI008_UNSOUND_DEFINITE,
    LintReport,
)

#: Default quadratic-check budget: execution windows examined per run.
MAX_WINDOWS = 50_000


def block_instances(trace):
    """Split a dynamic trace into basic-block execution windows."""
    window = []
    for ev in trace:
        op = ev.insn.op
        if op is Opcode.LABEL:
            if window:
                yield window
            window = []
            continue
        if op in BRANCH_OPS or op is Opcode.CALL:
            window.append(ev)
            yield window
            window = []
            continue
        window.append(ev)
    if window:
        yield window


def dynamic_audit(comp, input_text: str = "", max_windows: int = MAX_WINDOWS) -> LintReport:
    """Execute ``comp.rtl`` and audit equivalence claims against the trace."""
    report = LintReport(target=comp.filename)
    res = execute(comp.rtl, input_text=input_text)

    insn_unit: dict[int, str] = {}
    for name, fn in comp.rtl.functions.items():
        for insn in fn.insns:
            insn_unit[insn.uid] = name
    # fresh queries: auditing must not depend on consumer-side staleness
    queries = {
        name: HLIQuery(entry) for name, entry in comp.hli.entries.items()
    }
    seen: set[tuple] = set()  # report each (unit, pair, rule) once

    windows = 0
    for window in block_instances(res.trace):
        windows += 1
        if windows > max_windows:
            break
        mems = [
            ev for ev in window if ev.insn.mem is not None and ev.addr is not None
        ]
        for i in range(len(mems)):
            for j in range(i + 1, len(mems)):
                a, b = mems[i], mems[j]
                if not (a.insn.mem.is_store or b.insn.mem.is_store):
                    continue
                ia, ib = a.insn.hli_item, b.insn.hli_item
                if ia is None or ib is None:
                    continue
                unit = insn_unit.get(a.insn.uid)
                if unit is None or insn_unit.get(b.insn.uid) != unit:
                    continue
                query = queries.get(unit)
                if query is None:
                    continue
                verdict = query.get_equiv_acc(ia, ib)
                if verdict is EquivAcc.NONE:
                    report.count_claim("dynamic_none")
                    if a.addr == b.addr:
                        key = (unit, min(ia, ib), max(ia, ib), "none")
                        if key in seen:
                            continue
                        seen.add(key)
                        report.add(
                            Diagnostic(
                                rule=HLI001_UNSOUND_NODEP,
                                unit=unit,
                                line=a.insn.line,
                                message=(
                                    f"items {ia} (line {a.insn.line}) and {ib} "
                                    f"(line {b.insn.line}) declared independent "
                                    f"but both touched address {a.addr:#x} in "
                                    "one block instance"
                                ),
                                source="dynamic",
                            )
                        )
                elif verdict is EquivAcc.DEFINITE:
                    report.count_claim("dynamic_definite")
                    if a.addr != b.addr:
                        key = (unit, min(ia, ib), max(ia, ib), "definite")
                        if key in seen:
                            continue
                        seen.add(key)
                        report.add(
                            Diagnostic(
                                rule=HLI008_UNSOUND_DEFINITE,
                                unit=unit,
                                line=a.insn.line,
                                message=(
                                    f"items {ia} and {ib} declared DEFINITE "
                                    f"but touched {a.addr:#x} vs {b.addr:#x}"
                                ),
                                source="dynamic",
                            )
                        )
    report.count_claim("trace_windows", windows)
    return report
