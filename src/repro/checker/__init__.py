"""repro.checker — static-analysis auditing of the HLI (``hli-lint``).

The back-end *trusts* front-end HLI facts to delete dependence edges
(paper Section 3.2.2) and keeps the tables consistent under CSE / LICM /
unrolling by in-place maintenance (Section 3.2.3).  Nothing in the base
pipeline independently checks that the facts it consumes are still
sound.  This package adds that layer, in three tiers:

* :mod:`repro.checker.dataflow` — a generic iterative (worklist)
  dataflow framework over the back-end CFG/RTL, with reaching
  definitions, liveness, and available-loads instances.  Reusable by
  future optimizer passes.
* :mod:`repro.checker.oracle` — an independent, conservative dependence
  oracle derived from that framework.  It never reads the HLI, which is
  what makes it a *sound baseline*: anything it proves contradicts an
  HLI claim is a genuine inconsistency.
* :mod:`repro.checker.lint` / :mod:`repro.checker.rules` /
  :mod:`repro.checker.dynamic` / :mod:`repro.checker.cli` — ``hli-lint``
  itself: a rule-based auditor that replays every claim the back-end
  consumes (equivalent-access NONE verdicts, call REF/MOD effects,
  eq-class membership, LCDD distances, mapping-table consistency) and
  emits structured diagnostics with stable rule IDs.

See ``docs/CHECKER.md`` for the rule catalogue and exit codes.
"""

from .dataflow import (
    AvailableLoads,
    DataflowProblem,
    DataflowResult,
    Direction,
    Liveness,
    ReachingDefinitions,
    solve,
)
from .dynamic import dynamic_audit
from .lint import HLILinter, lint_compilation
from .oracle import CallEffectOracle, DependenceOracle, DepVerdict
from .rules import Diagnostic, LintReport, Rule, RULES, Severity
from .wplint import lint_whole_program

__all__ = [
    "AvailableLoads",
    "CallEffectOracle",
    "DataflowProblem",
    "DataflowResult",
    "DependenceOracle",
    "DepVerdict",
    "Diagnostic",
    "Direction",
    "HLILinter",
    "LintReport",
    "Liveness",
    "ReachingDefinitions",
    "Rule",
    "RULES",
    "Severity",
    "dynamic_audit",
    "lint_compilation",
    "lint_whole_program",
    "solve",
]
