"""Whole-program lint: audit the linked image against independent oracles.

The per-unit ``hli-lint`` (:mod:`repro.checker.lint`) replays HLI claims
inside one translation unit.  This module audits the artifacts only the
*link step* produces — the link table, the cross-module summaries, and
the summary/HLI generation bindings — with the same philosophy: every
check recomputes its reference independently of the code under audit, so
a corrupted linker cannot vouch for itself.

Rules (stable IDs, catalogued in :mod:`repro.checker.rules`):

* **HLI009** — *summary soundness.*  A naive whole-program Kleene
  fixpoint (no SCC decomposition, no ordering cleverness) is recomputed
  from the per-unit local summaries; every linked summary must cover its
  reference.  Catches dropped/truncated summaries — the corruption that
  lets a unit delete a real cross-module DDG edge.
* **HLI010** — *link-table consistency.*  The link table is rebuilt from
  the unit symbol tables and compared entry by entry.  Catches
  symbol-resolution corruption (e.g. two entries swapping their defining
  units).
* **HLI011** — *fixpoint convergence.*  One more transfer application to
  each linked summary must be a no-op, and every summary must still
  cover its own local effects.  Catches a fixpoint that stopped early.
* **HLI012** — *summary staleness.*  The generation each summary was
  recorded against must equal the owning HLI entry's current generation
  — the link-time analog of the paper's query-staleness protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..linker.summary import from_local, transfer
from ..linker.table import build_link_table
from .rules import (
    HLI009_SUMMARY_UNSOUND,
    HLI010_LINK_TABLE,
    HLI011_SCC_NONCONVERGED,
    HLI012_STALE_SUMMARY,
    Diagnostic,
    LintReport,
    Rule,
)

if TYPE_CHECKING:
    from ..driver.wpa import WholeProgramResult

__all__ = ["lint_whole_program"]


def lint_whole_program(wp: "WholeProgramResult") -> LintReport:
    """Audit a whole-program compilation; findings are link-level."""
    report = LintReport(target="<whole-program>")
    _check_summary_soundness(wp, report)
    _check_link_table(wp, report)
    _check_convergence(wp, report)
    _check_generations(wp, report)
    return report


def _emit(report: LintReport, rule: Rule, unit: str, message: str) -> None:
    report.add(Diagnostic(rule=rule, unit=unit, line=0, message=message, source="static"))


# -- HLI009: summary soundness vs an independent recompute ---------------------


def _check_summary_soundness(wp: "WholeProgramResult", report: LintReport) -> None:
    locals_by_name = {
        name: local for u in wp.link.units for name, local in u.locals.items()
    }
    reference = {name: from_local(local) for name, local in locals_by_name.items()}
    changed = True
    while changed:
        changed = False
        for name in sorted(reference):
            if transfer(reference[name], locals_by_name[name], reference):
                changed = True
    for name in sorted(reference):
        report.count_claim("wp-summary")
        linked = wp.link.summaries.get(name)
        if linked is None:
            _emit(
                report,
                HLI009_SUMMARY_UNSOUND,
                name,
                "no linked summary for a defined function",
            )
            continue
        if not linked.covers(reference[name]):
            _emit(
                report,
                HLI009_SUMMARY_UNSOUND,
                name,
                f"linked summary [{linked.fingerprint()}] does not cover the "
                f"reference recompute [{reference[name].fingerprint()}]",
            )


# -- HLI010: link table vs a rebuild -------------------------------------------


def _check_link_table(wp: "WholeProgramResult", report: LintReport) -> None:
    rebuilt = build_link_table(wp.link.units)
    have, want = wp.link.table.symbols, rebuilt.symbols
    for name in sorted(set(have) | set(want)):
        report.count_claim("wp-link-symbol")
        a, b = have.get(name), want.get(name)
        if a is None or b is None:
            which = "missing from" if a is None else "not derivable from"
            _emit(
                report,
                HLI010_LINK_TABLE,
                name,
                f"link-table entry {which} the unit symbol tables",
            )
        elif a != b:
            _emit(
                report,
                HLI010_LINK_TABLE,
                name,
                f"link-table entry diverged: have defined_in={a.defined_in!r} "
                f"kind={a.kind} size={a.size}, rebuild says "
                f"defined_in={b.defined_in!r} kind={b.kind} size={b.size}",
            )


# -- HLI011: fixpoint convergence ----------------------------------------------


def _check_convergence(wp: "WholeProgramResult", report: LintReport) -> None:
    locals_by_name = {
        name: local for u in wp.link.units for name, local in u.locals.items()
    }
    for name in sorted(wp.link.summaries):
        local = locals_by_name.get(name)
        if local is None:
            continue
        report.count_claim("wp-convergence")
        linked = wp.link.summaries[name]
        probe = linked.copy()
        if transfer(probe, local, wp.link.summaries):
            _emit(
                report,
                HLI011_SCC_NONCONVERGED,
                name,
                "one more transfer application still grows the summary "
                f"(fixpoint stopped early): [{linked.fingerprint()}] -> "
                f"[{probe.fingerprint()}]",
            )
        elif not linked.covers(from_local(local)):
            _emit(
                report,
                HLI011_SCC_NONCONVERGED,
                name,
                "linked summary lost the function's own local effects",
            )


# -- HLI012: summary generation staleness --------------------------------------


def _check_generations(wp: "WholeProgramResult", report: LintReport) -> None:
    for name in sorted(wp.summary_generations):
        summary = wp.link.summaries.get(name)
        if summary is None:
            continue
        comp = wp.units.get(summary.unit)
        if comp is None or comp.hli is None:
            continue
        entry = comp.hli.entries.get(name)
        if entry is None:
            continue
        report.count_claim("wp-generation")
        recorded = wp.summary_generations[name]
        if recorded != entry.generation:
            _emit(
                report,
                HLI012_STALE_SUMMARY,
                name,
                f"summary recorded against generation {recorded} but the "
                f"unit's HLI entry is at generation {entry.generation}",
            )
