"""``hli-lint`` command-line interface.

Usage::

    hli-lint file.c [file2.c ...] [options]
    hli-lint --corpus [options]            # audit the built-in benchmarks

Exit codes (stable contract, used by CI):

* ``0`` — every audited compilation is clean;
* ``1`` — at least one finding was emitted (after suppression);
* ``2`` — the tool itself failed (bad arguments, unreadable file,
  front-end compile error).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..backend.ddg import DDGMode
from ..driver.compile import CompileOptions, compile_source
from .dynamic import MAX_WINDOWS, dynamic_audit
from .lint import lint_compilation
from .rules import LintReport, resolve_rule

_MODES = {
    "gcc": [DDGMode.GCC],
    "hli": [DDGMode.HLI],
    "combined": [DDGMode.COMBINED],
    "all": list(DDGMode),
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="hli-lint",
        description="Audit the soundness of High-Level Information tables.",
    )
    p.add_argument("files", nargs="*", help="MiniC source files to audit")
    p.add_argument(
        "--corpus",
        action="store_true",
        help="audit every built-in benchmark instead of files",
    )
    p.add_argument(
        "--mode",
        choices=sorted(_MODES),
        default="combined",
        help="dependence mode(s) to compile under (default: combined)",
    )
    p.add_argument("--cse", action="store_true", help="run local CSE before auditing")
    p.add_argument("--licm", action="store_true", help="run LICM before auditing")
    p.add_argument(
        "--unroll",
        type=int,
        default=1,
        metavar="N",
        help="unroll innermost counted loops by N before auditing",
    )
    p.add_argument(
        "--dynamic",
        action="store_true",
        help="also execute each program and audit claims against the trace",
    )
    p.add_argument(
        "--max-windows",
        type=int,
        default=MAX_WINDOWS,
        metavar="N",
        help="trace windows examined by --dynamic (default: %(default)s)",
    )
    p.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="RULE[,RULE]",
        help="rule IDs to suppress (e.g. HLI007 or HLI001-unsound-nodep)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    return p


def _targets(args) -> list[tuple[str, str, str]]:
    """Yield ``(name, source, input_text)`` for every audit target."""
    out = []
    if args.corpus:
        from ..workloads.suite import BENCHMARKS

        for spec in BENCHMARKS:
            out.append((spec.name, spec.source, spec.input_text))
    for path in args.files:
        with open(path, "r") as f:
            out.append((path, f.read(), ""))
    return out


def run(argv: Optional[list[str]] = None) -> tuple[int, list[LintReport]]:
    """Parse args, audit every target, return (exit code, reports)."""
    return _run_parsed(build_parser().parse_args(argv))


def _run_parsed(args) -> tuple[int, list[LintReport]]:
    if not args.corpus and not args.files:
        print("hli-lint: no input (pass source files or --corpus)", file=sys.stderr)
        return 2, []
    suppress = [s for chunk in args.suppress for s in chunk.split(",") if s]
    try:
        for s in suppress:
            resolve_rule(s)
    except KeyError as exc:
        print(f"hli-lint: {exc.args[0]}", file=sys.stderr)
        return 2, []

    try:
        targets = _targets(args)
    except OSError as exc:
        print(f"hli-lint: {exc}", file=sys.stderr)
        return 2, []

    reports: list[LintReport] = []
    failed = False
    for name, source, input_text in targets:
        for mode in _MODES[args.mode]:
            opts = CompileOptions(
                mode=mode,
                cse=args.cse,
                licm=args.licm,
                unroll=args.unroll,
            )
            label = name if args.mode != "all" else f"{name} [{mode.value}]"
            try:
                comp = compile_source(source, name, opts)
            except Exception as exc:
                print(f"hli-lint: {label}: compile failed: {exc}", file=sys.stderr)
                return 2, reports
            report = lint_compilation(comp, suppress=suppress)
            report.target = label
            if args.dynamic:
                dyn = dynamic_audit(
                    comp, input_text=input_text, max_windows=args.max_windows
                )
                report.merge(dyn)
            reports.append(report)
            if not report.clean:
                failed = True
    return (1 if failed else 0), reports


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    code, reports = _run_parsed(args)
    if code == 2:
        return 2
    if args.fmt == "json":
        import json

        print(
            json.dumps(
                {
                    "clean": code == 0,
                    "targets": [json.loads(r.to_json()) for r in reports],
                },
                indent=2,
            )
        )
    else:
        for r in reports:
            print(r.format_text())
        n_claims = sum(sum(r.claims_checked.values()) for r in reports)
        n_findings = sum(len(r.diagnostics) for r in reports)
        print(
            f"hli-lint: {len(reports)} compilation(s), {n_claims} claims "
            f"replayed, {n_findings} finding(s)"
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
