"""Generic iterative dataflow framework over the back-end CFG.

A classic worklist solver parameterized by a :class:`DataflowProblem`:
direction (forward/backward), a meet operator, and per-instruction
transfer functions.  Facts are immutable ``frozenset`` values, so the
solver can compare and cache them freely.

Three standard problems are provided, each over the RTL of one
function's :class:`~repro.backend.cfg.CFG`:

* :class:`ReachingDefinitions` — which register-writing instructions may
  reach a program point (union meet);
* :class:`Liveness`            — which pseudo registers are live
  (backward, union meet);
* :class:`AvailableLoads`      — which statically resolved memory
  locations hold an already-loaded value (intersection meet).

These are deliberately HLI-free: the checker's dependence oracle
(:mod:`repro.checker.oracle`) and future optimizer passes build on them
without consuming any front-end facts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..backend.cfg import CFG, BasicBlock
from ..backend.rtl import Insn, Opcode


class Direction(enum.Enum):
    FORWARD = "forward"
    BACKWARD = "backward"


class DataflowProblem:
    """One dataflow problem: lattice + transfer functions.

    Subclasses set :attr:`direction` and implement :meth:`boundary`
    (the fact entering the CFG), :meth:`top` (the initial interior
    fact), :meth:`meet`, and :meth:`transfer_insn`.
    """

    direction: Direction = Direction.FORWARD

    def boundary(self) -> frozenset:
        """Fact at the entry (forward) or exit (backward) of the CFG."""
        return frozenset()

    def top(self) -> frozenset:
        """Initial optimistic fact for interior blocks."""
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        """Combine facts along confluent edges (default: union)."""
        return a | b

    def transfer_insn(self, insn: Insn, fact: frozenset) -> frozenset:
        """Fact after (forward) / before (backward) one instruction."""
        return fact

    def transfer_block(self, block: BasicBlock, fact: frozenset) -> frozenset:
        insns = block.insns
        if self.direction is Direction.BACKWARD:
            insns = list(reversed(insns))
        for insn in insns:
            fact = self.transfer_insn(insn, fact)
        return fact


@dataclass
class DataflowResult:
    """Per-block fixpoint facts of one solved problem."""

    problem: DataflowProblem
    cfg: CFG
    #: block index -> fact at block entry (forward) / exit (backward)
    in_facts: dict[int, frozenset] = field(default_factory=dict)
    #: block index -> fact at block exit (forward) / entry (backward)
    out_facts: dict[int, frozenset] = field(default_factory=dict)
    iterations: int = 0

    def insn_facts(self, block: BasicBlock) -> Iterator[tuple[Insn, frozenset]]:
        """Yield ``(insn, fact holding just before it)`` in program order.

        For backward problems the fact is the one holding just *after*
        the instruction (the direction facts flow from).
        """
        problem = self.problem
        if problem.direction is Direction.FORWARD:
            fact = self.in_facts[block.index]
            for insn in block.insns:
                yield insn, fact
                fact = problem.transfer_insn(insn, fact)
        else:
            fact = self.in_facts[block.index]
            pairs = []
            for insn in reversed(block.insns):
                pairs.append((insn, fact))
                fact = problem.transfer_insn(insn, fact)
            yield from reversed(pairs)


def _rpo(cfg: CFG) -> list[int]:
    """Reverse postorder over block indices from block 0."""
    seen: set[int] = set()
    order: list[int] = []

    def visit(idx: int) -> None:
        stack = [(idx, iter(cfg.blocks[idx].succs))]
        seen.add(idx)
        while stack:
            node, succs = stack[-1]
            advanced = False
            for s in succs:
                if s not in seen:
                    seen.add(s)
                    stack.append((s, iter(cfg.blocks[s].succs)))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    if cfg.blocks:
        visit(0)
    # unreachable blocks appended in index order for completeness
    for b in cfg.blocks:
        if b.index not in seen:
            order.append(b.index)
            seen.add(b.index)
    return list(reversed(order))


def solve(cfg: CFG, problem: DataflowProblem, max_iterations: int = 10_000) -> DataflowResult:
    """Run the worklist algorithm to a fixpoint.

    Deterministic: blocks are processed in reverse postorder (forward)
    or postorder (backward), and the worklist is kept sorted by that
    priority.
    """
    result = DataflowResult(problem=problem, cfg=cfg)
    if not cfg.blocks:
        return result

    forward = problem.direction is Direction.FORWARD
    order = _rpo(cfg)
    if not forward:
        order = list(reversed(order))
    priority = {b: i for i, b in enumerate(order)}

    def edges_in(idx: int) -> list[int]:
        block = cfg.blocks[idx]
        return block.preds if forward else block.succs

    # boundary blocks: no incoming edges in the flow direction
    boundary_fact = problem.boundary()
    for b in cfg.blocks:
        result.in_facts[b.index] = problem.top()
    for b in cfg.blocks:
        if not edges_in(b.index):
            result.in_facts[b.index] = boundary_fact
    for b in cfg.blocks:
        result.out_facts[b.index] = problem.transfer_block(b, result.in_facts[b.index])

    pending = set(priority)
    while pending:
        result.iterations += 1
        if result.iterations > max_iterations:
            raise RuntimeError("dataflow solver failed to converge")
        idx = min(pending, key=priority.__getitem__)
        pending.discard(idx)
        sources = edges_in(idx)
        if sources:
            fact = result.out_facts[sources[0]]
            for s in sources[1:]:
                fact = problem.meet(fact, result.out_facts[s])
        else:
            fact = boundary_fact
        out = problem.transfer_block(cfg.blocks[idx], fact)
        if fact != result.in_facts[idx] or out != result.out_facts[idx]:
            result.in_facts[idx] = fact
            result.out_facts[idx] = out
            block = cfg.blocks[idx]
            for nxt in block.succs if forward else block.preds:
                pending.add(nxt)
    return result


# ---------------------------------------------------------------------------
# Problem instances
# ---------------------------------------------------------------------------


#: Sentinel for definitions that reach from outside the function
#: (parameters, uninitialized reads).
ENTRY_DEF = -1


class ReachingDefinitions(DataflowProblem):
    """Which defining instructions (by ``uid``) may reach each point.

    Facts are frozensets of ``(reg_id, def_uid)`` pairs; ``def_uid`` is
    :data:`ENTRY_DEF` for values flowing in at function entry.
    """

    direction = Direction.FORWARD

    def __init__(self, cfg: CFG, param_regs: Optional[list] = None) -> None:
        self.cfg = cfg
        self._entry = frozenset((r.rid, ENTRY_DEF) for r in param_regs or [])

    def boundary(self) -> frozenset:
        return self._entry

    def transfer_insn(self, insn: Insn, fact: frozenset) -> frozenset:
        if insn.dst is None:
            return fact
        rid = insn.dst.rid
        return frozenset(d for d in fact if d[0] != rid) | {(rid, insn.uid)}

    # -- convenience -----------------------------------------------------------

    @staticmethod
    def defs_of(fact: frozenset, rid: int) -> set[int]:
        """UIDs of the definitions of register ``rid`` in ``fact``."""
        return {uid for r, uid in fact if r == rid}


class Liveness(DataflowProblem):
    """Which pseudo registers are live (backward union problem)."""

    direction = Direction.BACKWARD

    def __init__(self, cfg: CFG, live_out: Optional[list] = None) -> None:
        self.cfg = cfg
        self._exit = frozenset(r.rid for r in live_out or [])

    def boundary(self) -> frozenset:
        return self._exit

    def transfer_insn(self, insn: Insn, fact: frozenset) -> frozenset:
        if insn.dst is not None:
            fact = fact - {insn.dst.rid}
        uses = {r.rid for r in insn.src_regs()}
        return fact | uses


class AvailableLoads(DataflowProblem):
    """Which resolved memory locations hold an already-loaded value.

    Facts are frozensets of ``(symbol, offset, width)`` triples.  A load
    or store of a statically resolved address generates its location; a
    store kills overlapping (or unresolvable) locations; a call kills
    everything.  ``resolve`` maps an instruction to its resolved
    ``(symbol, offset)`` or ``None`` — by default only direct
    ``known_symbol`` addresses resolve, but the dependence oracle passes
    its reaching-definitions-based resolver here.
    """

    direction = Direction.FORWARD

    def __init__(
        self,
        cfg: CFG,
        universe: Optional[frozenset] = None,
        resolve: Optional[Callable[[Insn], Optional[tuple[str, int]]]] = None,
    ) -> None:
        self.cfg = cfg
        self.resolve = resolve or self._static_resolve
        if universe is None:
            locs = set()
            for block in cfg.blocks:
                for insn in block.insns:
                    loc = self._loc(insn)
                    if loc is not None:
                        locs.add(loc)
            universe = frozenset(locs)
        self.universe = universe

    @staticmethod
    def _static_resolve(insn: Insn) -> Optional[tuple[str, int]]:
        if insn.mem is not None and insn.mem.known_symbol is not None:
            if insn.mem.known_offset is None:
                return None
            return insn.mem.known_symbol, insn.mem.known_offset
        return None

    def _loc(self, insn: Insn) -> Optional[tuple[str, int, int]]:
        if insn.mem is None:
            return None
        resolved = self.resolve(insn)
        if resolved is None:
            return None
        sym, off = resolved
        return sym, off, insn.mem.width

    def top(self) -> frozenset:
        return self.universe

    def boundary(self) -> frozenset:
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer_insn(self, insn: Insn, fact: frozenset) -> frozenset:
        if insn.op is Opcode.CALL:
            return frozenset()
        if insn.mem is None:
            return fact
        loc = self._loc(insn)
        if insn.mem.is_store:
            if loc is None:
                return frozenset()  # unresolved store may clobber anything
            sym, off, width = loc
            survivors = frozenset(
                (s, o, w)
                for s, o, w in fact
                if s != sym or o + w <= off or off + width <= o
            )
            return survivors | {loc}
        if loc is None:
            return fact
        return fact | {loc}
