"""``hli-lint`` rule catalogue and structured diagnostics.

Every finding carries a *stable rule ID* (``HLI001`` … ``HLI012``), a
severity, the unit (function) and source line it anchors to, a message,
and a fix hint.  Rule IDs are part of the tool's contract: tests, CI
gates, and suppression lists key on them, so existing IDs must never be
renumbered — add new rules at the end.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional


class Severity(enum.Enum):
    ERROR = "error"  # HLI claim provably unsound → wrong code possible
    WARNING = "warning"  # table inconsistency; conservative fallback still safe
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Rule:
    """One audit rule: stable ID plus catalogue metadata."""

    rule_id: str
    title: str
    severity: Severity
    hint: str

    def __str__(self) -> str:
        return self.rule_id


HLI001_UNSOUND_NODEP = Rule(
    "HLI001-unsound-nodep",
    "get_equiv_acc answered NONE for references that provably overlap",
    Severity.ERROR,
    "rebuild the equivalence classes for this unit (or rerun TBLCONST); "
    "the scheduler may have reordered conflicting references",
)
HLI002_UNSOUND_CALL_NODEP = Rule(
    "HLI002-unsound-call-nodep",
    "get_call_acc omitted an effect the callee provably has",
    Severity.ERROR,
    "recompute the REF/MOD summary of the callee; CSE/LICM may have kept "
    "a value live across a call that clobbers it",
)
HLI003_EQCLASS_MEMBERSHIP = Rule(
    "HLI003-eqclass-membership",
    "equivalence-class membership disagrees with the front-end analysis",
    Severity.ERROR,
    "an item was merged into (or dropped from) the wrong class; rerun "
    "TBLCONST for this unit",
)
HLI004_LCDD_DISTANCE = Rule(
    "HLI004-lcdd-distance",
    "loop-carried dependence table is inconsistent",
    Severity.ERROR,
    "an LCDD arc was dropped, retyped, or its distance altered; distances "
    "may only be rewritten by the Figure 6 unroll maintenance",
)
HLI005_REFMOD_SUMMARY = Rule(
    "HLI005-refmod-summary",
    "call REF/MOD summary disagrees with the front-end analysis",
    Severity.ERROR,
    "a REF or MOD bit was dropped; rebuild the region's REF/MOD table",
)
HLI006_STALE_MAPPING = Rule(
    "HLI006-stale-mapping",
    "line-table / RTL mapping is stale",
    Severity.ERROR,
    "an instruction references an HLI item the line table or class tables "
    "no longer carry; apply the Section 3.2.3 maintenance calls for every "
    "reference the optimizer deletes, moves, or clones",
)
HLI007_STALE_QUERY = Rule(
    "HLI007-stale-query",
    "a consumer holds an HLIQuery older than the entry's generation",
    Severity.WARNING,
    "rebuild or refresh() the HLIQuery after HLI maintenance",
)
HLI008_UNSOUND_DEFINITE = Rule(
    "HLI008-unsound-definite",
    "get_equiv_acc answered DEFINITE for references that provably differ",
    Severity.ERROR,
    "a DEFINITE class contains references to distinct locations; "
    "store-forwarding consumers would produce wrong values",
)
HLI009_SUMMARY_UNSOUND = Rule(
    "HLI009-summary-unsound",
    "a linked REF/MOD summary under-approximates the whole-program reference",
    Severity.ERROR,
    "an interprocedural effect was lost between the local summaries and "
    "the linked image; rerun the link step (a unit's units may use the "
    "missing effect to delete a real cross-module DDG edge)",
)
HLI010_LINK_TABLE = Rule(
    "HLI010-link-table-inconsistent",
    "the link table disagrees with the units it was built from",
    Severity.ERROR,
    "symbol-resolution state was corrupted after reconciliation; rebuild "
    "the link table from the unit symbol tables",
)
HLI011_SCC_NONCONVERGED = Rule(
    "HLI011-scc-nonconverged",
    "the SCC fixpoint stopped before the summaries stabilized",
    Severity.ERROR,
    "applying one more transfer step still grows a summary (or a summary "
    "lost its own local effects); rerun the bottom-up fixpoint",
)
HLI012_STALE_SUMMARY = Rule(
    "HLI012-stale-summary",
    "a linked summary is bound to an outdated HLI generation",
    Severity.ERROR,
    "the per-unit HLI moved on after the summary was recorded; relink "
    "against the units' current generations",
)

RULES: dict[str, Rule] = {
    r.rule_id: r
    for r in (
        HLI001_UNSOUND_NODEP,
        HLI002_UNSOUND_CALL_NODEP,
        HLI003_EQCLASS_MEMBERSHIP,
        HLI004_LCDD_DISTANCE,
        HLI005_REFMOD_SUMMARY,
        HLI006_STALE_MAPPING,
        HLI007_STALE_QUERY,
        HLI008_UNSOUND_DEFINITE,
        HLI009_SUMMARY_UNSOUND,
        HLI010_LINK_TABLE,
        HLI011_SCC_NONCONVERGED,
        HLI012_STALE_SUMMARY,
    )
}


def resolve_rule(rule_id: str) -> Rule:
    """Look up a rule by full ID or bare ``HLI00x`` prefix."""
    rule = RULES.get(rule_id)
    if rule is not None:
        return rule
    for r in RULES.values():
        if r.rule_id.split("-", 1)[0] == rule_id:
            return r
    raise KeyError(f"unknown rule '{rule_id}' (known: {', '.join(sorted(RULES))})")


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding."""

    rule: Rule
    unit: str  # function name
    line: int  # source line (0 = whole unit)
    message: str
    #: which auditor produced it: "static", "rebuild", or "dynamic"
    source: str = "static"

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def format(self) -> str:
        loc = f"{self.unit}:{self.line}" if self.line else self.unit
        return (
            f"{self.rule.rule_id} [{self.severity.value}] {loc}: {self.message}"
            f"\n    hint: {self.rule.hint}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.rule_id,
            "severity": self.severity.value,
            "unit": self.unit,
            "line": self.line,
            "message": self.message,
            "source": self.source,
        }


@dataclass
class LintReport:
    """Everything one ``hli-lint`` run produced."""

    target: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: how many individual claims each audit replayed (coverage evidence)
    claims_checked: dict[str, int] = field(default_factory=dict)
    suppressed: int = 0

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def count_claim(self, kind: str, n: int = 1) -> None:
        self.claims_checked[kind] = self.claims_checked.get(kind, 0) + n

    def merge(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        for k, v in other.claims_checked.items():
            self.count_claim(k, v)
        self.suppressed += other.suppressed

    @property
    def findings(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (-d.severity.rank, d.rule.rule_id, d.unit, d.line),
        )

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def by_rule(self) -> dict[str, list[Diagnostic]]:
        out: dict[str, list[Diagnostic]] = {}
        for d in self.diagnostics:
            out.setdefault(d.rule.rule_id, []).append(d)
        return out

    def has_rule(self, rule: "Rule | str") -> bool:
        rule_id = rule.rule_id if isinstance(rule, Rule) else resolve_rule(rule).rule_id
        return any(d.rule.rule_id == rule_id for d in self.diagnostics)

    def format_text(self) -> str:
        lines = []
        header = self.target or "<compilation>"
        if self.clean:
            checked = sum(self.claims_checked.values())
            lines.append(f"{header}: clean ({checked} claims replayed)")
        else:
            lines.append(f"{header}: {len(self.diagnostics)} finding(s)")
            for d in self.findings:
                lines.append("  " + d.format().replace("\n", "\n  "))
        if self.suppressed:
            lines.append(f"  ({self.suppressed} finding(s) suppressed)")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "target": self.target,
                "clean": self.clean,
                "claims_checked": self.claims_checked,
                "suppressed": self.suppressed,
                "diagnostics": [d.to_dict() for d in self.findings],
            },
            indent=2,
        )


def filter_suppressed(
    report: LintReport, suppress: Optional[Iterable[str]]
) -> LintReport:
    """A copy of ``report`` with the given rule IDs removed (and counted)."""
    if not suppress:
        return report
    suppressed_ids = {resolve_rule(s).rule_id for s in suppress}
    out = LintReport(target=report.target, claims_checked=dict(report.claims_checked))
    out.suppressed = report.suppressed
    for d in report.diagnostics:
        if d.rule.rule_id in suppressed_ids:
            out.suppressed += 1
        else:
            out.add(d)
    return out
