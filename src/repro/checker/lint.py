"""``hli-lint`` — replay every HLI claim the back-end consumes.

The auditor combines three independent evidence sources:

1. **The dependence oracle** (:mod:`repro.checker.oracle`): HLI-free
   proofs over the RTL.  A ``get_equiv_acc`` ``NONE`` verdict between
   references the oracle proves MUST-overlap, or a ``DEFINITE`` verdict
   between references it proves DISJOINT, is flagged as unsound
   (``HLI001`` / ``HLI008``); likewise ``get_call_acc`` verdicts that
   omit a callee's provable must-effects (``HLI002``).
2. **Structural invariants** of the tables themselves — unique class
   membership, dangling class references, ill-formed LCDD arcs, and the
   line-table ↔ RTL mapping contract (``HLI003``–``HLI006``).  These run
   after maintenance too, which is where Section 3.2.3 bugs surface.
3. **Reference rebuild**: for a compilation whose entry is still at
   generation 0 (no maintenance applied), the front-end analysis is
   deterministic, so rebuilding the HLI from source must reproduce the
   tables bit-for-bit.  Any divergence is classified per table
   (``HLI003``/``HLI004``/``HLI005``/``HLI006``).

Dynamic-trace auditing (ground truth from execution) lives in
:mod:`repro.checker.dynamic`.
"""

from __future__ import annotations

from typing import Optional

from ..backend.rtl import Insn, Opcode, RTLFunction
from ..hli.query import CallAcc, EquivAcc, HLIQuery
from ..hli.tables import DepType, HLIEntry, ItemType, RegionEntry
from .oracle import CallEffectOracle, DependenceOracle, DepVerdict
from .rules import (
    Diagnostic,
    HLI001_UNSOUND_NODEP,
    HLI002_UNSOUND_CALL_NODEP,
    HLI003_EQCLASS_MEMBERSHIP,
    HLI004_LCDD_DISTANCE,
    HLI005_REFMOD_SUMMARY,
    HLI006_STALE_MAPPING,
    HLI007_STALE_QUERY,
    HLI008_UNSOUND_DEFINITE,
    LintReport,
    filter_suppressed,
)

#: Pair-replay budget per function; beyond it the auditor degrades to
#: same-basic-block pairs (what the scheduler actually consumes).
MAX_PAIRS_PER_FUNCTION = 200_000


def _expected_type(insn: Insn) -> ItemType:
    if insn.op is Opcode.CALL:
        return ItemType.CALL
    assert insn.mem is not None
    return ItemType.STORE if insn.mem.is_store else ItemType.LOAD


class HLILinter:
    """Audit one :class:`~repro.driver.compile.Compilation`."""

    def __init__(self, comp, max_pairs: int = MAX_PAIRS_PER_FUNCTION) -> None:
        self.comp = comp
        self.max_pairs = max_pairs
        self.report = LintReport(target=comp.filename)
        self._call_oracle = CallEffectOracle(comp.rtl)
        self._reference: Optional[dict[str, HLIEntry]] = None

    # -- entry point -----------------------------------------------------------

    def run(self) -> LintReport:
        for name, fn in self.comp.rtl.functions.items():
            entry = self.comp.hli.entries.get(name)
            if entry is None:
                continue
            query = HLIQuery(entry)
            self._check_consumer_queries(name, entry)
            self._check_structure(entry)
            self._check_mapping(fn, entry)
            self._replay_equiv_claims(fn, entry, query)
            self._replay_call_claims(fn, entry, query)
            if entry.generation == 0:
                self._check_against_reference(name, entry)
        return self.report

    # -- helpers ---------------------------------------------------------------

    def _emit(self, rule, entry: HLIEntry, line: int, message: str, source="static"):
        self.report.add(
            Diagnostic(
                rule=rule,
                unit=entry.unit_name,
                line=line,
                message=message,
                source=source,
            )
        )

    @staticmethod
    def _item_lines(entry: HLIEntry) -> dict[int, tuple[int, ItemType]]:
        out: dict[int, tuple[int, ItemType]] = {}
        for le in entry.line_table.entries.values():
            for iid, ty in le.items:
                out[iid] = (le.line, ty)
        return out

    # -- HLI007: consumers holding stale queries -------------------------------

    def _check_consumer_queries(self, name: str, entry: HLIEntry) -> None:
        query = self.comp.queries.get(name)
        self.report.count_claim("consumer_queries")
        if query is not None and query.is_stale:
            self._emit(
                HLI007_STALE_QUERY,
                entry,
                0,
                f"compilation query for unit '{name}' was built at generation "
                f"{query.generation} but the entry is at {entry.generation}",
            )

    # -- HLI003/HLI004/HLI005: structural invariants ---------------------------

    def _check_structure(self, entry: HLIEntry) -> None:
        item_lines = self._item_lines(entry)
        home: dict[int, int] = {}
        class_region: dict[int, int] = {}
        for region in entry.regions.values():
            for cls in region.eq_classes:
                if cls.class_id in class_region:
                    self._emit(
                        HLI003_EQCLASS_MEMBERSHIP,
                        entry,
                        region.line_start,
                        f"class {cls.class_id} defined in regions "
                        f"{class_region[cls.class_id]} and {region.region_id}",
                    )
                class_region[cls.class_id] = region.region_id
                for iid in cls.member_items:
                    self.report.count_claim("eqclass_items")
                    if iid in home:
                        self._emit(
                            HLI003_EQCLASS_MEMBERSHIP,
                            entry,
                            item_lines.get(iid, (region.line_start, None))[0],
                            f"item {iid} is a member of classes {home[iid]} "
                            f"and {cls.class_id}",
                        )
                    home[iid] = cls.class_id
        for region in entry.regions.values():
            valid_here = {c.class_id for c in region.eq_classes}
            for cls in region.eq_classes:
                for sub in cls.member_classes:
                    if sub not in class_region:
                        self._emit(
                            HLI003_EQCLASS_MEMBERSHIP,
                            entry,
                            region.line_start,
                            f"class {cls.class_id} lifts unknown class {sub}",
                        )
            for arc in region.lcdd_entries:
                self.report.count_claim("lcdd_arcs")
                if arc.src_class not in valid_here or arc.dst_class not in valid_here:
                    self._emit(
                        HLI004_LCDD_DISTANCE,
                        entry,
                        region.line_start,
                        f"LCDD arc {arc.src_class}->{arc.dst_class} references "
                        f"classes outside region {region.region_id}",
                    )
                if arc.distance is None and arc.dep_type is DepType.DEFINITE:
                    self._emit(
                        HLI004_LCDD_DISTANCE,
                        entry,
                        region.line_start,
                        f"DEFINITE LCDD arc {arc.src_class}->{arc.dst_class} "
                        "has unknown distance",
                    )
                if arc.distance is not None and arc.distance < 1:
                    self._emit(
                        HLI004_LCDD_DISTANCE,
                        entry,
                        region.line_start,
                        f"LCDD arc {arc.src_class}->{arc.dst_class} has "
                        f"non-positive distance {arc.distance}",
                    )
            for rm in region.refmod_entries:
                self.report.count_claim("refmod_entries")
                for cid in list(rm.ref_classes) + list(rm.mod_classes):
                    if cid not in valid_here:
                        self._emit(
                            HLI005_REFMOD_SUMMARY,
                            entry,
                            region.line_start,
                            f"REF/MOD entry for key {rm.key_id} references "
                            f"class {cid} outside region {region.region_id}",
                        )

    # -- HLI006: line-table / RTL mapping --------------------------------------

    def _check_mapping(self, fn: RTLFunction, entry: HLIEntry) -> None:
        item_lines = self._item_lines(entry)
        homed: set[int] = {
            iid
            for region in entry.regions.values()
            for cls in region.eq_classes
            for iid in cls.member_items
        }
        for insn in fn.insns:
            if insn.hli_item is None:
                continue
            if insn.mem is None and insn.op is not Opcode.CALL:
                continue
            self.report.count_claim("mapping_refs")
            info = item_lines.get(insn.hli_item)
            if info is None:
                self._emit(
                    HLI006_STALE_MAPPING,
                    entry,
                    insn.line,
                    f"instruction maps to item {insn.hli_item} which is no "
                    "longer in the line table",
                )
                continue
            line, ty = info
            if line != insn.line:
                self._emit(
                    HLI006_STALE_MAPPING,
                    entry,
                    insn.line,
                    f"item {insn.hli_item} is recorded on line {line} but the "
                    f"instruction carries line {insn.line}",
                )
            if ty is not _expected_type(insn):
                self._emit(
                    HLI006_STALE_MAPPING,
                    entry,
                    insn.line,
                    f"item {insn.hli_item} has access type {ty.name} but the "
                    f"instruction is a {_expected_type(insn).name}",
                )
            if insn.op is not Opcode.CALL and insn.hli_item not in homed:
                self._emit(
                    HLI006_STALE_MAPPING,
                    entry,
                    insn.line,
                    f"item {insn.hli_item} is in the line table but not in any "
                    "equivalence class",
                )

    # -- HLI001/HLI008: equivalent-access replay -------------------------------

    def _replay_equiv_claims(
        self, fn: RTLFunction, entry: HLIEntry, query: HLIQuery
    ) -> None:
        mems = [i for i in fn.insns if i.mem is not None and i.hli_item is not None]
        if not mems:
            return
        oracle = self._call_oracle.oracle_for(fn.name)
        if oracle is None:
            return
        n = len(mems)
        same_block_only = n * (n - 1) // 2 > self.max_pairs
        for x in range(n):
            a = mems[x]
            for y in range(x + 1, n):
                b = mems[y]
                assert a.mem is not None and b.mem is not None
                if not (a.mem.is_store or b.mem.is_store):
                    continue
                if same_block_only and oracle.block_of.get(
                    a.uid
                ) != oracle.block_of.get(b.uid):
                    continue
                self.report.count_claim("equiv_pairs")
                verdict = query.get_equiv_acc(a.hli_item, b.hli_item)
                if verdict is EquivAcc.NONE:
                    if oracle.classify(a, b) is DepVerdict.MUST:
                        self._emit(
                            HLI001_UNSOUND_NODEP,
                            entry,
                            a.line,
                            f"items {a.hli_item} (line {a.line}) and "
                            f"{b.hli_item} (line {b.line}) are declared "
                            f"independent but both access "
                            f"{oracle.addr_of(a).symbol}"
                            f"+{oracle.addr_of(a).offset}",
                        )
                elif verdict is EquivAcc.DEFINITE:
                    if oracle.classify(a, b) is DepVerdict.DISJOINT:
                        self._emit(
                            HLI008_UNSOUND_DEFINITE,
                            entry,
                            a.line,
                            f"items {a.hli_item} (line {a.line}) and "
                            f"{b.hli_item} (line {b.line}) are declared "
                            "same-location but provably access disjoint "
                            "storage",
                        )

    # -- HLI002: call REF/MOD replay -------------------------------------------

    def _replay_call_claims(
        self, fn: RTLFunction, entry: HLIEntry, query: HLIQuery
    ) -> None:
        calls = [
            i
            for i in fn.insns
            if i.op is Opcode.CALL and i.hli_item is not None and i.callee is not None
        ]
        mems = [i for i in fn.insns if i.mem is not None and i.hli_item is not None]
        if not calls or not mems:
            return
        oracle = self._call_oracle.oracle_for(fn.name)
        if oracle is None:
            return
        for call in calls:
            effects = self._call_oracle.must_effects(call.callee)
            if not effects.ref and not effects.mod:
                continue
            for mem in mems:
                self.report.count_claim("call_pairs")
                acc = query.get_call_acc(mem.hli_item, call.hli_item)
                if acc not in (CallAcc.NONE, CallAcc.REF):
                    continue
                addr = oracle.addr_of(mem)
                assert mem.mem is not None
                width = mem.mem.width
                must_mod = CallEffectOracle.touches(effects.mod, addr, width)
                must_ref = CallEffectOracle.touches(effects.ref, addr, width)
                if must_mod or (acc is CallAcc.NONE and must_ref):
                    missing = "writes" if must_mod else "reads"
                    self._emit(
                        HLI002_UNSOUND_CALL_NODEP,
                        entry,
                        mem.line,
                        f"get_call_acc({mem.hli_item}, {call.hli_item}) = "
                        f"{acc.value.upper()} but callee '{call.callee}' "
                        f"provably {missing} {addr.symbol}+{addr.offset}",
                    )

    # -- reference rebuild (generation 0 only) ---------------------------------

    def _reference_entries(self) -> dict[str, HLIEntry]:
        if self._reference is None:
            from ..analysis.builder import build_hli
            from ..frontend import parse_and_check

            program, table = parse_and_check(self.comp.source, self.comp.filename)
            hli, _ = build_hli(
                program, table, external_effects=self.comp.external_effects
            )
            self._reference = hli.entries
        return self._reference

    def _check_against_reference(self, name: str, entry: HLIEntry) -> None:
        try:
            ref = self._reference_entries().get(name)
        except Exception as exc:  # source no longer parses: cannot rebuild
            self._emit(
                HLI006_STALE_MAPPING,
                entry,
                0,
                f"reference rebuild failed: {exc}",
                source="rebuild",
            )
            self._reference = {}
            return
        if ref is None:
            return
        self.report.count_claim("rebuild_units")
        item_lines = self._item_lines(entry)

        def line_of(iids) -> int:
            for iid in iids:
                if iid in item_lines:
                    return item_lines[iid][0]
            return 0

        # line table
        lt_have = {le.line: list(le.items) for le in entry.line_table.entries.values()}
        lt_want = {le.line: list(le.items) for le in ref.line_table.entries.values()}
        for line in sorted(set(lt_have) | set(lt_want)):
            if lt_have.get(line, []) != lt_want.get(line, []):
                self._emit(
                    HLI006_STALE_MAPPING,
                    entry,
                    line,
                    "line-table items differ from the front-end analysis "
                    f"(have {lt_have.get(line, [])}, expected {lt_want.get(line, [])})",
                    source="rebuild",
                )
        for rid in sorted(set(entry.regions) | set(ref.regions)):
            have, want = entry.regions.get(rid), ref.regions.get(rid)
            if have is None or want is None:
                self._emit(
                    HLI003_EQCLASS_MEMBERSHIP,
                    entry,
                    0,
                    f"region {rid} {'missing' if have is None else 'unexpected'} "
                    "versus the front-end analysis",
                    source="rebuild",
                )
                continue
            self._diff_region(entry, have, want, line_of)

    def _diff_region(self, entry: HLIEntry, have: RegionEntry, want: RegionEntry, line_of):
        def class_map(region: RegionEntry):
            return {
                c.class_id: (
                    c.equiv_type,
                    tuple(sorted(c.member_items)),
                    tuple(sorted(c.member_classes)),
                )
                for c in region.eq_classes
            }

        ch, cw = class_map(have), class_map(want)
        for cid in sorted(set(ch) | set(cw)):
            if ch.get(cid) != cw.get(cid):
                members = (ch.get(cid) or cw.get(cid))[1]
                self._emit(
                    HLI003_EQCLASS_MEMBERSHIP,
                    entry,
                    line_of(members),
                    f"class {cid} in region {have.region_id} diverged from the "
                    f"front-end analysis (have {ch.get(cid)}, expected {cw.get(cid)})",
                    source="rebuild",
                )
        ah = {a.class_ids for a in have.alias_entries}
        aw = {a.class_ids for a in want.alias_entries}
        for ids in sorted(ah ^ aw, key=sorted):
            self._emit(
                HLI003_EQCLASS_MEMBERSHIP,
                entry,
                have.line_start,
                f"alias set {sorted(ids)} in region {have.region_id} "
                f"{'unexpected' if ids in ah else 'missing'} versus the "
                "front-end analysis",
                source="rebuild",
            )
        dh = {(d.src_class, d.dst_class, d.dep_type, d.distance) for d in have.lcdd_entries}
        dw = {(d.src_class, d.dst_class, d.dep_type, d.distance) for d in want.lcdd_entries}
        for arc in sorted(dh ^ dw, key=repr):
            src, dst, dep, dist = arc
            self._emit(
                HLI004_LCDD_DISTANCE,
                entry,
                have.line_start,
                f"LCDD arc {src}->{dst} ({dep.name}, distance {dist}) in region "
                f"{have.region_id} {'unexpected' if arc in dh else 'missing'} "
                "versus the front-end analysis",
                source="rebuild",
            )
        def rm_map(region: RegionEntry):
            return {
                (m.key_kind, m.key_id): (
                    tuple(sorted(m.ref_classes)),
                    tuple(sorted(m.mod_classes)),
                    m.ref_all,
                    m.mod_all,
                )
                for m in region.refmod_entries
            }

        mh, mw = rm_map(have), rm_map(want)
        for key in sorted(set(mh) | set(mw), key=repr):
            if mh.get(key) != mw.get(key):
                self._emit(
                    HLI005_REFMOD_SUMMARY,
                    entry,
                    have.line_start,
                    f"REF/MOD entry {key[0].name}:{key[1]} in region "
                    f"{have.region_id} diverged from the front-end analysis "
                    f"(have {mh.get(key)}, expected {mw.get(key)})",
                    source="rebuild",
                )


def lint_compilation(comp, suppress=None, max_pairs: int = MAX_PAIRS_PER_FUNCTION) -> LintReport:
    """Audit a compilation; returns the (possibly filtered) report."""
    from ..obs import metrics, trace

    with trace.span("checker.lint", file=comp.filename):
        report = HLILinter(comp, max_pairs=max_pairs).run()
        report = filter_suppressed(report, suppress)
    if metrics.is_enabled():
        metrics.add("lint.findings", len(report.diagnostics))
        metrics.add("lint.claims_checked", sum(report.claims_checked.values()))
        metrics.add("lint.suppressed", report.suppressed)
    return report
