"""An independent, conservative dependence oracle over RTL.

This is the checker's *sound baseline*: it never reads the HLI, so any
disagreement between its proofs and an HLI claim is a genuine
inconsistency in the HLI (or its maintenance), not a circular
re-derivation.

The oracle resolves memory addresses symbolically by chasing pseudo
registers through the :class:`~repro.checker.dataflow.ReachingDefinitions`
solution: an address is *resolved* when it provably evaluates to
``&symbol + constant`` on every path.  Two resolved addresses support
three-valued verdicts:

* ``DISJOINT`` — provably never overlap (distinct objects, or disjoint
  byte ranges of the same object);
* ``MUST``     — provably always overlap (same object, overlapping
  constant ranges);
* ``MAY``      — everything else (unresolved, loop-varying, pointers).

Only ``DISJOINT`` and ``MUST`` are proofs; ``MAY`` claims nothing, which
is what keeps the auditor free of false positives.

:class:`CallEffectOracle` is the interprocedural analog: for each
function it computes the set of resolved locations the function *must*
read / write on every execution (stores and loads on the straight-line
entry path, plus the must-effects of calls on that path).  A call's HLI
REF/MOD summary that omits a must-effect is provably wrong.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..backend.cfg import CFG, build_cfg
from ..backend.rtl import Insn, Opcode, Reg, RTLFunction, RTLProgram
from .dataflow import ENTRY_DEF, ReachingDefinitions, solve


class DepVerdict(enum.Enum):
    """Three-valued dependence verdict between two memory references."""

    DISJOINT = "disjoint"
    MAY = "may"
    MUST = "must"


@dataclass(frozen=True)
class AbstractAddr:
    """A resolved address: ``&symbol + offset`` (offset may be unknown)."""

    symbol: Optional[str] = None
    offset: Optional[int] = None

    @property
    def resolved(self) -> bool:
        return self.symbol is not None and self.offset is not None


UNKNOWN = AbstractAddr()

_MAX_CHASE_DEPTH = 32


class DependenceOracle:
    """Per-function conservative memory disambiguator (no HLI input)."""

    def __init__(self, fn: RTLFunction, cfg: Optional[CFG] = None) -> None:
        self.fn = fn
        self.cfg = cfg if cfg is not None else build_cfg(fn)
        problem = ReachingDefinitions(self.cfg, param_regs=fn.param_regs)
        self._rd = solve(self.cfg, problem)
        self._insn_by_uid: dict[int, Insn] = {}
        #: uid -> reaching-definitions fact just before the instruction
        self._fact_before: dict[int, frozenset] = {}
        #: uid -> block index (used by callers to group same-block pairs)
        self.block_of: dict[int, int] = {}
        for block in self.cfg.blocks:
            for insn, fact in self._rd.insn_facts(block):
                self._insn_by_uid[insn.uid] = insn
                self._fact_before[insn.uid] = fact
                self.block_of[insn.uid] = block.index
        self._addr_cache: dict[int, AbstractAddr] = {}

    # -- address resolution ----------------------------------------------------

    def addr_of(self, insn: Insn) -> AbstractAddr:
        """Abstract address of a LOAD/STORE instruction."""
        if insn.mem is None:
            return UNKNOWN
        cached = self._addr_cache.get(insn.uid)
        if cached is not None:
            return cached
        if insn.mem.known_symbol is not None:
            out = AbstractAddr(insn.mem.known_symbol, insn.mem.known_offset)
        else:
            value = self._value_before(insn.mem.addr, insn.uid, _MAX_CHASE_DEPTH)
            out = value if isinstance(value, AbstractAddr) else UNKNOWN
            if out.symbol is None and insn.mem.base_symbol is not None:
                # the back-end knows the object even when the offset is
                # dynamic; symbol identity alone supports DISJOINT proofs
                out = AbstractAddr(insn.mem.base_symbol, None)
        self._addr_cache[insn.uid] = out
        return out

    def _value_before(self, reg: Reg, at_uid: int, depth: int):
        """Abstract value of ``reg`` just before instruction ``at_uid``.

        Returns an :class:`AbstractAddr`, an ``int`` constant, or
        ``UNKNOWN``.  Sound only for single-reaching-definition chains:
        a register with several (or external) reaching definitions is
        UNKNOWN.
        """
        if depth <= 0:
            return UNKNOWN
        fact = self._fact_before.get(at_uid)
        if fact is None:
            return UNKNOWN
        defs = ReachingDefinitions.defs_of(fact, reg.rid)
        if len(defs) != 1:
            return UNKNOWN
        (uid,) = defs
        if uid == ENTRY_DEF:
            return UNKNOWN
        d = self._insn_by_uid.get(uid)
        if d is None:
            return UNKNOWN
        return self._eval_def(d, depth - 1)

    def _eval_def(self, d: Insn, depth: int):
        op = d.op
        if op is Opcode.LI and isinstance(d.imm, int):
            return d.imm
        if op is Opcode.LA and d.symbol is not None:
            off = d.imm if isinstance(d.imm, int) else 0
            return AbstractAddr(d.symbol, off)
        if op is Opcode.MOVE and d.srcs and isinstance(d.srcs[0], Reg):
            return self._value_before(d.srcs[0], d.uid, depth)
        if op in (Opcode.ADD, Opcode.SUB) and len(d.srcs) == 2:
            vals = [
                self._value_before(s, d.uid, depth)
                if isinstance(s, Reg)
                else (s if isinstance(s, int) else UNKNOWN)
                for s in d.srcs
            ]
            a, b = vals
            if op is Opcode.ADD:
                if isinstance(a, int) and isinstance(b, int):
                    return a + b
                if isinstance(a, AbstractAddr) and a.resolved and isinstance(b, int):
                    return AbstractAddr(a.symbol, a.offset + b)
                if isinstance(b, AbstractAddr) and b.resolved and isinstance(a, int):
                    return AbstractAddr(b.symbol, b.offset + a)
            else:
                if isinstance(a, int) and isinstance(b, int):
                    return a - b
                if isinstance(a, AbstractAddr) and a.resolved and isinstance(b, int):
                    return AbstractAddr(a.symbol, a.offset - b)
        if op in (Opcode.MUL, Opcode.SHL, Opcode.SHR) and len(d.srcs) == 2:
            vals = [
                self._value_before(s, d.uid, depth)
                if isinstance(s, Reg)
                else (s if isinstance(s, int) else UNKNOWN)
                for s in d.srcs
            ]
            a, b = vals
            if isinstance(a, int) and isinstance(b, int):
                if op is Opcode.MUL:
                    return a * b
                if op is Opcode.SHL:
                    return a << b
                return a >> b
        return UNKNOWN

    # -- pairwise classification -----------------------------------------------

    def classify(self, a: Insn, b: Insn) -> DepVerdict:
        """Verdict for one pair of memory references."""
        if a.mem is None or b.mem is None:
            return DepVerdict.MAY
        addr_a, addr_b = self.addr_of(a), self.addr_of(b)
        if addr_a.symbol is not None and addr_b.symbol is not None:
            if addr_a.symbol != addr_b.symbol:
                # Distinct declared objects occupy disjoint storage.
                return DepVerdict.DISJOINT
            if addr_a.resolved and addr_b.resolved:
                lo_a, hi_a = addr_a.offset, addr_a.offset + a.mem.width
                lo_b, hi_b = addr_b.offset, addr_b.offset + b.mem.width
                if hi_a <= lo_b or hi_b <= lo_a:
                    return DepVerdict.DISJOINT
                return DepVerdict.MUST
        return DepVerdict.MAY

    def independent(self, a: Insn, b: Insn) -> bool:
        """Sound HLI-free independence test (usable by optimizer passes)."""
        return self.classify(a, b) is DepVerdict.DISJOINT


@dataclass(frozen=True)
class MustEffects:
    """Locations a function must read / write on every execution."""

    ref: frozenset  # of (symbol, offset, width)
    mod: frozenset


_EMPTY_EFFECTS = MustEffects(ref=frozenset(), mod=frozenset())


class CallEffectOracle:
    """Must-REF / must-MOD sets per function, HLI-free and interprocedural.

    Only the straight-line entry path of each function is considered
    (instructions that execute unconditionally before the first
    conditional branch), so every collected effect provably occurs on
    every call — the certainty needed to contradict an HLI ``NONE``
    verdict without false positives.  External callees contribute
    nothing (their effects cannot be proven here).
    """

    def __init__(self, program: RTLProgram) -> None:
        self.program = program
        self._oracles: dict[str, DependenceOracle] = {}
        self._effects: dict[str, MustEffects] = {}
        self._in_progress: set[str] = set()

    def oracle_for(self, name: str) -> Optional[DependenceOracle]:
        fn = self.program.functions.get(name)
        if fn is None:
            return None
        oracle = self._oracles.get(name)
        if oracle is None:
            oracle = DependenceOracle(fn)
            self._oracles[name] = oracle
        return oracle

    def must_effects(self, name: str) -> MustEffects:
        """Must-effects of calling ``name`` (empty for externals/cycles)."""
        cached = self._effects.get(name)
        if cached is not None:
            return cached
        fn = self.program.functions.get(name)
        if fn is None or name in self._in_progress:
            return _EMPTY_EFFECTS
        self._in_progress.add(name)
        try:
            effects = self._compute(fn)
        finally:
            self._in_progress.discard(name)
        self._effects[name] = effects
        return effects

    def _straight_line_prefix(self, fn: RTLFunction) -> list[Insn]:
        out: list[Insn] = []
        for insn in fn.insns:
            if insn.op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.J, Opcode.RET):
                break
            if insn.op is Opcode.LABEL:
                # A label may be a join point: later instructions are no
                # longer provably on every path.
                break
            out.append(insn)
        return out

    def _compute(self, fn: RTLFunction) -> MustEffects:
        oracle = self.oracle_for(fn.name)
        assert oracle is not None
        ref: set = set()
        mod: set = set()
        for insn in self._straight_line_prefix(fn):
            if insn.op is Opcode.CALL and insn.callee is not None:
                sub = self.must_effects(insn.callee)
                ref |= sub.ref
                mod |= sub.mod
                continue
            if insn.mem is None:
                continue
            addr = oracle.addr_of(insn)
            if not addr.resolved:
                continue
            loc = (addr.symbol, addr.offset, insn.mem.width)
            if insn.mem.is_store:
                mod.add(loc)
            else:
                ref.add(loc)
        return MustEffects(ref=frozenset(ref), mod=frozenset(mod))

    @staticmethod
    def touches(effects: frozenset, addr: AbstractAddr, width: int) -> bool:
        """Does any effect location provably overlap ``addr``?"""
        if not addr.resolved:
            return False
        lo, hi = addr.offset, addr.offset + width
        for sym, off, w in effects:
            if sym == addr.symbol and not (off + w <= lo or hi <= off):
                return True
        return False
