"""Hand-packed codec for :class:`repro.backend.rtl.RTLFunction`.

RTL bodies dominate warm-path decode time (thousands of instructions per
suite), so they get a fixed-layout struct encoding instead of the
generic tagged tree: a local string table, a register table, and one
packed record per instruction.  Measured against pickle on the
14-program suite this decodes ~15% faster at ~60% of the bytes.

Layout (little-endian), used as the custom blob for the registered
``RTLFunction`` type inside :mod:`repro.binfmt.core` messages:

* header: ``<II`` max reg id / max insn uid (decode advances the global
  allocators past them — foreign RTL must never collide with ids minted
  locally), then the function name (string id), ``<I`` frame_size,
  ``<B`` ret_is_float;
* string table: ``<I`` count, then per string ``<H`` utf-8 byte length
  + bytes.  String id 0 is reserved for ``None``;
* register table: ``<I`` count, then per register ``<IBH`` rid /
  is_float / name byte length + name bytes.  Registers are referenced
  by ``<I`` table index below (index 0 reserved for "no register");
* param_regs: ``<H`` count + ``<I`` reg indexes; ret_reg: ``<I``;
* loops: ``<H`` count + ``<III`` string ids (header, latch, exit);
* frame: ``<H`` count + per slot string id + ``<qI`` offset / size;
* insns: ``<I`` count, then per insn:

  - ``<BBIIB`` opcode index (declaration order in :class:`Opcode`) /
    src count / uid / line / flags (1 = is_float, 2 = has mem);
  - ``<I`` dst reg index;
  - per src one tag byte: ``R`` + ``<I`` reg index, ``I`` + ``<q``,
    or ``F`` + ``<d``;
  - when flag 2: ``<IIB`` addr reg index / width / memflags (1 =
    is_store, 2 = has known_offset, 4 = may_be_aliased), ``<q`` offset
    when present, ``<II`` known_symbol / base_symbol string ids;
  - ``<III`` label / callee / symbol string ids;
  - ``<I`` hli_item + 1 (0 = None);
  - imm tag byte ``N`` / ``I`` + ``<q`` / ``F`` + ``<d`` / ``O`` +
    generic :func:`repro.binfmt.core.encode` blob (``<I`` length).
"""

from __future__ import annotations

import struct
from typing import Optional

from ..backend import rtl as _rtl
from ..backend.rtl import Insn, MemRef, Opcode, Reg, RTLFunction
from .core import BinFormatError

__all__ = ["decode_rtl_function", "encode_rtl_function"]

_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}

_F_IS_FLOAT = 1
_F_HAS_MEM = 2
_MF_IS_STORE = 1
_MF_HAS_OFFSET = 2
_MF_ALIASED = 4

_HDR = struct.Struct("<II")
_INSN = struct.Struct("<BBIIB")
_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_REGREC = struct.Struct("<IBH")
_MEMREC = struct.Struct("<IIB")
_LOOP = struct.Struct("<III")
_FRAME = struct.Struct("<qI")


class _Tables:
    """Deduplicating string + register tables local to one function."""

    __slots__ = ("strings", "string_ids", "regs", "reg_ids")

    def __init__(self) -> None:
        self.strings: list[str] = []
        self.string_ids: dict[str, int] = {}
        self.regs: list[Reg] = []
        self.reg_ids: dict[int, int] = {}

    def sid(self, s: Optional[str]) -> int:
        if s is None:
            return 0
        idx = self.string_ids.get(s)
        if idx is None:
            idx = len(self.strings) + 1
            self.string_ids[s] = idx
            self.strings.append(s)
        return idx

    def rid(self, r: Optional[Reg]) -> int:
        if r is None:
            return 0
        idx = self.reg_ids.get(id(r))
        if idx is None:
            # Dedup by value: equal frozen Regs are interchangeable.
            key = (r.rid, r.is_float, r.name)
            for i, seen in enumerate(self.regs):
                if (seen.rid, seen.is_float, seen.name) == key:
                    self.reg_ids[id(r)] = i + 1
                    return i + 1
            idx = len(self.regs) + 1
            self.reg_ids[id(r)] = idx
            self.regs.append(r)
        return idx


def encode_rtl_function(fn: RTLFunction) -> bytes:
    """Pack one RTL function into the fixed layout above."""
    t = _Tables()
    body = bytearray()

    body += _U32.pack(len(fn.insns))
    max_uid = 0
    for insn in fn.insns:
        flags = (_F_IS_FLOAT if insn.is_float else 0) | (_F_HAS_MEM if insn.mem else 0)
        max_uid = max(max_uid, insn.uid)
        body += _INSN.pack(
            _OPCODE_INDEX[insn.op], len(insn.srcs), insn.uid, insn.line, flags
        )
        body += _U32.pack(t.rid(insn.dst))
        for s in insn.srcs:
            if isinstance(s, Reg):
                body += b"R" + _U32.pack(t.rid(s))
            elif type(s) is float:
                body += b"F" + _F64.pack(s)
            elif isinstance(s, int):
                body += b"I" + _I64.pack(int(s))
            else:
                raise BinFormatError(f"unencodable RTL source {s!r}")
        m = insn.mem
        if m is not None:
            mflags = (
                (_MF_IS_STORE if m.is_store else 0)
                | (_MF_HAS_OFFSET if m.known_offset is not None else 0)
                | (_MF_ALIASED if m.may_be_aliased else 0)
            )
            body += _MEMREC.pack(t.rid(m.addr), m.width, mflags)
            if m.known_offset is not None:
                body += _I64.pack(m.known_offset)
            body += _U32.pack(t.sid(m.known_symbol))
            body += _U32.pack(t.sid(m.base_symbol))
        body += _U32.pack(t.sid(insn.label))
        body += _U32.pack(t.sid(insn.callee))
        body += _U32.pack(t.sid(insn.symbol))
        body += _U32.pack(0 if insn.hli_item is None else insn.hli_item + 1)
        imm = insn.imm
        if imm is None:
            body += b"N"
        elif type(imm) is int:
            body += b"I" + _I64.pack(imm)
        elif type(imm) is float:
            body += b"F" + _F64.pack(imm)
        else:
            from .core import encode as _generic_encode

            blob = _generic_encode(imm)
            body += b"O" + _U32.pack(len(blob)) + blob

    body += _U16.pack(len(fn.param_regs))
    for r in fn.param_regs:
        body += _U32.pack(t.rid(r))
    body += _U32.pack(t.rid(fn.ret_reg))

    body += _U16.pack(len(fn.loops))
    for header, latch, exit_ in fn.loops:
        body += _LOOP.pack(t.sid(header), t.sid(latch), t.sid(exit_))

    body += _U16.pack(len(fn.frame))
    for name, (off, size) in fn.frame.items():
        body += _U32.pack(t.sid(name))
        body += _FRAME.pack(off, size)

    max_reg = max((r.rid for r in t.regs), default=0)

    out = bytearray()
    out += _HDR.pack(max_reg, max_uid)
    out += _U32.pack(t.sid(fn.name))
    out += _U32.pack(fn.frame_size)
    out += _U8.pack(1 if fn.ret_is_float else 0)
    out += _U32.pack(len(t.strings))
    for s in t.strings:
        data = s.encode("utf-8", "surrogatepass")
        out += _U16.pack(len(data))
        out += data
    out += _U32.pack(len(t.regs))
    for r in t.regs:
        data = r.name.encode("utf-8", "surrogatepass")
        out += _REGREC.pack(r.rid, 1 if r.is_float else 0, len(data))
        out += data
    out += body
    return bytes(out)


def decode_rtl_function(data: bytes) -> RTLFunction:
    """Decode :func:`encode_rtl_function` output.

    Reserves the blob's reg/uid id ranges on the process-global
    allocators, so passes that mint fresh registers afterwards can
    never collide with the cached body.

    The body is the warm path's hottest decode loop — reads are inlined
    ``unpack_from`` calls over a local cursor, instructions are built by
    writing ``__dict__`` directly (skips dataclass ``__init__`` and its
    uid default factory), and all bounds errors funnel through one
    ``except`` into :class:`BinFormatError`.
    """
    try:
        return _decode_body(data)
    except BinFormatError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError, ValueError) as exc:
        raise BinFormatError(f"malformed RTL blob: {exc!r}") from exc


def _decode_body(data: bytes) -> RTLFunction:
    pos = 0
    max_reg, max_uid = _HDR.unpack_from(data, pos)
    pos += 8
    _rtl.reserve_ids(max_reg, max_uid)

    name_sid, frame_size, ret_is_float_b = struct.unpack_from("<IIB", data, pos)
    pos += 9

    (n_strings,) = _U32.unpack_from(data, pos)
    pos += 4
    if n_strings > len(data):
        raise BinFormatError("string table count exceeds payload")
    strings: list[Optional[str]] = [None]
    for _ in range(n_strings):
        (n,) = _U16.unpack_from(data, pos)
        pos += 2
        end = pos + n
        if end > len(data):
            raise BinFormatError("truncated RTL string table")
        strings.append(data[pos:end].decode("utf-8", "surrogatepass"))
        pos = end

    (n_regs,) = _U32.unpack_from(data, pos)
    pos += 4
    if n_regs > len(data):
        raise BinFormatError("register table count exceeds payload")
    regs: list[Optional[Reg]] = [None]
    for _ in range(n_regs):
        rid, is_float, name_len = _REGREC.unpack_from(data, pos)
        pos += 7
        end = pos + name_len
        if end > len(data):
            raise BinFormatError("truncated RTL register table")
        rname = data[pos:end].decode("utf-8", "surrogatepass")
        pos = end
        regs.append(Reg(rid=rid, is_float=bool(is_float), name=rname))

    (n_insns,) = _U32.unpack_from(data, pos)
    pos += 4
    if n_insns > len(data):
        raise BinFormatError("instruction count exceeds payload")
    insns: list[Insn] = []
    insn_unpack = _INSN.unpack_from
    u32_unpack = _U32.unpack_from
    new_insn = Insn.__new__
    new_mem = MemRef.__new__
    opcodes = _OPCODES
    for _ in range(n_insns):
        op_idx, n_srcs, uid, line, flags = insn_unpack(data, pos)
        pos += 11
        (dst_idx,) = u32_unpack(data, pos)
        pos += 4
        srcs = []
        for _s in range(n_srcs):
            tag = data[pos]
            pos += 1
            if tag == 0x52:  # 'R'
                (sidx,) = u32_unpack(data, pos)
                pos += 4
                src = regs[sidx]
                if src is None:
                    raise BinFormatError("source register id 0")
                srcs.append(src)
            elif tag == 0x49:  # 'I'
                srcs.append(_I64.unpack_from(data, pos)[0])
                pos += 8
            elif tag == 0x46:  # 'F'
                srcs.append(_F64.unpack_from(data, pos)[0])
                pos += 8
            else:
                raise BinFormatError(f"unknown source tag {tag:#x}")
        mem = None
        if flags & _F_HAS_MEM:
            addr_idx, width, mflags = _MEMREC.unpack_from(data, pos)
            pos += 9
            addr = regs[addr_idx]
            if addr is None:
                raise BinFormatError("mem addr register id 0")
            if mflags & _MF_HAS_OFFSET:
                (known_offset,) = _I64.unpack_from(data, pos)
                pos += 8
            else:
                known_offset = None
            ks_idx, bs_idx = struct.unpack_from("<II", data, pos)
            pos += 8
            mem = new_mem(MemRef)
            mem.__dict__.update(
                addr=addr,
                width=width,
                is_store=bool(mflags & _MF_IS_STORE),
                known_symbol=strings[ks_idx],
                known_offset=known_offset,
                base_symbol=strings[bs_idx],
                may_be_aliased=bool(mflags & _MF_ALIASED),
            )
        label_idx, callee_idx, symbol_idx, raw_item = struct.unpack_from("<IIII", data, pos)
        pos += 16
        tag = data[pos]
        pos += 1
        imm: object
        if tag == 0x4E:  # 'N'
            imm = None
        elif tag == 0x49:  # 'I'
            (imm,) = _I64.unpack_from(data, pos)
            pos += 8
        elif tag == 0x46:  # 'F'
            (imm,) = _F64.unpack_from(data, pos)
            pos += 8
        elif tag == 0x4F:  # 'O'
            from .core import decode as _generic_decode

            (blen,) = u32_unpack(data, pos)
            pos += 4
            end = pos + blen
            if end > len(data):
                raise BinFormatError("truncated imm blob")
            imm = _generic_decode(data[pos:end])
            pos = end
        else:
            raise BinFormatError(f"unknown imm tag {tag:#x}")
        insn = new_insn(Insn)
        insn.__dict__.update(
            op=opcodes[op_idx],
            dst=regs[dst_idx],
            srcs=tuple(srcs),
            mem=mem,
            label=strings[label_idx],
            callee=strings[callee_idx],
            line=line,
            is_float=bool(flags & _F_IS_FLOAT),
            uid=uid,
            hli_item=raw_item - 1 if raw_item else None,
            imm=imm,
            symbol=strings[symbol_idx],
        )
        insns.append(insn)

    (n_params,) = _U16.unpack_from(data, pos)
    pos += 2
    param_regs = []
    for _ in range(n_params):
        (pidx,) = u32_unpack(data, pos)
        pos += 4
        p = regs[pidx]
        if p is None:
            raise BinFormatError("param register id 0")
        param_regs.append(p)
    (ret_idx,) = u32_unpack(data, pos)
    pos += 4
    ret_reg = regs[ret_idx]

    (n_loops,) = _U16.unpack_from(data, pos)
    pos += 2
    loops = []
    for _ in range(n_loops):
        h, latch, e = _LOOP.unpack_from(data, pos)
        pos += 12
        hs, ls, es = strings[h], strings[latch], strings[e]
        if hs is None or ls is None or es is None:
            raise BinFormatError("loop label string id 0")
        loops.append((hs, ls, es))

    (n_frame,) = _U16.unpack_from(data, pos)
    pos += 2
    frame: dict[str, tuple[int, int]] = {}
    for _ in range(n_frame):
        (slot_idx,) = u32_unpack(data, pos)
        pos += 4
        slot = strings[slot_idx]
        if slot is None:
            raise BinFormatError("frame slot string id 0")
        off, size = _FRAME.unpack_from(data, pos)
        pos += 12
        frame[slot] = (off, size)

    if pos != len(data):
        raise BinFormatError("trailing bytes after RTL function")

    name = strings[name_sid]
    if name is None:
        raise BinFormatError("function name string id 0")
    return RTLFunction(
        name=name,
        insns=insns,
        param_regs=param_regs,
        ret_reg=ret_reg,
        ret_is_float=bool(ret_is_float_b),
        loops=loops,
        frame=frame,
        frame_size=frame_size,
    )
