"""``repro.binfmt`` — the zero-pickle self-describing binary codec.

One codec for every persisted or shipped object graph: session cache
blobs, ``compile_many`` fan-out payloads, the serve wire, and linker
summaries.  See :mod:`repro.binfmt.core` for the format and
:mod:`repro.binfmt.types` for the registry that defines it.

Importing this package registers all types; ``fingerprint()`` then
identifies the exact registry shape so callers can key storage on it.
"""

from .core import BinFormatError, decode, encode, fingerprint
from .types import register_all as _register_all

_register_all()

__all__ = ["BinFormatError", "decode", "encode", "fingerprint"]
