"""Codec registrations for every type the pipeline persists or ships.

Importing this module (via ``repro.binfmt``) populates the
:mod:`repro.binfmt.core` registry.  **Registration order is the wire
format**: type/enum/callable ids are assigned in encounter order, so
the module list below and the definition order inside each module feed
straight into :func:`repro.binfmt.core.fingerprint` — reordering or
reshaping anything here retires all existing cache blobs, by design.

Most types auto-register via their dataclass fields; the exceptions:

* ``ScalarType`` decodes through a canonicalizing factory so the module
  singletons (``INT``, ``FLOAT``, …) stay unique;
* ``Scope`` / ``SymbolTable`` are plain classes with explicit fields;
* ``HLIQuery`` rebuilds through its constructor (its indices are
  derived state);
* ``RTLFunction`` uses the hand-packed hot-path codec in
  :mod:`repro.binfmt.rtlcodec`;
* machine latency models ship as registered callables (by id, never by
  code).
"""

from __future__ import annotations

import enum
from dataclasses import is_dataclass
from types import ModuleType

from ..analysis import alias as _alias
from ..analysis import builder as _builder
from ..analysis import depend as _depend
from ..analysis import eqclasses as _eqclasses
from ..analysis import items as _items
from ..analysis import refmod as _refmod
from ..analysis import regions as _regions
from ..analysis import subscripts as _subscripts
from ..backend import cse as _cse
from ..backend import ddg as _ddg
from ..backend import licm as _licm
from ..backend import mapping as _mapping
from ..backend import passes as _bpasses
from ..backend import pm as _pm
from ..backend import rtl as _rtl
from ..backend import unroll as _unroll
from ..checker import rules as _rules
from ..frontend import ast_nodes as _ast
from ..frontend import symbols as _symbols
from ..frontend import typesys as _typesys
from ..hli import maintenance as _maintenance
from ..hli import query as _query
from ..hli import tables as _tables
from ..linker import summary as _summary
from ..machine import latencies as _latencies
from .core import register, register_callable, register_enum
from .rtlcodec import decode_rtl_function, encode_rtl_function

_CANONICAL_SCALARS = {
    ty.kind: ty
    for ty in (
        _typesys.INT,
        _typesys.FLOAT,
        _typesys.DOUBLE,
        _typesys.CHAR,
        _typesys.VOID,
    )
}


def _scalar(kind: _typesys.BaseKind) -> _typesys.ScalarType:
    return _CANONICAL_SCALARS.get(kind) or _typesys.ScalarType(kind)


def _register_module(module: ModuleType) -> None:
    """Register every public dataclass and enum defined in ``module``.

    ``vars`` iterates in definition order (guaranteed since 3.7), which
    makes the assigned wire ids deterministic at import time.
    """
    from .core import _BY_ENUM, _BY_TYPE  # registry internals, read-only here

    for name, obj in vars(module).items():
        if name.startswith("_") or not isinstance(obj, type):
            continue
        if obj.__module__ != module.__name__:
            continue
        if issubclass(obj, enum.Enum):
            if obj not in _BY_ENUM:
                register_enum(obj)
        elif is_dataclass(obj) and obj not in _BY_TYPE:
            register(obj)


def register_all() -> None:
    """Populate the registry; called once from ``repro.binfmt.__init__``."""
    # Explicit special cases first — they must win over the module walk.
    register(_typesys.ScalarType, ("kind",), factory=_scalar)
    register(_symbols.Scope, ("parent", "names"))
    register(_symbols.SymbolTable, ("global_scope", "functions", "structs"))
    register(_query.HLIQuery, ("entry",), factory=_query.HLIQuery)
    register(_rtl.RTLFunction, encode=encode_rtl_function, decode=decode_rtl_function)

    for module in (
        _typesys,
        _ast,
        _symbols,
        _tables,
        _regions,
        _items,
        _subscripts,
        _alias,
        _eqclasses,
        _depend,
        _refmod,
        _builder,
        _rtl,
        _ddg,
        _mapping,
        _bpasses,
        _pm,
        _cse,
        _licm,
        _unroll,
        _maintenance,
        _rules,
        _summary,
        _query,
    ):
        _register_module(module)

    # Driver-level carriers (imported late: driver.compile imports
    # backend modules registered above).
    from ..driver import compile as _compile

    _register_module(_compile)

    register_callable("r4600_latency", _latencies.r4600_latency)
    register_callable("r10000_latency", _latencies.r10000_latency)
