"""Self-describing binary object codec — the zero-pickle interchange layer.

``repro.binfmt`` replaces :mod:`pickle` everywhere the pipeline persists
or ships Python object graphs: cache blobs (:mod:`repro.driver.session`),
the serve wire (:mod:`repro.serve`), ``compile_many`` fan-out payloads,
and linker REF/MOD summaries (:mod:`repro.linker.persist`).  Unlike
pickle it can only construct types that were explicitly registered at
import time, so decoding untrusted bytes can never execute arbitrary
code — the worst a hostile payload can do is raise
:class:`BinFormatError`.

Design (à la the ASDL paper in PAPERS.md):

* a tagged, length-checked tree encoding of primitives and containers
  (all little-endian; ints are zigzag varints);
* a per-message *string table*: the first occurrence of a string is
  inline, later occurrences are a varint back-reference.  Decoded
  strings are ``sys.intern``-ed so identity-based sentinel checks
  (``ref is TOP``) survive a round trip;
* a *memo table* for mutable containers and registered objects, so
  shared references and cycles (e.g. the analysis ``Region`` tree)
  reconstruct with their aliasing intact;
* a type registry (:func:`register` / :func:`register_enum` /
  :func:`register_callable`) mapping classes to stable numeric ids.
  Registered dataclasses are encoded field-by-field and rebuilt via
  ``cls.__new__`` + ``object.__setattr__`` (works for frozen
  dataclasses); types with constructor invariants supply a ``factory``;
  hot types supply custom ``encode``/``decode`` byte-blob hooks (see
  :mod:`repro.binfmt.rtlcodec`);
* :func:`fingerprint` hashes the whole registry shape (type names,
  field lists, enum members, callable names).  The cache folds it into
  every key and frame header, so a codec change evicts stale blobs
  instead of misdecoding them.

Subclasses of ``dict``/``list``/``set`` (``defaultdict`` and friends)
are encoded as their plain base container — the decoded graph is
structurally equal but loses the subclass behaviour.
"""

from __future__ import annotations

import enum
import struct
import sys
from dataclasses import fields as _dc_fields, is_dataclass
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "BinFormatError",
    "FORMAT_VERSION",
    "decode",
    "encode",
    "fingerprint",
    "register",
    "register_callable",
    "register_enum",
]

#: Bumped on any wire-format change that :func:`fingerprint` cannot see
#: (tag semantics, varint encoding, table layout).
FORMAT_VERSION = 1


class BinFormatError(Exception):
    """Raised on any malformed, truncated, or unregistered input."""


# -- wire tags ---------------------------------------------------------------

_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3  # zigzag varint
_T_FLOAT = 4  # <d
_T_STR = 5  # varint byte length + utf-8; appended to the string table
_T_STRREF = 6  # varint index into the string table
_T_BYTES = 7  # varint length + raw bytes
_T_LIST = 8  # varint count + values            (memoized)
_T_TUPLE = 9  # varint count + values
_T_SET = 10  # varint count + values            (memoized)
_T_FROZENSET = 11  # varint count + values
_T_DICT = 12  # varint count + key/value pairs  (memoized)
_T_REF = 13  # varint index into the memo table
_T_OBJ = 14  # varint type id + fields (or varint-length custom blob)
_T_ENUM = 15  # varint enum id + varint member index
_T_CALLABLE = 16  # varint callable id

_RECURSION_LIMIT = 20000


# -- type registry -----------------------------------------------------------


class _Spec:
    __slots__ = ("tid", "cls", "field_names", "factory", "encode_fn", "decode_fn")

    def __init__(
        self,
        tid: int,
        cls: type,
        field_names: tuple[str, ...],
        factory: Optional[Callable[..., Any]],
        encode_fn: Optional[Callable[[Any], bytes]],
        decode_fn: Optional[Callable[[bytes], Any]],
    ) -> None:
        self.tid = tid
        self.cls = cls
        self.field_names = field_names
        self.factory = factory
        self.encode_fn = encode_fn
        self.decode_fn = decode_fn


_SPECS: list[_Spec] = []
_BY_TYPE: dict[type, _Spec] = {}
_ENUMS: list[type] = []
_BY_ENUM: dict[type, int] = {}
_ENUM_MEMBERS: list[list[Any]] = []
_CALLABLES: list[tuple[str, Callable[..., Any]]] = []
_BY_CALLABLE: dict[Any, int] = {}
_FINGERPRINT: Optional[str] = None


def _auto_fields(cls: type) -> tuple[str, ...]:
    if not is_dataclass(cls):
        raise BinFormatError(
            f"{cls.__qualname__}: non-dataclass registration needs explicit field_names"
        )
    # Include non-init fields (e.g. ast.Expr.ty / .item_id carry analysis
    # results) — everything that lives on the instance must round-trip.
    return tuple(f.name for f in _dc_fields(cls))


def register(
    cls: type,
    field_names: Optional[Iterable[str]] = None,
    *,
    factory: Optional[Callable[..., Any]] = None,
    encode: Optional[Callable[[Any], bytes]] = None,
    decode: Optional[Callable[[bytes], Any]] = None,
) -> None:
    """Register ``cls`` for encoding under the next free type id.

    Registration order is part of the wire format: it must be
    deterministic at import time (see :mod:`repro.binfmt.types`), and
    any change shifts :func:`fingerprint`, evicting old cache blobs.
    """
    global _FINGERPRINT
    if cls in _BY_TYPE:
        raise BinFormatError(f"{cls.__qualname__} registered twice")
    if encode is not None or decode is not None:
        if encode is None or decode is None:
            raise BinFormatError(f"{cls.__qualname__}: encode and decode come together")
        names: tuple[str, ...] = ()
    elif field_names is not None:
        names = tuple(field_names)
    else:
        names = _auto_fields(cls)
    spec = _Spec(len(_SPECS), cls, names, factory, encode, decode)
    _SPECS.append(spec)
    _BY_TYPE[cls] = spec
    _FINGERPRINT = None


def register_enum(cls: type) -> None:
    """Register an :class:`enum.Enum` subclass (member order is the wire id)."""
    global _FINGERPRINT
    if cls in _BY_ENUM:
        raise BinFormatError(f"enum {cls.__qualname__} registered twice")
    _BY_ENUM[cls] = len(_ENUMS)
    _ENUMS.append(cls)
    _ENUM_MEMBERS.append(list(cls))
    _FINGERPRINT = None


def register_callable(name: str, fn: Callable[..., Any]) -> None:
    """Register a module-level callable shipped by reference (never by code)."""
    global _FINGERPRINT
    if fn in _BY_CALLABLE:
        raise BinFormatError(f"callable {name} registered twice")
    _BY_CALLABLE[fn] = len(_CALLABLES)
    _CALLABLES.append((name, fn))
    _FINGERPRINT = None


def fingerprint() -> str:
    """Hex digest over the registry shape and format version.

    Changes whenever a registered type gains/loses/reorders fields, an
    enum changes members, or the registration order moves — exactly the
    situations where old blobs would misdecode.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        from hashlib import sha256

        h = sha256()
        h.update(f"repro-binfmt:{FORMAT_VERSION}\n".encode())
        for spec in _SPECS:
            kind = "custom" if spec.encode_fn else ("factory" if spec.factory else "fields")
            h.update(
                f"{spec.tid}:{spec.cls.__module__}.{spec.cls.__qualname__}"
                f":{kind}:{','.join(spec.field_names)}\n".encode()
            )
        for eid, cls in enumerate(_ENUMS):
            members = ",".join(m.name for m in _ENUM_MEMBERS[eid])
            h.update(f"enum{eid}:{cls.__module__}.{cls.__qualname__}:{members}\n".encode())
        for cid, (name, _fn) in enumerate(_CALLABLES):
            h.update(f"call{cid}:{name}\n".encode())
        _FINGERPRINT = h.hexdigest()
    return _FINGERPRINT


# -- varints -----------------------------------------------------------------


def _w_varint(out: bytearray, v: int) -> None:
    while True:
        b = v & 0x7F
        v >>= 7
        if v:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


# -- encoder -----------------------------------------------------------------


class _Encoder:
    __slots__ = ("out", "memo", "keep", "strings")

    def __init__(self) -> None:
        self.out = bytearray()
        self.memo: dict[int, int] = {}
        self.keep: list[Any] = []  # pins ids alive for the memo dict
        self.strings: dict[str, int] = {}

    def enc(self, obj: Any) -> None:
        out = self.out
        t = type(obj)
        if obj is None:
            out.append(_T_NONE)
        elif t is bool:
            out.append(_T_TRUE if obj else _T_FALSE)
        elif t is int:
            out.append(_T_INT)
            if obj < 0:
                _w_varint(out, ((-obj) << 1) - 1)
            else:
                _w_varint(out, obj << 1)
        elif t is float:
            out.append(_T_FLOAT)
            out += struct.pack("<d", obj)
        elif t is str:
            idx = self.strings.get(obj)
            if idx is not None:
                out.append(_T_STRREF)
                _w_varint(out, idx)
            else:
                self.strings[obj] = len(self.strings)
                data = obj.encode("utf-8", "surrogatepass")
                out.append(_T_STR)
                _w_varint(out, len(data))
                out += data
        elif t is bytes:
            out.append(_T_BYTES)
            _w_varint(out, len(obj))
            out += obj
        elif t is list:
            self._container(obj, _T_LIST, obj)
        elif t is tuple:
            out.append(_T_TUPLE)
            _w_varint(out, len(obj))
            for v in obj:
                self.enc(v)
        elif t is dict:
            self._dict(obj)
        elif t is set:
            self._container(obj, _T_SET, sorted(obj, key=_set_key))
        elif t is frozenset:
            out.append(_T_FROZENSET)
            _w_varint(out, len(obj))
            for v in sorted(obj, key=_set_key):
                self.enc(v)
        else:
            self._object(obj, t)

    def _memoize(self, obj: Any) -> bool:
        """Record ``obj`` in the memo; True when already seen (REF emitted)."""
        idx = self.memo.get(id(obj))
        if idx is not None:
            self.out.append(_T_REF)
            _w_varint(self.out, idx)
            return True
        self.memo[id(obj)] = len(self.memo)
        self.keep.append(obj)
        return False

    def _container(self, obj: Any, tag: int, items: Any) -> None:
        if self._memoize(obj):
            return
        self.out.append(tag)
        _w_varint(self.out, len(obj))
        for v in items:
            self.enc(v)

    def _dict(self, obj: dict) -> None:
        if self._memoize(obj):
            return
        self.out.append(_T_DICT)
        _w_varint(self.out, len(obj))
        for k, v in obj.items():
            self.enc(k)
            self.enc(v)

    def _object(self, obj: Any, t: type) -> None:
        spec = _BY_TYPE.get(t)
        if spec is None:
            # Subclass fallback: lazily-decoded proxies (the session's
            # _LazyFrontEnd) and plain container subclasses encode as
            # their registered/base shape.
            for base in t.__mro__[1:]:
                spec = _BY_TYPE.get(base)
                if spec is not None:
                    break
            else:
                if isinstance(obj, enum.Enum):
                    eid = _BY_ENUM.get(t)
                    if eid is None:
                        raise BinFormatError(f"unregistered enum {t.__qualname__}")
                    self.out.append(_T_ENUM)
                    _w_varint(self.out, eid)
                    _w_varint(self.out, _ENUM_MEMBERS[eid].index(obj))
                    return
                if isinstance(obj, dict):
                    self._dict(dict(obj))
                    return
                if isinstance(obj, list):
                    self._container(obj, _T_LIST, obj)
                    return
                if isinstance(obj, (set, frozenset)):
                    self._container(obj, _T_SET, sorted(obj, key=_set_key))
                    return
                cid = _BY_CALLABLE.get(obj)
                if cid is not None:
                    self.out.append(_T_CALLABLE)
                    _w_varint(self.out, cid)
                    return
                raise BinFormatError(
                    f"cannot encode unregistered type {t.__module__}.{t.__qualname__}"
                )
        if self._memoize(obj):
            return
        self.out.append(_T_OBJ)
        _w_varint(self.out, spec.tid)
        if spec.encode_fn is not None:
            blob = spec.encode_fn(obj)
            _w_varint(self.out, len(blob))
            self.out += blob
        else:
            for name in spec.field_names:
                self.enc(getattr(obj, name))


def _set_key(v: Any) -> tuple:
    """Deterministic ordering for set elements (mixed-type safe)."""
    return (type(v).__qualname__, repr(v))


def encode(obj: object) -> bytes:
    """Encode ``obj`` into a self-contained byte string."""
    enc = _Encoder()
    old = sys.getrecursionlimit()
    if old < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        enc.enc(obj)
    finally:
        if old < _RECURSION_LIMIT:
            sys.setrecursionlimit(old)
    return bytes(enc.out)


# -- decoder -----------------------------------------------------------------

_PLACEHOLDER = object()


class _Decoder:
    __slots__ = ("data", "pos", "memo", "strings")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0
        self.memo: list[Any] = []
        self.strings: list[str] = []

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.data):
            raise BinFormatError("truncated binfmt data")
        out = self.data[self.pos : end]
        self.pos = end
        return out

    def _varint(self) -> int:
        v = 0
        shift = 0
        data = self.data
        pos = self.pos
        n = len(data)
        while True:
            if pos >= n:
                raise BinFormatError("truncated varint")
            b = data[pos]
            pos += 1
            v |= (b & 0x7F) << shift
            if not b & 0x80:
                self.pos = pos
                return v
            shift += 7
            if shift > 640:
                raise BinFormatError("varint too long")

    def dec(self) -> Any:
        tag = self.data[self.pos] if self.pos < len(self.data) else None
        if tag is None:
            raise BinFormatError("truncated binfmt data")
        self.pos += 1
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            z = self._varint()
            return -((z + 1) >> 1) if z & 1 else z >> 1
        if tag == _T_FLOAT:
            return struct.unpack("<d", self._take(8))[0]
        if tag == _T_STR:
            n = self._varint()
            try:
                s = self._take(n).decode("utf-8", "surrogatepass")
            except UnicodeDecodeError as exc:
                raise BinFormatError(f"bad utf-8 in string: {exc}") from exc
            try:
                s = sys.intern(s)
            except TypeError:  # pragma: no cover - surrogate strings
                pass
            self.strings.append(s)
            return s
        if tag == _T_STRREF:
            idx = self._varint()
            if idx >= len(self.strings):
                raise BinFormatError(f"string ref {idx} out of range")
            return self.strings[idx]
        if tag == _T_BYTES:
            return self._take(self._varint())
        if tag == _T_TUPLE:
            return tuple(self.dec() for _ in range(self._check_count()))
        if tag == _T_FROZENSET:
            return frozenset(self.dec() for _ in range(self._check_count()))
        if tag == _T_LIST:
            out: list[Any] = []
            self.memo.append(out)
            for _ in range(self._check_count()):
                out.append(self.dec())
            return out
        if tag == _T_SET:
            slot = len(self.memo)
            self.memo.append(_PLACEHOLDER)
            s_out = {self.dec() for _ in range(self._check_count())}
            self.memo[slot] = s_out
            return s_out
        if tag == _T_DICT:
            d: dict[Any, Any] = {}
            self.memo.append(d)
            for _ in range(self._check_count()):
                k = self.dec()
                d[k] = self.dec()
            return d
        if tag == _T_REF:
            idx = self._varint()
            if idx >= len(self.memo):
                raise BinFormatError(f"memo ref {idx} out of range")
            obj = self.memo[idx]
            if obj is _PLACEHOLDER:
                raise BinFormatError(f"memo ref {idx} resolved before construction")
            return obj
        if tag == _T_OBJ:
            return self._obj()
        if tag == _T_ENUM:
            eid = self._varint()
            if eid >= len(_ENUMS):
                raise BinFormatError(f"enum id {eid} out of range")
            members = _ENUM_MEMBERS[eid]
            midx = self._varint()
            if midx >= len(members):
                raise BinFormatError(f"enum member {midx} out of range")
            return members[midx]
        if tag == _T_CALLABLE:
            cid = self._varint()
            if cid >= len(_CALLABLES):
                raise BinFormatError(f"callable id {cid} out of range")
            return _CALLABLES[cid][1]
        raise BinFormatError(f"unknown tag {tag}")

    def _check_count(self) -> int:
        n = self._varint()
        # Every element takes >= 1 byte, so a count beyond the remaining
        # bytes is corrupt — reject before allocating.
        if n > len(self.data) - self.pos:
            raise BinFormatError(f"container count {n} exceeds payload")
        return n

    def _obj(self) -> Any:
        tid = self._varint()
        if tid >= len(_SPECS):
            raise BinFormatError(f"type id {tid} out of range")
        spec = _SPECS[tid]
        if spec.decode_fn is not None:
            blob = self._take(self._varint())
            slot = len(self.memo)
            self.memo.append(_PLACEHOLDER)
            obj = spec.decode_fn(blob)
            self.memo[slot] = obj
            return obj
        if spec.factory is not None:
            slot = len(self.memo)
            self.memo.append(_PLACEHOLDER)
            vals = [self.dec() for _ in spec.field_names]
            obj = spec.factory(*vals)
            self.memo[slot] = obj
            return obj
        obj = spec.cls.__new__(spec.cls)
        self.memo.append(obj)
        setattr_ = object.__setattr__
        for name in spec.field_names:
            setattr_(obj, name, self.dec())
        return obj


def decode(data: bytes) -> object:
    """Decode bytes produced by :func:`encode`.

    Raises :class:`BinFormatError` on any defect — truncation, stray
    bytes, unknown tags/ids, malformed varints or utf-8.  Only
    registered types are ever constructed.
    """
    dec = _Decoder(data)
    old = sys.getrecursionlimit()
    if old < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        try:
            obj = dec.dec()
        except BinFormatError:
            raise
        except (struct.error, IndexError, ValueError, TypeError, KeyError) as exc:
            raise BinFormatError(f"malformed binfmt data: {exc!r}") from exc
    finally:
        if old < _RECURSION_LIMIT:
            sys.setrecursionlimit(old)
    if dec.pos != len(data):
        raise BinFormatError(f"{len(data) - dec.pos} trailing bytes after object")
    return obj
