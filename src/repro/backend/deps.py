"""The back-end's own memory disambiguator (GCC's ``true_dependence``).

Reproduces the precision level of GCC 2.7's RTL alias logic, which is what
the paper's "GCC result" column measures:

* two references with fully known ``symbol + constant`` addresses are
  independent when the symbols differ or the byte ranges are disjoint;
* everything else — array elements and pointer dereferences, whose
  addresses GCC 2.7 computes into pseudo-registers, leaving bare
  ``(mem (reg))`` expressions — conflicts with anything aliasable.

The ``MemRef.base_symbol`` field (the array an access indexes into) is
deliberately *not* consulted: GCC 2.7's RTL has lost that information by
scheduling time, and this conservatism is precisely what the paper's HLI
is designed to repair.  (Modern compilers recover it with TBAA/points-to
metadata — the same idea the HLI pioneered.)
"""

from __future__ import annotations

from .rtl import MemRef


def _static_base(m: MemRef) -> str | None:
    return m.known_symbol


def may_conflict(a: MemRef, b: MemRef) -> bool:
    """Conservative may-alias test between two memory references.

    Returns True when the back-end must assume the references can touch
    the same memory (the "GCC analyzer answers yes" case of Table 2).
    """
    base_a, base_b = _static_base(a), _static_base(b)
    if base_a is not None and base_b is not None:
        if base_a != base_b:
            return False  # distinct declared objects never overlap
        if a.known_offset is not None and b.known_offset is not None:
            lo_a, hi_a = a.known_offset, a.known_offset + a.width
            lo_b, hi_b = b.known_offset, b.known_offset + b.width
            return not (hi_a <= lo_b or hi_b <= lo_a)
        return True  # same object, at least one offset unknown
    # At least one side has no static base (pointer/computed address).
    known, unknown = (a, b) if base_a is not None else (b, a)
    if _static_base(known) is not None and not known.may_be_aliased:
        # Compiler-private slots (outgoing-arg area, spill slots) cannot be
        # reached through user pointers.
        return False
    return True


class LocalDependenceTest:
    """Counting wrapper used by the DDG builder (Table 2 statistics)."""

    def __init__(self) -> None:
        self.queries = 0
        self.conflicts = 0

    def true_dependence(self, a: MemRef, b: MemRef) -> bool:
        self.queries += 1
        result = may_conflict(a, b)
        if result:
            self.conflicts += 1
        return result
