"""Loop unrolling with HLI maintenance (the paper's Figure 6).

Unrolls innermost, branch-free, counted loops whose constant trip count
is divisible by the factor (no preconditioning loop is generated —
non-divisible candidates are skipped).  The interesting part is the HLI
side: each cloned memory reference receives a cloned item via
:func:`repro.hli.maintenance.unroll_region`, definite loop-carried
dependences that now fall *within* one unrolled iteration become
alias/equivalence facts, and crossing dependences get rescaled
distances — exactly the update the paper sketches.

The loop's trip count and step come from the HLI region header
(``get_region_info``), demonstrating the paper's point that high-level
*structure* information can guide back-end transformations that the RTL
alone cannot justify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hli.maintenance import UnrollMaintenance, unroll_region
from ..hli.query import HLIQuery
from ..hli.tables import HLIEntry, RegionType
from ..obs import metrics, trace
from .rtl import Insn, Opcode, Reg, RTLFunction, new_reg


@dataclass
class UnrollStats:
    loops_unrolled: int = 0
    copies_made: int = 0
    items_cloned: int = 0
    maintenance: list[UnrollMaintenance] = field(default_factory=list)

    def merge(self, other: "UnrollStats") -> None:
        self.loops_unrolled += other.loops_unrolled
        self.copies_made += other.copies_made
        self.items_cloned += other.items_cloned
        self.maintenance.extend(other.maintenance)


def _loop_span(fn: RTLFunction, top: str) -> tuple[int, int] | None:
    start = None
    for idx, insn in enumerate(fn.insns):
        if insn.op is Opcode.LABEL and insn.label == top:
            start = idx
        elif insn.op is Opcode.J and insn.label == top and start is not None:
            return start, idx
    return None


def _segment_is_unrollable(segment: list[Insn]) -> bool:
    """Branch-free except the single loop-exit BEQZ right after the header."""
    seen_guard = False
    for idx, insn in enumerate(segment):
        if insn.op in (Opcode.J, Opcode.RET):
            return False
        if insn.op in (Opcode.BEQZ, Opcode.BNEZ):
            if seen_guard:
                return False
            seen_guard = True
        if insn.op is Opcode.LABEL and not _is_cont_label(insn):
            return False
    return seen_guard


def _is_cont_label(insn: Insn) -> bool:
    return insn.label is not None and (".fcont" in insn.label or "cont" in insn.label)


def _loop_region_of(segment: list[Insn], query: HLIQuery) -> int | None:
    """The (innermost, LOOP) HLI region the segment's items live in."""
    for insn in segment:
        if insn.hli_item is None:
            continue
        info = query.get_region_info(insn.hli_item)
        if info is not None and info.region_type is RegionType.LOOP:
            return info.region_id
    return None


def _clone_segment(
    segment: list[Insn],
    copy_index: int,
    maint: UnrollMaintenance,
    pinned: frozenset[int] = frozenset(),
) -> list[Insn]:
    """Clone with per-copy renaming of pure temporaries.

    Registers read before being defined inside the segment are
    loop-carried (induction variables, accumulators) and keep their
    identity, as do ``pinned`` registers — those referenced anywhere
    outside the segment (live-out values such as a variable assigned in
    the loop and read after it must keep one home register across all
    copies).  Everything else gets a fresh register per copy.
    """
    defined: set[int] = set()
    live_in: set[int] = set()
    for insn in segment:
        for s in insn.src_regs():
            if s.rid not in defined:
                live_in.add(s.rid)
        if insn.dst is not None:
            defined.add(insn.dst.rid)
    live_in |= pinned
    rename: dict[int, Reg] = {}

    def map_reg(r: Reg) -> Reg:
        if r.rid in rename:
            return rename[r.rid]
        return r

    out: list[Insn] = []
    for insn in segment:
        new_srcs = tuple(map_reg(s) if isinstance(s, Reg) else s for s in insn.srcs)
        mem = None
        if insn.mem is not None:
            mem = type(insn.mem)(
                addr=map_reg(insn.mem.addr),
                width=insn.mem.width,
                is_store=insn.mem.is_store,
                known_symbol=insn.mem.known_symbol,
                known_offset=insn.mem.known_offset,
                base_symbol=insn.mem.base_symbol,
                may_be_aliased=insn.mem.may_be_aliased,
            )
        dst = insn.dst
        if dst is not None:
            if dst.rid in live_in or dst.rid not in defined:
                dst = map_reg(dst)
            else:
                fresh = new_reg(is_float=dst.is_float, name=dst.name)
                rename[dst.rid] = fresh
                dst = fresh
        hli_item = insn.hli_item
        if hli_item is not None:
            hli_item = maint.item_copy.get((hli_item, copy_index), None)
        clone = Insn(
            op=insn.op,
            dst=dst,
            srcs=new_srcs,
            mem=mem,
            label=insn.label,
            callee=insn.callee,
            line=insn.line,
            is_float=insn.is_float,
            imm=insn.imm,
            symbol=insn.symbol,
        )
        clone.hli_item = hli_item
        out.append(clone)
    return out


def run_unroll(
    fn: RTLFunction,
    factor: int,
    query: HLIQuery | None = None,
    entry: HLIEntry | None = None,
) -> UnrollStats:
    """Unroll eligible innermost loops of ``fn`` by ``factor`` (mutates it)."""
    stats = UnrollStats()
    if factor < 2 or query is None or entry is None:
        return stats
    with trace.span("backend.unroll", fn=fn.name, factor=factor):
        _run_unroll(fn, factor, query, entry, stats)
    if metrics.is_enabled():
        metrics.add("unroll.loops_unrolled", stats.loops_unrolled)
        metrics.add("unroll.copies_made", stats.copies_made)
        metrics.add("unroll.items_cloned", stats.items_cloned)
    return stats


def _run_unroll(
    fn: RTLFunction,
    factor: int,
    query: HLIQuery,
    entry: HLIEntry,
    stats: UnrollStats,
) -> None:
    for top, cont, exit_label in list(fn.loops):
        span = _loop_span(fn, top)
        if span is None:
            continue
        start, end = span
        segment = fn.insns[start + 1 : end]  # between LABEL top and J top
        inner_tops = {t for t, _, _ in fn.loops if t != top}
        if any(i.op is Opcode.LABEL and i.label in inner_tops for i in segment):
            continue
        if not _segment_is_unrollable(segment):
            continue
        region_id = _loop_region_of(segment, query)
        if region_id is None:
            continue
        region = entry.regions[region_id]
        if region.loop_trip <= 0 or region.loop_step == 0:
            continue
        if region.loop_trip % factor != 0 or region.loop_trip < factor:
            continue
        # Split the segment: [cond..BEQZ exit] stays once; the iteration
        # payload (body + step) is what gets replicated.
        guard_end = next(
            idx
            for idx, insn in enumerate(segment)
            if insn.op in (Opcode.BEQZ, Opcode.BNEZ)
        )
        if segment[guard_end].label != exit_label:
            continue  # guard does not exit this loop; be safe
        guard = segment[: guard_end + 1]
        payload = [i for i in segment[guard_end + 1 :] if i.op is not Opcode.LABEL]
        if not payload:
            continue
        maint = unroll_region(entry, region_id, factor)
        query.refresh()
        stats.maintenance.append(maint)
        stats.items_cloned += len(maint.item_copy)
        # Registers referenced outside the replicated payload (the guard,
        # code before/after the loop) are live across copies and must not
        # be renamed — e.g. a variable assigned every iteration and read
        # after the loop exits.
        payload_ids = {id(i) for i in payload}
        pinned: set[int] = set()
        for insn in fn.insns:
            if id(insn) in payload_ids:
                continue
            for s in insn.src_regs():
                pinned.add(s.rid)
            if insn.dst is not None:
                pinned.add(insn.dst.rid)
        new_segment = list(guard) + list(payload)
        for k in range(1, factor):
            new_segment.extend(_clone_segment(payload, k, maint, frozenset(pinned)))
            stats.copies_made += 1
        fn.insns[start + 1 : end] = new_segment
        stats.loops_unrolled += 1
        # the cont label vanished with the payload labels; fix loop record
        fn.loops = [
            (t, t if t == top else c, e) if t == top else (t, c, e)
            for t, c, e in fn.loops
        ]
