"""Basic blocks and control-flow graph over the RTL chain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .rtl import BRANCH_OPS, Insn, Opcode, RTLFunction


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``insns`` includes the leading LABEL (if any) and the trailing branch
    (if any); the scheduler pins both in place.
    """

    index: int
    insns: list[Insn] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    @property
    def label(self) -> Optional[str]:
        if self.insns and self.insns[0].op is Opcode.LABEL:
            return self.insns[0].label
        return None

    def body(self) -> list[Insn]:
        """Schedulable instructions: without leading label / trailing branch."""
        out = list(self.insns)
        if out and out[0].op is Opcode.LABEL:
            out = out[1:]
        if out and out[-1].op in BRANCH_OPS:
            out = out[:-1]
        return out

    def __iter__(self) -> Iterator[Insn]:
        return iter(self.insns)


@dataclass
class CFG:
    """Control-flow graph of one function."""

    blocks: list[BasicBlock] = field(default_factory=list)

    def flatten(self) -> list[Insn]:
        """Back to a linear instruction chain."""
        out: list[Insn] = []
        for b in self.blocks:
            out.extend(b.insns)
        return out


def build_cfg(fn: RTLFunction) -> CFG:
    """Split ``fn.insns`` into basic blocks and wire successor edges."""
    insns = fn.insns
    leaders: set[int] = {0} if insns else set()
    label_at: dict[str, int] = {}
    for idx, insn in enumerate(insns):
        if insn.op is Opcode.LABEL and insn.label is not None:
            leaders.add(idx)
            label_at[insn.label] = idx
        if insn.op in BRANCH_OPS and idx + 1 < len(insns):
            leaders.add(idx + 1)

    ordered = sorted(leaders)
    cfg = CFG()
    start_of_block: dict[int, int] = {}
    for bidx, start in enumerate(ordered):
        end = ordered[bidx + 1] if bidx + 1 < len(ordered) else len(insns)
        block = BasicBlock(index=bidx, insns=insns[start:end])
        cfg.blocks.append(block)
        start_of_block[start] = bidx

    # Successor edges.
    for bidx, block in enumerate(cfg.blocks):
        if not block.insns:
            continue
        last = block.insns[-1]
        if last.op is Opcode.J and last.label is not None:
            target = label_at.get(last.label)
            if target is not None:
                block.succs.append(start_of_block[target])
        elif last.op in (Opcode.BEQZ, Opcode.BNEZ):
            if last.label is not None:
                target = label_at.get(last.label)
                if target is not None:
                    block.succs.append(start_of_block[target])
            if bidx + 1 < len(cfg.blocks):
                block.succs.append(bidx + 1)
        elif last.op is Opcode.RET:
            pass
        else:
            if bidx + 1 < len(cfg.blocks):
                block.succs.append(bidx + 1)
    for block in cfg.blocks:
        for s in block.succs:
            cfg.blocks[s].preds.append(block.index)
    return cfg
