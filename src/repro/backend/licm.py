"""Loop-invariant code motion with HLI-aided load hoisting.

The paper's motivating example (Section 3.2.2): "in loop invariant code
removal, a memory reference can be moved out of a loop only when there
remains no other memory reference in the loop that can possibly alias
the memory reference."  Without HLI the back-end can prove that for
almost nothing; with HLI the ``get_equiv_acc``/``get_call_acc`` queries
answer it per pair.

The pass handles innermost loops only (no inner loop labels inside the
span) and hoists:

* ``LI``/``LA`` and pure ALU instructions whose operands are invariant
  and whose destination is defined exactly once in the loop;
* ``LOAD`` instructions with invariant addresses when no store or call
  in the loop may touch the loaded location (mode-dependent test).

Hoisted loads are re-homed in the HLI via
:func:`repro.hli.maintenance.move_item_to_parent`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hli.maintenance import MaintenanceError, move_item_to_parent
from ..hli.query import CallAcc, EquivAcc, HLIQuery
from ..hli.tables import HLIEntry
from ..obs import metrics, trace
from .cse import _PURE_OPS
from .deps import may_conflict
from .rtl import Insn, Opcode, Reg, RTLFunction


@dataclass
class LICMStats:
    alu_hoisted: int = 0
    loads_hoisted: int = 0
    loops_processed: int = 0

    def merge(self, other: "LICMStats") -> None:
        self.alu_hoisted += other.alu_hoisted
        self.loads_hoisted += other.loads_hoisted
        self.loops_processed += other.loops_processed


def _loop_span(fn: RTLFunction, top: str) -> tuple[int, int] | None:
    """(index of LABEL top, index of the J top closing the loop)."""
    start = None
    for idx, insn in enumerate(fn.insns):
        if insn.op is Opcode.LABEL and insn.label == top:
            start = idx
        elif insn.op is Opcode.J and insn.label == top and start is not None:
            return start, idx
    return None


def run_licm(
    fn: RTLFunction,
    use_hli: bool = False,
    query: HLIQuery | None = None,
    entry: HLIEntry | None = None,
) -> LICMStats:
    """Hoist invariants out of every innermost loop of ``fn`` (mutates it)."""
    stats = LICMStats()
    with trace.span("backend.licm", fn=fn.name, hli=use_hli):
        _run_licm(fn, use_hli, query, entry, stats)
    if metrics.is_enabled():
        metrics.add("licm.alu_hoisted", stats.alu_hoisted)
        metrics.add("licm.loads_hoisted", stats.loads_hoisted)
        metrics.add("licm.loops_processed", stats.loops_processed)
    return stats


def _run_licm(
    fn: RTLFunction,
    use_hli: bool,
    query: HLIQuery | None,
    entry: HLIEntry | None,
    stats: LICMStats,
) -> None:
    for top, _cont, _exit in list(fn.loops):
        span = _loop_span(fn, top)
        if span is None:
            continue
        start, end = span
        body = fn.insns[start + 1 : end]
        # innermost only: no other loop top inside
        inner_tops = {t for t, _, _ in fn.loops if t != top}
        if any(i.op is Opcode.LABEL and i.label in inner_tops for i in body):
            continue
        stats.loops_processed += 1
        hoisted = _hoist_from_body(body, use_hli, query, entry, stats)
        if hoisted:
            remaining = [i for i in body if i not in hoisted]
            fn.insns[start + 1 : end] = remaining
            # insert before the loop header label
            for h in reversed(hoisted):
                fn.insns.insert(start, h)


def _hoist_from_body(
    body: list[Insn],
    use_hli: bool,
    query: HLIQuery | None,
    entry: HLIEntry | None,
    stats: LICMStats,
) -> list[Insn]:
    def_counts: dict[int, int] = {}
    for insn in body:
        if insn.dst is not None:
            def_counts[insn.dst.rid] = def_counts.get(insn.dst.rid, 0) + 1

    stores = [i for i in body if i.op is Opcode.STORE]
    calls = [i for i in body if i.op is Opcode.CALL]
    has_branch_inside = any(
        i.op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.LABEL) for i in body[:-1]
    )

    invariant_regs: set[int] = set()
    hoisted: list[Insn] = []
    changed = True
    hoisted_set: set[int] = set()

    def srcs_invariant(insn: Insn) -> bool:
        for s in insn.src_regs():
            if def_counts.get(s.rid, 0) == 0:
                continue  # defined outside the loop
            if s.rid not in invariant_regs:
                return False
        return True

    while changed:
        changed = False
        for insn in body:
            if insn.uid in hoisted_set or insn.dst is None:
                continue
            if def_counts.get(insn.dst.rid, 0) != 1:
                continue
            if insn.op in _PURE_OPS and srcs_invariant(insn):
                # Conditional execution makes hoisting pure ops safe only
                # because our ALU cannot fault on speculation... except
                # integer division, which can.
                if has_branch_inside and insn.op in (Opcode.DIV, Opcode.MOD):
                    continue
                hoisted.append(insn)
                hoisted_set.add(insn.uid)
                invariant_regs.add(insn.dst.rid)
                stats.alu_hoisted += 1
                changed = True
            elif insn.op is Opcode.LOAD and srcs_invariant(insn):
                # Loads cannot fault on this machine model, so speculative
                # hoisting past the loop guard / inner branches is safe as
                # long as no aliasing store or call intervenes.
                if _load_hoistable(insn, stores, calls, use_hli, query):
                    hoisted.append(insn)
                    hoisted_set.add(insn.uid)
                    invariant_regs.add(insn.dst.rid)
                    stats.loads_hoisted += 1
                    if entry is not None and insn.hli_item is not None:
                        try:
                            move_item_to_parent(entry, insn.hli_item)
                        except MaintenanceError:
                            pass
                        if query is not None:
                            query.refresh()
                    changed = True
    return hoisted


def _load_hoistable(
    load: Insn,
    stores: list[Insn],
    calls: list[Insn],
    use_hli: bool,
    query: HLIQuery | None,
) -> bool:
    assert load.mem is not None
    for store in stores:
        assert store.mem is not None
        if use_hli and query is not None and load.hli_item and store.hli_item:
            if query.get_equiv_acc(load.hli_item, store.hli_item) is not EquivAcc.NONE:
                return False
        elif may_conflict(load.mem, store.mem):
            return False
    for call in calls:
        if use_hli and query is not None and load.hli_item and call.hli_item:
            acc = query.get_call_acc(load.hli_item, call.hli_item)
            if acc in (CallAcc.MOD, CallAcc.REFMOD, CallAcc.UNKNOWN):
                return False
        else:
            return False  # a call may write anything
    return True
