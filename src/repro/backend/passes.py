"""Optimization pass statistics.

The orchestration that used to live here (``run_optimizations``) moved
into the pass manager: each optimization is now a declared
:class:`repro.backend.pm.Pass` in :mod:`repro.driver.passes`, and the
manual "rebuild ``HLIQuery`` after table mutations" loop became a
declared invalidation that the manager enforces centrally.  What remains
is the aggregate statistics container shared by the three passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cse import CSEStats
from .licm import LICMStats
from .unroll import UnrollStats

__all__ = ["OptStats"]


@dataclass
class OptStats:
    """Aggregated per-program optimization statistics."""

    cse: CSEStats = field(default_factory=CSEStats)
    licm: LICMStats = field(default_factory=LICMStats)
    unroll: UnrollStats = field(default_factory=UnrollStats)
