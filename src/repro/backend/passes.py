"""Optimization pass orchestration for the compilation driver."""

from __future__ import annotations

from dataclasses import dataclass, field

from .cse import CSEStats, run_cse
from .ddg import DDGMode
from .licm import LICMStats, run_licm
from .unroll import UnrollStats, run_unroll


@dataclass
class OptStats:
    """Aggregated per-program optimization statistics."""

    cse: CSEStats = field(default_factory=CSEStats)
    licm: LICMStats = field(default_factory=LICMStats)
    unroll: UnrollStats = field(default_factory=UnrollStats)


def run_optimizations(result, opts) -> OptStats:
    """Run the requested passes over every function of a compilation.

    Pass order mirrors GCC: unroll first (it needs pristine line-table
    mappings), then CSE, then LICM, and the driver schedules afterwards.
    HLI usage follows ``opts.mode`` (GCC mode = no HLI in the passes).
    """
    stats = OptStats()
    use_hli = opts.mode is not DDGMode.GCC
    for name, fn in result.rtl.functions.items():
        query = result.queries.get(name) if use_hli else None
        entry = result.hli.entries.get(name)
        if opts.unroll > 1:
            s = run_unroll(
                fn,
                opts.unroll,
                query=result.queries.get(name),
                entry=entry,
            )
            stats.unroll.merge(s)
        if opts.cse:
            stats.cse.merge(run_cse(fn, use_hli=use_hli, query=query, entry=entry))
        if opts.licm:
            stats.licm.merge(run_licm(fn, use_hli=use_hli, query=query, entry=entry))
        # table mutations invalidate the cached query indices
        if entry is not None and (opts.unroll > 1 or opts.cse or opts.licm):
            from ..hli.query import HLIQuery

            result.queries[name] = HLIQuery(entry)
    result.opt_stats = stats
    return stats
