"""RTL-like low-level IR for the back-end compiler.

Mirrors the aspects of GCC RTL the paper relies on:

* a linear *chain* of instructions per function, each annotated with the
  source line it came from (the line numbers are the join key between HLI
  items and memory references, Section 2.1);
* explicit memory references: every ``LOAD``/``STORE`` carries a
  :class:`MemRef`;
* pseudo-registers: local scalars live in an unbounded virtual register
  file, exactly the GCC behaviour ITEMGEN assumes (Section 3.1.1).

The IR deliberately models GCC 2.7's *weak* memory disambiguation: a
memory reference only remembers its base symbol when the address is a
direct ``symbol + constant`` — array elements and pointer dereferences go
through an address register and lose the base (see
:class:`~repro.backend.deps.LocalDependenceTest`).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional


class Opcode(enum.Enum):
    # data movement
    LI = "li"  # load immediate
    MOVE = "move"
    LA = "la"  # load address of a symbol (+ constant offset)
    LOAD = "load"
    STORE = "store"
    # integer arithmetic / logic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    NOT = "not"  # bitwise complement
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    # comparisons (produce 0/1)
    SLT = "slt"
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    # conversions
    CVT_IF = "cvt.i.f"  # int -> float
    CVT_FI = "cvt.f.i"  # float -> int
    # control
    LABEL = "label"
    J = "j"
    BEQZ = "beqz"
    BNEZ = "bnez"
    CALL = "call"
    RET = "ret"
    NOP = "nop"


#: Opcodes that terminate a basic block.
BRANCH_OPS = {Opcode.J, Opcode.BEQZ, Opcode.BNEZ, Opcode.RET}

#: Opcodes with no register result.
NO_RESULT_OPS = {
    Opcode.STORE,
    Opcode.LABEL,
    Opcode.J,
    Opcode.BEQZ,
    Opcode.BNEZ,
    Opcode.RET,
    Opcode.NOP,
}

class _IdAllocator:
    """Monotonic id source, safe under threads *and* reservation.

    ``itertools.count`` hands out ids atomically, but :func:`reserve_ids`
    used to *replace* the counter object — a concurrent ``next()`` on the
    old counter could then re-issue an id the replacement also covers.
    The daemon compiles in worker threads that decode cached RTL (and so
    reserve foreign id ranges) while other threads allocate, which turns
    that window into duplicate registers, i.e. silent miscompiles.  One
    lock per allocation closes it.
    """

    __slots__ = ("_next", "_lock")

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self._lock = threading.Lock()

    def __next__(self) -> int:
        with self._lock:
            n = self._next
            self._next = n + 1
            return n

    def reserve(self, floor: int) -> None:
        """Never hand out an id <= ``floor`` from now on."""
        with self._lock:
            if floor >= self._next:
                self._next = floor + 1


_reg_ids = _IdAllocator(1)


@dataclass(frozen=True)
class Reg:
    """A pseudo (virtual) register."""

    rid: int
    is_float: bool = False
    name: str = ""

    def __str__(self) -> str:
        prefix = "f" if self.is_float else "r"
        suffix = f":{self.name}" if self.name else ""
        return f"%{prefix}{self.rid}{suffix}"


def new_reg(is_float: bool = False, name: str = "") -> Reg:
    """Allocate a fresh pseudo register."""
    return Reg(rid=next(_reg_ids), is_float=is_float, name=name)


def reserve_ids(max_reg: int, max_insn: int) -> None:
    """Advance the global reg/insn counters past externally created IDs.

    RTL deserialized from a cache (or another process) carries reg IDs
    and insn UIDs minted by a *different* counter state; any pass that
    then calls :func:`new_reg` or constructs an :class:`Insn` in this
    process could collide with them.  Callers that import foreign RTL
    must reserve its ID ranges first.
    """
    _reg_ids.reserve(max_reg)
    _insn_ids.reserve(max_insn)


@dataclass
class MemRef:
    """One memory reference inside a LOAD/STORE instruction.

    ``addr`` holds the address at run time.  ``known_symbol`` /
    ``known_offset`` reflect what the *back-end* can see statically:
    populated only for direct ``&symbol + const`` addresses (scalar
    globals/statics, spilled locals, stack arg slots) — array and pointer
    accesses leave them ``None``, reproducing GCC 2.7's conservatism.
    """

    addr: Reg
    width: int = 4
    is_store: bool = False
    known_symbol: Optional[str] = None
    known_offset: Optional[int] = None
    #: Set when the base symbol is visible to the back-end but the offset
    #: is not (e.g. (mem (plus (symbol_ref a) (reg)))).  GCC-level
    #: disambiguation may still separate different symbols in this case —
    #: but only when neither object can be pointed to (see deps.py).
    base_symbol: Optional[str] = None
    #: True when the object's address escapes (may be aliased by pointers);
    #: mirrors RTX MEM_IN_STRUCT / aliasing caveats GCC tracks.
    may_be_aliased: bool = True

    def __str__(self) -> str:
        tag = "st" if self.is_store else "ld"
        if self.known_symbol is not None:
            return f"{tag}[&{self.known_symbol}+{self.known_offset}]"
        if self.base_symbol is not None:
            return f"{tag}[{self.base_symbol}+{self.addr}]"
        return f"{tag}[{self.addr}]"


_insn_ids = _IdAllocator(1)


@dataclass
class Insn:
    """One RTL instruction."""

    op: Opcode
    dst: Optional[Reg] = None
    srcs: tuple = ()  # Reg or int/float immediates
    mem: Optional[MemRef] = None
    label: Optional[str] = None  # for LABEL and branch targets
    callee: Optional[str] = None
    #: arg registers for CALL (read), result register in dst
    line: int = 0
    is_float: bool = False
    uid: int = field(default_factory=lambda: next(_insn_ids))
    #: HLI item mapped by the back-end's line-table matching (mapping.py).
    hli_item: Optional[int] = None
    #: immediate value for LI / LA offset
    imm: object = None
    #: symbol name for LA
    symbol: Optional[str] = None

    def src_regs(self) -> list[Reg]:
        regs = [s for s in self.srcs if isinstance(s, Reg)]
        if self.mem is not None and isinstance(self.mem.addr, Reg):
            regs.append(self.mem.addr)
        return regs

    @property
    def is_mem(self) -> bool:
        return self.mem is not None

    @property
    def is_call(self) -> bool:
        return self.op is Opcode.CALL

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    def __str__(self) -> str:
        parts = [self.op.value]
        if self.dst is not None:
            parts.append(str(self.dst))
        for s in self.srcs:
            parts.append(str(s))
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.symbol is not None:
            parts.append(f"&{self.symbol}")
        if self.mem is not None:
            parts.append(str(self.mem))
        if self.label is not None:
            parts.append(self.label)
        if self.callee is not None:
            parts.append(self.callee)
        return f"{' '.join(parts)}  ; line {self.line}" + (
            f" item {self.hli_item}" if self.hli_item else ""
        )


@dataclass
class RTLFunction:
    """A lowered function: the instruction chain plus metadata."""

    name: str
    insns: list[Insn] = field(default_factory=list)
    #: parameter value registers, in order
    param_regs: list[Reg] = field(default_factory=list)
    #: register holding the return value (read by RET), if any
    ret_reg: Optional[Reg] = None
    ret_is_float: bool = False
    #: loop structure hints: (header_label, latch_label, exit_label) triples
    loops: list[tuple[str, str, str]] = field(default_factory=list)
    #: local memory frame: symbol name -> (offset, size)
    frame: dict[str, tuple[int, int]] = field(default_factory=dict)
    frame_size: int = 0

    def mem_insns(self) -> Iterator[Insn]:
        for i in self.insns:
            if i.mem is not None:
                yield i

    def labels(self) -> dict[str, int]:
        """Map label name -> index in ``insns``."""
        return {
            i.label: idx
            for idx, i in enumerate(self.insns)
            if i.op is Opcode.LABEL and i.label is not None
        }

    def dump(self) -> str:
        return "\n".join(
            (f"{idx:4d}: " + str(i)) for idx, i in enumerate(self.insns)
        )


@dataclass
class RTLProgram:
    """All lowered functions plus global data layout."""

    functions: dict[str, RTLFunction] = field(default_factory=dict)
    #: global symbol name -> (address, size in bytes)
    globals_layout: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: initial values: address -> value
    init_data: dict[int, object] = field(default_factory=dict)

    def function(self, name: str) -> RTLFunction:
        return self.functions[name]
