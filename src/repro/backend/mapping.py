"""Importing HLI into the back-end: line-table → RTL mapping (Section 3.2.1).

The back-end walks its instruction chain, groups memory references (and
calls) by annotated source line, and matches them *positionally* against
the per-line item lists of the HLI line table — exactly the mapping the
paper describes as "straightforward since the ITEMGEN phase in the
front-end follows the GCC rules for memory reference generation".

A reference whose line has a count or access-type mismatch is left
unmapped (``hli_item = None``); downstream queries then answer UNKNOWN
and the back-end falls back to its own conservative analysis — the
paper's "unknown dependence types" escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hli.tables import HLIEntry, ItemType
from ..obs import metrics
from .rtl import Insn, Opcode, RTLFunction


@dataclass
class MapStats:
    """Outcome of mapping one function."""

    mapped: int = 0
    unmapped: int = 0
    mismatched_lines: list[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.mapped + self.unmapped


def _expected_type(insn: Insn) -> ItemType:
    if insn.op is Opcode.CALL:
        return ItemType.CALL
    assert insn.mem is not None
    return ItemType.STORE if insn.mem.is_store else ItemType.LOAD


def map_function(fn: RTLFunction, entry: HLIEntry) -> MapStats:
    """Annotate every memory reference / call in ``fn`` with its HLI item.

    Returns mapping statistics.  Mutates ``insn.hli_item``.
    """
    stats = MapStats()
    by_line: dict[int, list[Insn]] = {}
    for insn in fn.insns:
        if insn.mem is not None or insn.op is Opcode.CALL:
            insn.hli_item = None
            by_line.setdefault(insn.line, []).append(insn)

    for line, insns in by_line.items():
        items = entry.line_table.items_on_line(line)
        if len(items) != len(insns):
            stats.mismatched_lines.append(line)
            stats.unmapped += len(insns)
            continue
        ok = all(
            _expected_type(insn) is item_type
            for insn, (_, item_type) in zip(insns, items)
        )
        if not ok:
            stats.mismatched_lines.append(line)
            stats.unmapped += len(insns)
            continue
        for insn, (item_id, _) in zip(insns, items):
            insn.hli_item = item_id
            stats.mapped += 1

    metrics.add("map.mapped", stats.mapped)
    metrics.add("map.unmapped", stats.unmapped)
    return stats
