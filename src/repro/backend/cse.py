"""Local common-subexpression elimination with HLI-aided invalidation.

Implements the paper's Figure 4 scenario: GCC's CSE keeps a table of
available expressions; without interprocedural information every
expression containing a memory reference must be purged at each call
site.  With HLI, ``get_call_acc`` selectively purges only expressions
whose memory location the callee may modify.

The pass is per-basic-block value numbering:

* pure ALU results are reused when the same (op, operands) recurs;
* a LOAD is reused from an earlier LOAD of the same address value, or
  forwarded from an earlier STORE through it;
* STOREs invalidate loads that may alias (local test, or HLI
  ``get_equiv_acc`` when enabled);
* CALLs invalidate memory-derived entries — all of them without HLI,
  only the MOD-set with HLI.

Eliminated loads have their HLI items deleted via the maintenance API,
keeping the line-table mapping consistent for later passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hli.maintenance import delete_item
from ..hli.query import CallAcc, EquivAcc, HLIQuery
from ..hli.tables import HLIEntry
from ..obs import metrics, trace
from .cfg import build_cfg
from .deps import may_conflict
from .rtl import Insn, Opcode, Reg, RTLFunction

#: Opcodes whose results are pure functions of their operands.
_PURE_OPS = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.DIV,
    Opcode.MOD,
    Opcode.NEG,
    Opcode.NOT,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
    Opcode.SLT,
    Opcode.SLE,
    Opcode.SEQ,
    Opcode.SNE,
    Opcode.CVT_IF,
    Opcode.CVT_FI,
    Opcode.LA,
    Opcode.LI,
}


@dataclass
class CSEStats:
    """What the pass eliminated (for the Figure 4 ablation benchmark)."""

    alu_eliminated: int = 0
    loads_eliminated: int = 0
    call_invalidation_events: int = 0
    entries_kept_across_calls: int = 0
    entries_purged_at_calls: int = 0

    def merge(self, other: "CSEStats") -> None:
        self.alu_eliminated += other.alu_eliminated
        self.loads_eliminated += other.loads_eliminated
        self.call_invalidation_events += other.call_invalidation_events
        self.entries_kept_across_calls += other.entries_kept_across_calls
        self.entries_purged_at_calls += other.entries_purged_at_calls


@dataclass
class _MemEntry:
    """One available memory value: the register that holds *(addr)."""

    insn: Insn  # the LOAD/STORE that produced the value
    value_reg: Reg
    value_vn: int
    addr_vn: int


class _BlockCSE:
    def __init__(
        self,
        use_hli: bool,
        query: Optional[HLIQuery],
        entry: Optional[HLIEntry],
        stats: CSEStats,
    ) -> None:
        self.use_hli = use_hli
        self.query = query
        self.entry = entry
        self.stats = stats
        self._vn = 0
        self.reg_vn: dict[int, int] = {}
        self.expr_table: dict[tuple, tuple[Reg, int]] = {}
        self.mem_table: list[_MemEntry] = []

    def fresh_vn(self) -> int:
        self._vn += 1
        return self._vn

    def vn_of(self, src) -> object:
        if isinstance(src, Reg):
            vn = self.reg_vn.get(src.rid)
            if vn is None:
                vn = self.fresh_vn()
                self.reg_vn[src.rid] = vn
            return ("r", vn)
        return ("imm", src)

    def define(self, reg: Reg) -> int:
        vn = self.fresh_vn()
        self.reg_vn[reg.rid] = vn
        return vn

    # -- main walk ---------------------------------------------------------

    def run(self, insns: list[Insn]) -> list[Insn]:
        out: list[Insn] = []
        for insn in insns:
            replacement = self.visit(insn)
            if replacement is not None:
                out.append(replacement)
        return out

    def visit(self, insn: Insn) -> Optional[Insn]:
        op = insn.op
        if op in _PURE_OPS and insn.dst is not None:
            key = (
                op,
                insn.is_float,
                tuple(self.vn_of(s) for s in insn.srcs),
                insn.imm,
                insn.symbol,
            )
            hit = self.expr_table.get(key)
            if hit is not None:
                reg, vn = hit
                if self.reg_vn.get(reg.rid) == vn and reg.rid != insn.dst.rid:
                    self.stats.alu_eliminated += 1
                    move = Insn(
                        Opcode.MOVE,
                        dst=insn.dst,
                        srcs=(reg,),
                        line=insn.line,
                        is_float=insn.is_float,
                    )
                    self.define(insn.dst)
                    # dst now holds the same value as reg
                    self.reg_vn[insn.dst.rid] = vn
                    return move
            vn = self.define(insn.dst)
            self.expr_table[key] = (insn.dst, vn)
            return insn
        if op is Opcode.MOVE and insn.dst is not None:
            src = insn.srcs[0]
            if isinstance(src, Reg):
                vn = self.reg_vn.get(src.rid)
                if vn is None:
                    vn = self.fresh_vn()
                    self.reg_vn[src.rid] = vn
                self.reg_vn[insn.dst.rid] = vn
            else:
                self.define(insn.dst)
            return insn
        if op is Opcode.LOAD:
            return self.visit_load(insn)
        if op is Opcode.STORE:
            return self.visit_store(insn)
        if op is Opcode.CALL:
            self.visit_call(insn)
            if insn.dst is not None:
                self.define(insn.dst)
            return insn
        # branches, labels, ret: leave alone
        if insn.dst is not None:
            self.define(insn.dst)
        return insn

    def visit_load(self, insn: Insn) -> Optional[Insn]:
        assert insn.mem is not None
        addr_vn = self.vn_of(insn.mem.addr)
        for entry in self.mem_table:
            if entry.addr_vn == addr_vn and self.reg_vn.get(entry.value_reg.rid) == entry.value_vn:
                self.stats.loads_eliminated += 1
                if self.entry is not None and insn.hli_item is not None:
                    delete_item(self.entry, insn.hli_item)
                    if self.query is not None:
                        self.query.refresh()
                assert insn.dst is not None
                move = Insn(
                    Opcode.MOVE,
                    dst=insn.dst,
                    srcs=(entry.value_reg,),
                    line=insn.line,
                    is_float=insn.is_float,
                )
                self.reg_vn[insn.dst.rid] = entry.value_vn
                return move
        assert insn.dst is not None
        vn = self.define(insn.dst)
        self.mem_table.append(
            _MemEntry(insn=insn, value_reg=insn.dst, value_vn=vn, addr_vn=addr_vn)  # type: ignore[arg-type]
        )
        return insn

    def visit_store(self, insn: Insn) -> Insn:
        assert insn.mem is not None
        survivors: list[_MemEntry] = []
        for entry in self.mem_table:
            assert entry.insn.mem is not None
            if self._store_kills(insn, entry):
                continue
            survivors.append(entry)
        self.mem_table = survivors
        # the stored value is now available at this address
        src = insn.srcs[0]
        if isinstance(src, Reg):
            vn = self.reg_vn.get(src.rid)
            if vn is None:
                vn = self.define(src)
            self.mem_table.append(
                _MemEntry(
                    insn=insn,
                    value_reg=src,
                    value_vn=vn,
                    addr_vn=self.vn_of(insn.mem.addr),  # type: ignore[arg-type]
                )
            )
        return insn

    def _store_kills(self, store: Insn, entry: _MemEntry) -> bool:
        assert store.mem is not None and entry.insn.mem is not None
        if entry.addr_vn == self.vn_of(store.mem.addr):
            return True  # same address: superseded (new entry added after)
        if self.use_hli and self.query is not None:
            a, b = store.hli_item, entry.insn.hli_item
            if a is not None and b is not None:
                return self.query.get_equiv_acc(a, b) is not EquivAcc.NONE
        return may_conflict(store.mem, entry.insn.mem)

    def visit_call(self, insn: Insn) -> None:
        """Figure 4: purge memory entries the callee may modify."""
        self.stats.call_invalidation_events += 1
        survivors: list[_MemEntry] = []
        for entry in self.mem_table:
            purge = True
            if (
                self.use_hli
                and self.query is not None
                and insn.hli_item is not None
                and entry.insn.hli_item is not None
            ):
                acc = self.query.get_call_acc(entry.insn.hli_item, insn.hli_item)
                purge = acc in (CallAcc.MOD, CallAcc.REFMOD, CallAcc.UNKNOWN)
            if purge:
                self.stats.entries_purged_at_calls += 1
            else:
                self.stats.entries_kept_across_calls += 1
                survivors.append(entry)
        self.mem_table = survivors


def run_cse(
    fn: RTLFunction,
    use_hli: bool = False,
    query: Optional[HLIQuery] = None,
    entry: Optional[HLIEntry] = None,
) -> CSEStats:
    """Run local CSE over every basic block of ``fn`` (mutates it)."""
    stats = CSEStats()
    with trace.span("backend.cse", fn=fn.name, hli=use_hli):
        cfg = build_cfg(fn)
        new_chain: list[Insn] = []
        for block in cfg.blocks:
            cse = _BlockCSE(use_hli=use_hli, query=query, entry=entry, stats=stats)
            new_chain.extend(cse.run(block.insns))
        fn.insns = new_chain
    if metrics.is_enabled():
        metrics.add("cse.alu_eliminated", stats.alu_eliminated)
        metrics.add("cse.loads_eliminated", stats.loads_eliminated)
        metrics.add("cse.entries_kept_across_calls", stats.entries_kept_across_calls)
        metrics.add("cse.entries_purged_at_calls", stats.entries_purged_at_calls)
    return stats
