"""Data dependence graph construction for the instruction scheduler.

Implements the paper's Figure 5 exactly: for each pair of memory
references in a basic block where at least one is a write, the builder
asks the back-end's own ``true_dependence`` analog *and* the HLI
``get_equiv_acc`` query, and combines them::

    final_value = flag_use_hli ? gcc_value * hli_value : gcc_value

Three modes are supported — ``gcc`` (local only), ``hli`` (HLI only), and
``combined`` (the AND of both, which is what the paper runs) — and the
builder records the per-program statistics reported in Table 2: total
dependence queries, GCC-yes, HLI-yes, and combined-yes counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..hli.query import CallAcc, EquivAcc, HLIQuery
from .deps import may_conflict
from .rtl import Insn, Opcode

#: Register-dependence latencies are the scheduler's concern; the DDG
#: only records precedence edges.


class DDGMode(enum.Enum):
    GCC = "gcc"
    HLI = "hli"
    COMBINED = "combined"


@dataclass
class DepStats:
    """Table 2 counters, accumulated across basic blocks / functions."""

    total_tests: int = 0
    gcc_yes: int = 0
    hli_yes: int = 0
    combined_yes: int = 0
    #: call-vs-memory ordering decisions (one per call/reference pair)
    call_tests: int = 0
    #: decisions that kept the edge — GCC mode always keeps it; the HLI
    #: REF/MOD summary (per-file or linked) is what deletes edges here
    call_dep: int = 0

    def merge(self, other: "DepStats") -> None:
        self.total_tests += other.total_tests
        self.gcc_yes += other.gcc_yes
        self.hli_yes += other.hli_yes
        self.combined_yes += other.combined_yes
        self.call_tests += other.call_tests
        self.call_dep += other.call_dep

    @property
    def reduction(self) -> float:
        """Fractional reduction in dependence edges: GCC-only vs combined."""
        if self.gcc_yes == 0:
            return 0.0
        return 1.0 - self.combined_yes / self.gcc_yes


@dataclass
class DDG:
    """Dependence edges over one basic block's schedulable instructions."""

    insns: list[Insn]
    #: adjacency: position -> set of successor positions
    succs: list[set[int]] = field(default_factory=list)
    preds: list[set[int]] = field(default_factory=list)
    #: (src, dst) -> edge kind: "raw" | "war" | "waw" | "mem" | "call"
    kinds: dict = field(default_factory=dict)

    def add_edge(self, i: int, j: int, kind: str = "raw") -> None:
        if i == j:
            return
        if j not in self.succs[i]:
            self.succs[i].add(j)
            self.preds[j].add(i)
            self.kinds[(i, j)] = kind
        elif kind == "raw":
            # true dependence dominates anti/output for latency purposes
            self.kinds[(i, j)] = kind


def _hli_dependence(query: Optional[HLIQuery], a: Insn, b: Insn) -> bool:
    """HLI verdict: must we assume a/b touch the same location?"""
    if query is None or a.hli_item is None or b.hli_item is None:
        return True  # unknown: be conservative
    result = query.get_equiv_acc(a.hli_item, b.hli_item)
    return result is not EquivAcc.NONE


def _call_mem_dependence(
    mode: DDGMode, query: Optional[HLIQuery], call: Insn, mem: Insn
) -> bool:
    """Must the memory reference stay ordered with the call?"""
    if mode is DDGMode.GCC:
        return True  # GCC assumes a call can touch any memory location
    if query is None or call.hli_item is None or mem.hli_item is None:
        return True
    acc = query.get_call_acc(mem.hli_item, call.hli_item)
    if acc is CallAcc.UNKNOWN:
        return True
    assert mem.mem is not None
    if mem.mem.is_store:
        # Store vs call: conflict if callee reads or writes the location.
        return acc is not CallAcc.NONE
    # Load vs call: conflict only if callee may write the location.
    return acc in (CallAcc.MOD, CallAcc.REFMOD)


class DDGBuilder:
    """Build the DDG of one basic block under a given mode."""

    def __init__(
        self,
        mode: DDGMode,
        query: Optional[HLIQuery] = None,
        stats: Optional[DepStats] = None,
    ) -> None:
        self.mode = mode
        self.query = query
        self.stats = stats if stats is not None else DepStats()

    def build(self, insns: list[Insn]) -> DDG:
        n = len(insns)
        ddg = DDG(insns=insns, succs=[set() for _ in range(n)], preds=[set() for _ in range(n)])
        self._register_edges(ddg)
        self._memory_edges(ddg)
        self._call_edges(ddg)
        return ddg

    # -- register dependences ------------------------------------------------

    def _register_edges(self, ddg: DDG) -> None:
        last_writer: dict[int, int] = {}
        readers: dict[int, list[int]] = {}
        for j, insn in enumerate(ddg.insns):
            for src in insn.src_regs():
                w = last_writer.get(src.rid)
                if w is not None:
                    ddg.add_edge(w, j, "raw")
                readers.setdefault(src.rid, []).append(j)
            if insn.dst is not None:
                rid = insn.dst.rid
                w = last_writer.get(rid)
                if w is not None:
                    ddg.add_edge(w, j, "waw")
                for r in readers.get(rid, ()):
                    ddg.add_edge(r, j, "war")
                last_writer[rid] = j
                readers[rid] = []

    # -- memory dependences (Figure 5) ---------------------------------------------

    def _memory_edges(self, ddg: DDG) -> None:
        mems = [(i, insn) for i, insn in enumerate(ddg.insns) if insn.mem is not None]
        for x in range(len(mems)):
            for y in range(x + 1, len(mems)):
                i, a = mems[x]
                j, b = mems[y]
                assert a.mem is not None and b.mem is not None
                if not (a.mem.is_store or b.mem.is_store):
                    continue
                self.stats.total_tests += 1
                gcc_value = may_conflict(a.mem, b.mem)
                hli_value = _hli_dependence(self.query, a, b)
                combined = gcc_value and hli_value
                if gcc_value:
                    self.stats.gcc_yes += 1
                if hli_value:
                    self.stats.hli_yes += 1
                if combined:
                    self.stats.combined_yes += 1
                if self.mode is DDGMode.GCC:
                    final = gcc_value
                elif self.mode is DDGMode.HLI:
                    final = hli_value
                else:
                    final = combined
                if final:
                    ddg.add_edge(i, j, "mem")

    # -- call ordering ----------------------------------------------------------------

    def _call_edges(self, ddg: DDG) -> None:
        calls = [i for i, insn in enumerate(ddg.insns) if insn.op is Opcode.CALL]
        if not calls:
            return
        # Calls stay ordered among themselves (observable side effects).
        for x in range(len(calls) - 1):
            ddg.add_edge(calls[x], calls[x + 1], "call")
        for c in calls:
            call_insn = ddg.insns[c]
            for i, insn in enumerate(ddg.insns):
                if insn.mem is None:
                    continue
                self.stats.call_tests += 1
                if _call_mem_dependence(self.mode, self.query, call_insn, insn):
                    self.stats.call_dep += 1
                    if i < c:
                        ddg.add_edge(i, c, "call")
                    elif i > c:
                        ddg.add_edge(c, i, "call")
