"""Basic-block list scheduler (GCC's first instruction scheduling pass).

The scheduler reorders each basic block's instructions subject to the
data dependence graph built by :mod:`repro.backend.ddg`, using classic
critical-path list scheduling.  Like GCC 2.7 (and as the paper notes in
Section 4.3), scheduling never crosses basic-block boundaries — which is
why large dependence-edge reductions do not always turn into large
speedups.

The DDG mode decides the scheduler's memory disambiguation precision:
``gcc`` = back-end only, ``hli`` = HLI only, ``combined`` = Figure 5's
AND combination.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hli.query import HLIQuery
from ..machine.latencies import r4600_latency
from ..obs import metrics, trace
from .cfg import build_cfg
from .ddg import DDG, DDGBuilder, DDGMode, DepStats
from .rtl import BRANCH_OPS, Insn, Opcode, RTLFunction


@dataclass
class ScheduleResult:
    """Per-function scheduling outcome."""

    fn: RTLFunction
    stats: DepStats = field(default_factory=DepStats)
    blocks_scheduled: int = 0
    moved_insns: int = 0


def _critical_heights(ddg: DDG, latency: Callable[[Insn], int]) -> list[int]:
    """Longest-latency path from each node to the DDG's sinks."""
    n = len(ddg.insns)
    heights = [0] * n
    for i in range(n - 1, -1, -1):
        lat = latency(ddg.insns[i])
        best = 0
        for j in ddg.succs[i]:
            if heights[j] > best:
                best = heights[j]
        heights[i] = lat + best
    return heights


def schedule_block(
    insns: list[Insn],
    builder: DDGBuilder,
    latency: Callable[[Insn], int],
) -> list[Insn]:
    """Cycle-driven list scheduling of one block body.

    Models a single-issue machine while choosing the order: each node's
    earliest start is constrained by its predecessors' completion, and at
    every issue slot the scheduler picks, among *started-able* ready
    nodes, the one with the greatest critical-path height.  This is what
    lets accurate dependence information pay off — an independent load
    can slide into a stall slot that a conservative DDG would keep it out
    of (exactly GCC's haifa-style block scheduling behaviour).
    """
    if len(insns) <= 1:
        return list(insns)
    ddg = builder.build(insns)
    heights = _critical_heights(ddg, latency)
    n = len(insns)
    remaining_preds = [len(ddg.preds[i]) for i in range(n)]
    earliest = [0] * n
    ready: list[int] = [i for i in range(n) if remaining_preds[i] == 0]
    order: list[Insn] = []
    cycle = 0
    record = metrics.is_enabled()
    while ready:
        if record:
            metrics.observe("sched.ready_list_len", len(ready))
        startable = [i for i in ready if earliest[i] <= cycle]
        if not startable:
            cycle = min(earliest[i] for i in ready)
            startable = [i for i in ready if earliest[i] <= cycle]
        # highest critical path first; original position breaks ties
        best = max(startable, key=lambda i: (heights[i], -i))
        ready.remove(best)
        order.append(ddg.insns[best])
        finish = cycle + latency(ddg.insns[best])
        for j in ddg.succs[best]:
            if finish > earliest[j]:
                earliest[j] = finish
            remaining_preds[j] -= 1
            if remaining_preds[j] == 0:
                ready.append(j)
        cycle += 1
    assert len(order) == n, "DDG contains a cycle"
    return order


def schedule_function(
    fn: RTLFunction,
    mode: DDGMode,
    query: Optional[HLIQuery] = None,
    latency: Callable[[Insn], int] = r4600_latency,
) -> ScheduleResult:
    """Schedule every basic block of ``fn``; returns a new instruction
    order in ``result.fn`` (the function object is mutated in place)."""
    result = ScheduleResult(fn=fn)
    builder = DDGBuilder(mode=mode, query=query, stats=result.stats)
    with trace.span("backend.schedule", fn=fn.name, mode=mode.value):
        cfg = build_cfg(fn)
        new_chain: list[Insn] = []
        for block in cfg.blocks:
            head: list[Insn] = []
            tail: list[Insn] = []
            body = list(block.insns)
            if body and body[0].op is Opcode.LABEL:
                head = [body[0]]
                body = body[1:]
            if body and body[-1].op in BRANCH_OPS:
                tail = [body[-1]]
                body = body[:-1]
            scheduled = schedule_block(body, builder, latency)
            if scheduled != body:
                result.moved_insns += sum(
                    1 for a, b in zip(scheduled, body) if a is not b
                )
            result.blocks_scheduled += 1
            new_chain.extend(head)
            new_chain.extend(scheduled)
            new_chain.extend(tail)
        fn.insns = new_chain
    if metrics.is_enabled():
        _record_schedule_metrics(result, mode)
    return result


def _record_schedule_metrics(result: ScheduleResult, mode: DDGMode) -> None:
    """Emit the Table 2 dependence counters into the metrics registry.

    ``ddg.edges.deleted.<mode>`` is how many memory-dependence edges the
    active mode removed relative to GCC's local-only answer — the
    quantity the paper's Table 2 reports as the edge reduction.
    """
    s = result.stats
    metrics.add("ddg.tests", s.total_tests)
    metrics.add("ddg.yes.gcc", s.gcc_yes)
    metrics.add("ddg.yes.hli", s.hli_yes)
    metrics.add("ddg.yes.combined", s.combined_yes)
    kept = {
        DDGMode.GCC: s.gcc_yes,
        DDGMode.HLI: s.hli_yes,
        DDGMode.COMBINED: s.combined_yes,
    }[mode]
    metrics.add(f"ddg.edges.kept.{mode.value}", kept)
    metrics.add(f"ddg.edges.deleted.{mode.value}", max(0, s.gcc_yes - kept))
    metrics.add("sched.blocks", result.blocks_scheduled)
    metrics.add("sched.moved_insns", result.moved_insns)
