"""AST → RTL lowering (the back-end's code generator).

Follows the GCC behaviours that ITEMGEN assumes (paper Section 3.1.1):

* local scalar variables and temporaries live in pseudo-registers — no
  memory traffic;
* globals, statics, arrays, structs and address-taken locals live in
  memory;
* outgoing arguments beyond :data:`~repro.analysis.items.NUM_ARG_REGS`
  are stored to the stack argument area; stack parameters are loaded at
  function entry;
* memory references are emitted in the canonical order defined by
  :mod:`repro.analysis.items` — the lowering *asserts* this contract on
  every statement by popping the expected access queue as it emits, so
  any divergence fails loudly instead of silently desynchronizing the
  HLI mapping.

Memory-resident storage is laid out statically (one frame per function,
allocated in the global address space).  This forgoes re-entrant frames —
benchmark workloads avoid recursion through memory-resident locals — and
is documented as a substitution in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.items import (
    Access,
    AccessKind,
    AccessRole,
    NUM_ARG_REGS,
    arg_slot_symbol,
    walk_call,
    walk_rvalue,
    walk_stmt_accesses,
)
from ..frontend import ast_nodes as ast
from ..frontend.errors import LoweringError
from ..frontend.symbols import StorageClass, Symbol, SymbolTable
from ..frontend.typesys import ArrayType, PointerType, StructType, Type
from .rtl import Insn, MemRef, Opcode, Reg, RTLFunction, RTLProgram, new_reg

_BINOP_CODE = {
    ast.BinOp.ADD: Opcode.ADD,
    ast.BinOp.SUB: Opcode.SUB,
    ast.BinOp.MUL: Opcode.MUL,
    ast.BinOp.DIV: Opcode.DIV,
    ast.BinOp.MOD: Opcode.MOD,
    ast.BinOp.BITAND: Opcode.AND,
    ast.BinOp.BITOR: Opcode.OR,
    ast.BinOp.BITXOR: Opcode.XOR,
    ast.BinOp.SHL: Opcode.SHL,
    ast.BinOp.SHR: Opcode.SHR,
    ast.BinOp.LT: Opcode.SLT,
    ast.BinOp.LE: Opcode.SLE,
    ast.BinOp.EQ: Opcode.SEQ,
    ast.BinOp.NE: Opcode.SNE,
}

_ASSIGN_BINOP = {
    ast.AssignOp.ADD: Opcode.ADD,
    ast.AssignOp.SUB: Opcode.SUB,
    ast.AssignOp.MUL: Opcode.MUL,
    ast.AssignOp.DIV: Opcode.DIV,
}


def _unique_name(fn_name: str, sym: Symbol, ordinal: int) -> str:
    """Globally unique storage name for a local memory-resident symbol.

    The suffix is the per-function *allocation ordinal*, not the
    translation-unit-wide symbol uid: lowering an unchanged function must
    produce identical storage names no matter what the rest of the file
    looks like, or per-function cached RTL could never be spliced into a
    recompiled unit (and would not match a from-scratch compile).
    """
    return f"{fn_name}.{sym.name}.{ordinal}"


@dataclass
class _LoopLabels:
    break_to: str
    continue_to: str


class ProgramLowering:
    """Lower a whole checked program to RTL, laying out global storage."""

    BASE_ADDRESS = 0x1000
    HEAP_BASE = 0x4000000

    def __init__(
        self,
        program: ast.Program,
        table: SymbolTable,
        cached: Optional[dict[str, "RTLFunction"]] = None,
    ) -> None:
        self.program = program
        self.table = table
        self.rtl = RTLProgram()
        self._next_addr = self.BASE_ADDRESS
        #: pre-lowered functions spliced in from the per-function cache
        self.cached = cached or {}

    def run(self) -> RTLProgram:
        # Lay out globals (incl. arg slots) first so every function sees them.
        for decl in self.program.globals:
            sym = decl.symbol
            if isinstance(sym, Symbol):
                self._alloc(sym.name, max(sym.ty.size(), 1))
        for k in range(NUM_ARG_REGS, 16):
            self._alloc(arg_slot_symbol(k).name, 4)
        for fn in self.program.functions:
            cached_fn = self.cached.get(fn.name)
            if cached_fn is not None:
                self._splice(cached_fn)
                continue
            lowering = FunctionLowering(fn, self)
            self.rtl.functions[fn.name] = lowering.run()
        self._init_globals()
        return self.rtl

    def _splice(self, fn: "RTLFunction") -> None:
        """Adopt a cached function, replaying its frame layout in place.

        The cached body is position-independent (all memory access is
        symbolic), but its locals still need addresses.  Replaying the
        recorded ``(name, size)`` allocations *at this function's slot in
        program order* reproduces exactly the layout a from-scratch
        compile of the whole file would have produced.
        """
        for name, (_addr, raw_size) in fn.frame.items():
            addr = self._alloc(name, raw_size)
            fn.frame[name] = (addr, raw_size)
        self.rtl.functions[fn.name] = fn

    def _alloc(self, name: str, size: int) -> int:
        if name in self.rtl.globals_layout:
            return self.rtl.globals_layout[name][0]
        addr = self._next_addr
        # 8-byte align every object: doubles need it and it keeps widths simple.
        size = (size + 7) // 8 * 8
        self.rtl.globals_layout[name] = (addr, size)
        self._next_addr += size
        return addr

    def alloc_local(self, name: str, size: int) -> int:
        return self._alloc(name, size)

    def _init_globals(self) -> None:
        """Record constant initializers of global scalars."""
        for decl in self.program.globals:
            sym = decl.symbol
            if not isinstance(sym, Symbol) or decl.init is None:
                continue
            value: object
            if isinstance(decl.init, ast.IntLit):
                value = decl.init.value
            elif isinstance(decl.init, ast.FloatLit):
                value = decl.init.value
            else:
                continue
            addr, _ = self.rtl.globals_layout[sym.name]
            self.rtl.init_data[addr] = value


class FunctionLowering:
    """Lower one function; enforces the item-order contract as it emits."""

    def __init__(self, fn: ast.FuncDef, parent: ProgramLowering) -> None:
        self.fn = fn
        self.parent = parent
        self.out = RTLFunction(name=fn.name)
        #: symbol uid -> value register (register-promoted scalars)
        self.reg_of: dict[int, Reg] = {}
        #: symbol uid -> storage name (memory-resident variables)
        self.mem_name: dict[int, str] = {}
        self._labels = 0
        self._loop_stack: list[_LoopLabels] = []
        #: the access queue being checked against (the ITEMGEN contract)
        self._expected: list[Access] = []

    # -- helpers -----------------------------------------------------------

    def _label(self, tag: str) -> str:
        self._labels += 1
        return f".{self.fn.name}.{tag}{self._labels}"

    def emit(self, insn: Insn) -> Insn:
        self.out.insns.append(insn)
        return insn

    def _expect(self, accesses) -> None:
        self._expected.extend(accesses)

    def _check_emit_mem(
        self, node: ast.Expr, kind: AccessKind, insn: Insn
    ) -> Insn:
        """Emit a memory-touching insn, consuming the expected-access queue."""
        if not self._expected:
            raise LoweringError(
                f"item-order contract: unexpected {kind.value} at line {insn.line}"
            )
        exp = self._expected.pop(0)
        if exp.node is not node or exp.kind is not kind:
            raise LoweringError(
                f"item-order contract: expected {exp.kind.value} of "
                f"{type(exp.node).__name__} (line {exp.line}), emitting "
                f"{kind.value} of {type(node).__name__} (line {insn.line})"
            )
        return self.emit(insn)

    def _drain_check(self, context: str) -> None:
        if self._expected:
            exp = self._expected[0]
            raise LoweringError(
                f"item-order contract: {len(self._expected)} unemitted accesses "
                f"after {context} (next: {exp.kind.value} line {exp.line})"
            )

    # -- storage ------------------------------------------------------------

    def _storage_name(self, sym: Symbol) -> str:
        """Memory storage name for a memory-resident symbol.

        First use allocates storage and records the ``(name, size)`` pair
        in ``out.frame`` — the replay script that lets the incremental
        driver splice this function into a later compile without
        re-lowering it (see :meth:`ProgramLowering._splice`).
        """
        if sym.storage is StorageClass.GLOBAL:
            return sym.name
        name = self.mem_name.get(sym.uid)
        if name is None:
            name = _unique_name(self.fn.name, sym, len(self.mem_name) + 1)
            size = max(sym.ty.size(), 1)
            addr = self.parent.alloc_local(name, size)
            self.out.frame[name] = (addr, size)
            self.out.frame_size += size
            self.mem_name[sym.uid] = name
        return name

    def _value_reg(self, sym: Symbol) -> Reg:
        reg = self.reg_of.get(sym.uid)
        if reg is None:
            reg = new_reg(is_float=sym.ty.is_float, name=sym.name)
            self.reg_of[sym.uid] = reg
        return reg

    @staticmethod
    def _width_of(ty: Optional[Type]) -> int:
        if ty is None:
            return 4
        size = ty.size()
        return size if size in (1, 4, 8) else 4

    # -- entry point ---------------------------------------------------------

    def run(self) -> RTLFunction:
        self._lower_entry()
        assert self.fn.body is not None
        for stmt in self.fn.body.stmts:
            self._stmt(stmt)
        # Implicit return for void functions.
        self.emit(Insn(Opcode.RET, line=self.fn.line))
        return self.out

    def _lower_entry(self) -> None:
        """Parameter setup, mirroring the builder's entry-item generation."""
        for idx, p in enumerate(self.fn.params):
            sym = p.symbol
            if not isinstance(sym, Symbol):
                continue
            reg = self._value_reg(sym)
            if idx < NUM_ARG_REGS:
                self.out.param_regs.append(reg)
            if idx >= NUM_ARG_REGS:
                # Stack parameter: load from the incoming arg slot.
                slot = arg_slot_symbol(idx).name
                addr = new_reg(name=f"&{slot}")
                self.emit(Insn(Opcode.LA, dst=addr, symbol=slot, line=self.fn.line))
                name = ast.Name(line=self.fn.line, ident=p.name)
                name.symbol = sym
                name.ty = sym.ty
                acc = Access(
                    name, AccessKind.LOAD, self.fn.line, AccessRole.ENTRY_PARAM, idx
                )
                self._expect([acc])
                mem = MemRef(
                    addr=addr,
                    width=4,
                    is_store=False,
                    known_symbol=slot,
                    known_offset=0,
                    may_be_aliased=False,
                )
                insn = Insn(
                    Opcode.LOAD,
                    dst=reg,
                    mem=mem,
                    line=self.fn.line,
                    is_float=sym.ty.is_float,
                )
                exp = self._expected.pop(0)
                assert exp is acc
                self.emit(insn)
            elif sym.in_memory and not sym.ty.is_array:
                # Address-taken register parameter: spill to its home slot.
                storage = self._storage_name(sym)
                addr = new_reg(name=f"&{sym.name}")
                self.emit(Insn(Opcode.LA, dst=addr, symbol=storage, line=self.fn.line))
                mem = MemRef(
                    addr=addr,
                    width=self._width_of(sym.ty),
                    is_store=True,
                    known_symbol=storage,
                    known_offset=0,
                )
                self.emit(
                    Insn(
                        Opcode.STORE,
                        srcs=(reg,),
                        mem=mem,
                        line=self.fn.line,
                        is_float=sym.ty.is_float,
                    )
                )

    # -- statements --------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self._stmt(s)
            return
        if isinstance(stmt, ast.DeclGroup):
            for d in stmt.decls:
                self._stmt(d)
            return
        if isinstance(stmt, ast.VarDecl):
            self._expect(walk_stmt_accesses(stmt))
            self._lower_vardecl(stmt)
            self._drain_check(f"decl of {stmt.name}")
            return
        if isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._expect(walk_rvalue(stmt.expr))
                self._rvalue(stmt.expr)
                self._drain_check(f"expression at line {stmt.line}")
            return
        if isinstance(stmt, ast.If):
            self._lower_if(stmt)
            return
        if isinstance(stmt, ast.While):
            self._lower_while(stmt)
            return
        if isinstance(stmt, ast.DoWhile):
            self._lower_dowhile(stmt)
            return
        if isinstance(stmt, ast.For):
            self._lower_for(stmt)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expect(walk_rvalue(stmt.value))
                val = self._rvalue(stmt.value)
                self._drain_check("return value")
                ret_float = self.fn.ret is not None and self.fn.ret.is_float
                val = self._coerce(val, ret_float, stmt.line)
                if self.out.ret_reg is None:
                    self.out.ret_reg = new_reg(is_float=ret_float, name="retval")
                    self.out.ret_is_float = ret_float
                self.emit(
                    Insn(
                        Opcode.MOVE,
                        dst=self.out.ret_reg,
                        srcs=(val,),
                        line=stmt.line,
                        is_float=ret_float,
                    )
                )
            self.emit(Insn(Opcode.RET, line=stmt.line))
            return
        if isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise LoweringError("break outside loop")
            self.emit(Insn(Opcode.J, label=self._loop_stack[-1].break_to, line=stmt.line))
            return
        if isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise LoweringError("continue outside loop")
            self.emit(
                Insn(Opcode.J, label=self._loop_stack[-1].continue_to, line=stmt.line)
            )
            return
        raise LoweringError(f"cannot lower {type(stmt).__name__}")  # pragma: no cover

    def _lower_vardecl(self, stmt: ast.VarDecl) -> None:
        sym = stmt.symbol
        if not isinstance(sym, Symbol):
            return
        if stmt.init is None:
            if sym.in_memory and not sym.ty.is_array:
                self._storage_name(sym)  # reserve storage
            return
        val = self._rvalue(stmt.init)
        if sym.in_memory and not sym.ty.is_array:
            storage = self._storage_name(sym)
            addr = new_reg(name=f"&{sym.name}")
            self.emit(Insn(Opcode.LA, dst=addr, symbol=storage, line=stmt.line))
            mem = MemRef(
                addr=addr,
                width=self._width_of(sym.ty),
                is_store=True,
                known_symbol=storage,
                known_offset=0,
            )
            # The walker emitted a synthetic Name node for this store; match
            # by kind only (node identity differs between walker runs).
            if not self._expected:
                raise LoweringError("item-order contract: missing decl-store access")
            exp = self._expected.pop(0)
            if exp.kind is not AccessKind.STORE:
                raise LoweringError("item-order contract: decl store mismatch")
            val = self._coerce(val, sym.ty.is_float, stmt.line)
            self.emit(
                Insn(
                    Opcode.STORE,
                    srcs=(val,),
                    mem=mem,
                    line=stmt.line,
                    is_float=sym.ty.is_float,
                )
            )
        else:
            reg = self._value_reg(sym)
            val = self._coerce(val, sym.ty.is_float, stmt.line)
            self.emit(
                Insn(
                    Opcode.MOVE,
                    dst=reg,
                    srcs=(val,),
                    line=stmt.line,
                    is_float=sym.ty.is_float,
                )
            )

    def _lower_if(self, stmt: ast.If) -> None:
        assert stmt.cond is not None
        self._expect(walk_rvalue(stmt.cond))
        cond = self._rvalue(stmt.cond)
        self._drain_check("if condition")
        else_label = self._label("else")
        end_label = self._label("endif")
        self.emit(Insn(Opcode.BEQZ, srcs=(cond,), label=else_label, line=stmt.line))
        if stmt.then is not None:
            self._stmt(stmt.then)
        if stmt.otherwise is not None:
            self.emit(Insn(Opcode.J, label=end_label, line=stmt.line))
            self.emit(Insn(Opcode.LABEL, label=else_label, line=stmt.line))
            self._stmt(stmt.otherwise)
            self.emit(Insn(Opcode.LABEL, label=end_label, line=stmt.line))
        else:
            self.emit(Insn(Opcode.LABEL, label=else_label, line=stmt.line))

    def _lower_while(self, stmt: ast.While) -> None:
        top = self._label("wtop")
        exit_label = self._label("wend")
        self.emit(Insn(Opcode.LABEL, label=top, line=stmt.line))
        assert stmt.cond is not None
        self._expect(walk_rvalue(stmt.cond))
        cond = self._rvalue(stmt.cond)
        self._drain_check("while condition")
        self.emit(Insn(Opcode.BEQZ, srcs=(cond,), label=exit_label, line=stmt.line))
        self._loop_stack.append(_LoopLabels(break_to=exit_label, continue_to=top))
        if stmt.body is not None:
            self._stmt(stmt.body)
        self._loop_stack.pop()
        self.emit(Insn(Opcode.J, label=top, line=stmt.line))
        self.emit(Insn(Opcode.LABEL, label=exit_label, line=stmt.line))
        self.out.loops.append((top, top, exit_label))

    def _lower_dowhile(self, stmt: ast.DoWhile) -> None:
        top = self._label("dtop")
        cont = self._label("dcont")
        exit_label = self._label("dend")
        self.emit(Insn(Opcode.LABEL, label=top, line=stmt.line))
        self._loop_stack.append(_LoopLabels(break_to=exit_label, continue_to=cont))
        if stmt.body is not None:
            self._stmt(stmt.body)
        self._loop_stack.pop()
        self.emit(Insn(Opcode.LABEL, label=cont, line=stmt.line))
        assert stmt.cond is not None
        self._expect(walk_rvalue(stmt.cond))
        cond = self._rvalue(stmt.cond)
        self._drain_check("do-while condition")
        self.emit(Insn(Opcode.BNEZ, srcs=(cond,), label=top, line=stmt.line))
        self.emit(Insn(Opcode.LABEL, label=exit_label, line=stmt.line))
        self.out.loops.append((top, cont, exit_label))

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._expect(walk_stmt_accesses(stmt.init))
            self._stmt_no_expect(stmt.init)
            self._drain_check("for init")
        top = self._label("ftop")
        cont = self._label("fcont")
        exit_label = self._label("fend")
        self.emit(Insn(Opcode.LABEL, label=top, line=stmt.line))
        if stmt.cond is not None:
            self._expect(walk_rvalue(stmt.cond))
            cond = self._rvalue(stmt.cond)
            self._drain_check("for condition")
            self.emit(Insn(Opcode.BEQZ, srcs=(cond,), label=exit_label, line=stmt.line))
        self._loop_stack.append(_LoopLabels(break_to=exit_label, continue_to=cont))
        if stmt.body is not None:
            self._stmt(stmt.body)
        self._loop_stack.pop()
        self.emit(Insn(Opcode.LABEL, label=cont, line=stmt.line))
        if stmt.step is not None:
            self._expect(walk_rvalue(stmt.step))
            self._rvalue(stmt.step)
            self._drain_check("for step")
        self.emit(Insn(Opcode.J, label=top, line=stmt.line))
        self.emit(Insn(Opcode.LABEL, label=exit_label, line=stmt.line))
        self.out.loops.append((top, cont, exit_label))

    def _stmt_no_expect(self, stmt: ast.Stmt) -> None:
        """Lower a statement whose accesses are already queued (for-init)."""
        if isinstance(stmt, ast.VarDecl):
            self._lower_vardecl(stmt)
            return
        if isinstance(stmt, ast.DeclGroup):
            for d in stmt.decls:
                self._lower_vardecl(d)
            return
        if isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._rvalue(stmt.expr)
            return
        raise LoweringError("unsupported for-init statement")

    # -- expressions ---------------------------------------------------------------

    def _coerce(self, reg: Reg, want_float: bool, line: int) -> Reg:
        if reg.is_float == want_float:
            return reg
        dst = new_reg(is_float=want_float)
        op = Opcode.CVT_IF if want_float else Opcode.CVT_FI
        self.emit(Insn(op, dst=dst, srcs=(reg,), line=line, is_float=want_float))
        return dst

    def _rvalue(self, e: ast.Expr) -> Reg:
        if isinstance(e, ast.IntLit):
            dst = new_reg()
            self.emit(Insn(Opcode.LI, dst=dst, imm=e.value, line=e.line))
            return dst
        if isinstance(e, ast.FloatLit):
            dst = new_reg(is_float=True)
            self.emit(Insn(Opcode.LI, dst=dst, imm=e.value, line=e.line, is_float=True))
            return dst
        if isinstance(e, ast.StringLit):
            dst = new_reg()
            self.emit(Insn(Opcode.LI, dst=dst, imm=e.value, line=e.line))
            return dst
        if isinstance(e, ast.Name):
            return self._rvalue_name(e)
        if isinstance(e, ast.Unary):
            return self._rvalue_unary(e)
        if isinstance(e, ast.Binary):
            return self._rvalue_binary(e)
        if isinstance(e, ast.Conditional):
            return self._rvalue_conditional(e)
        if isinstance(e, (ast.Index, ast.FieldAccess)):
            return self._rvalue_memref(e)
        if isinstance(e, ast.Call):
            return self._lower_call(e)
        if isinstance(e, ast.Assign):
            return self._lower_assign(e)
        if isinstance(e, ast.IncDec):
            return self._lower_incdec(e)
        raise LoweringError(f"cannot lower expression {type(e).__name__}")

    def _rvalue_name(self, e: ast.Name) -> Reg:
        sym = e.symbol
        assert isinstance(sym, Symbol)
        if isinstance(sym.ty, ArrayType) or isinstance(sym.ty, StructType):
            # Array/struct name decays to its address.
            storage = self._storage_name(sym)
            dst = new_reg(name=f"&{sym.name}")
            self.emit(Insn(Opcode.LA, dst=dst, symbol=storage, line=e.line))
            return dst
        if sym.in_memory:
            storage = self._storage_name(sym)
            addr = new_reg(name=f"&{sym.name}")
            self.emit(Insn(Opcode.LA, dst=addr, symbol=storage, line=e.line))
            dst = new_reg(is_float=sym.ty.is_float, name=sym.name)
            mem = MemRef(
                addr=addr,
                width=self._width_of(sym.ty),
                is_store=False,
                known_symbol=storage,
                known_offset=0,
                may_be_aliased=sym.address_taken or sym.storage is StorageClass.GLOBAL,
            )
            insn = Insn(
                Opcode.LOAD, dst=dst, mem=mem, line=e.line, is_float=sym.ty.is_float
            )
            return self._check_emit_mem(e, AccessKind.LOAD, insn).dst  # type: ignore[return-value]
        return self._value_reg(sym)

    def _rvalue_unary(self, e: ast.Unary) -> Reg:
        assert e.operand is not None
        if e.op is ast.UnaryOp.DEREF:
            addr = self._rvalue(e.operand)
            width = self._width_of(e.ty)
            is_float = e.ty is not None and e.ty.is_float
            dst = new_reg(is_float=is_float)
            mem = MemRef(addr=addr, width=width, is_store=False)
            insn = Insn(Opcode.LOAD, dst=dst, mem=mem, line=e.line, is_float=is_float)
            self._check_emit_mem(e, AccessKind.LOAD, insn)
            return dst
        if e.op is ast.UnaryOp.ADDR:
            return self._address(e.operand)
        val = self._rvalue(e.operand)
        if e.op is ast.UnaryOp.NEG:
            dst = new_reg(is_float=val.is_float)
            self.emit(Insn(Opcode.NEG, dst=dst, srcs=(val,), line=e.line, is_float=val.is_float))
            return dst
        if e.op is ast.UnaryOp.NOT:
            dst = new_reg()
            self.emit(Insn(Opcode.SEQ, dst=dst, srcs=(val, 0), line=e.line))
            return dst
        dst = new_reg()
        self.emit(Insn(Opcode.NOT, dst=dst, srcs=(val,), line=e.line))
        return dst

    def _rvalue_binary(self, e: ast.Binary) -> Reg:
        assert e.lhs is not None and e.rhs is not None
        if e.op in (ast.BinOp.AND, ast.BinOp.OR):
            return self._short_circuit(e)
        lhs = self._rvalue(e.lhs)
        rhs = self._rvalue(e.rhs)
        # Pointer arithmetic: scale the integer side by the pointee size.
        lty, rty = e.lhs.ty, e.rhs.ty
        if lty is not None and (lty.is_pointer or lty.is_array) and rty is not None and rty.is_integer:
            rhs = self._scale(rhs, self._pointee_size(lty), e.line)
        elif rty is not None and (rty.is_pointer or rty.is_array) and lty is not None and lty.is_integer:
            lhs = self._scale(lhs, self._pointee_size(rty), e.line)
        is_float = lhs.is_float or rhs.is_float
        if e.op in (ast.BinOp.GT, ast.BinOp.GE):
            # x > y  =>  y < x
            op = Opcode.SLT if e.op is ast.BinOp.GT else Opcode.SLE
            lhs, rhs = rhs, lhs
        else:
            op = _BINOP_CODE[e.op]
        if is_float and op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.MOD):
            raise LoweringError(f"float operand to {op.value}")
        if is_float:
            lhs = self._coerce(lhs, True, e.line)
            rhs = self._coerce(rhs, True, e.line)
        result_float = is_float and op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV)
        dst = new_reg(is_float=result_float)
        self.emit(
            Insn(op, dst=dst, srcs=(lhs, rhs), line=e.line, is_float=is_float)
        )
        return dst

    def _pointee_size(self, ty: Type) -> int:
        if isinstance(ty, PointerType):
            return max(ty.pointee.size(), 1)
        if isinstance(ty, ArrayType):
            return max(ty.element.size(), 1)
        return 1

    def _scale(self, reg: Reg, factor: int, line: int) -> Reg:
        if factor == 1:
            return reg
        f = new_reg()
        self.emit(Insn(Opcode.LI, dst=f, imm=factor, line=line))
        dst = new_reg()
        self.emit(Insn(Opcode.MUL, dst=dst, srcs=(reg, f), line=line))
        return dst

    def _short_circuit(self, e: ast.Binary) -> Reg:
        assert e.lhs is not None and e.rhs is not None
        dst = new_reg(name="sc")
        end = self._label("sc")
        lhs = self._rvalue(e.lhs)
        norm = new_reg()
        self.emit(Insn(Opcode.SNE, dst=norm, srcs=(lhs, 0), line=e.line))
        self.emit(Insn(Opcode.MOVE, dst=dst, srcs=(norm,), line=e.line))
        if e.op is ast.BinOp.AND:
            self.emit(Insn(Opcode.BEQZ, srcs=(norm,), label=end, line=e.line))
        else:
            self.emit(Insn(Opcode.BNEZ, srcs=(norm,), label=end, line=e.line))
        rhs = self._rvalue(e.rhs)
        norm2 = new_reg()
        self.emit(Insn(Opcode.SNE, dst=norm2, srcs=(rhs, 0), line=e.line))
        self.emit(Insn(Opcode.MOVE, dst=dst, srcs=(norm2,), line=e.line))
        self.emit(Insn(Opcode.LABEL, label=end, line=e.line))
        return dst

    def _rvalue_conditional(self, e: ast.Conditional) -> Reg:
        assert e.cond and e.then and e.otherwise
        cond = self._rvalue(e.cond)
        is_float = e.ty is not None and e.ty.is_float
        dst = new_reg(is_float=is_float, name="sel")
        else_l = self._label("celse")
        end_l = self._label("cend")
        self.emit(Insn(Opcode.BEQZ, srcs=(cond,), label=else_l, line=e.line))
        t = self._coerce(self._rvalue(e.then), is_float, e.line)
        self.emit(Insn(Opcode.MOVE, dst=dst, srcs=(t,), line=e.line, is_float=is_float))
        self.emit(Insn(Opcode.J, label=end_l, line=e.line))
        self.emit(Insn(Opcode.LABEL, label=else_l, line=e.line))
        f = self._coerce(self._rvalue(e.otherwise), is_float, e.line)
        self.emit(Insn(Opcode.MOVE, dst=dst, srcs=(f,), line=e.line, is_float=is_float))
        self.emit(Insn(Opcode.LABEL, label=end_l, line=e.line))
        return dst

    # -- memory access lowering -------------------------------------------------------

    def _address(self, e: ast.Expr) -> Reg:
        """Compute the address of lvalue ``e`` into a register."""
        if isinstance(e, ast.Name):
            sym = e.symbol
            assert isinstance(sym, Symbol)
            storage = self._storage_name(sym)
            dst = new_reg(name=f"&{sym.name}")
            self.emit(Insn(Opcode.LA, dst=dst, symbol=storage, line=e.line))
            return dst
        if isinstance(e, ast.Index):
            assert e.base is not None and e.index is not None
            bty = e.base.ty
            if bty is not None and bty.is_array:
                base = self._address(e.base)
            else:
                base = self._rvalue(e.base)
            idx = self._rvalue(e.index)
            stride = max(e.ty.size(), 1) if e.ty is not None else 4
            scaled = self._scale(idx, stride, e.line)
            dst = new_reg(name="addr")
            self.emit(Insn(Opcode.ADD, dst=dst, srcs=(base, scaled), line=e.line))
            return dst
        if isinstance(e, ast.FieldAccess):
            assert e.base is not None
            if e.arrow:
                base = self._rvalue(e.base)
                bty = e.base.ty
                st = bty.pointee if isinstance(bty, PointerType) else None
            else:
                base = self._address(e.base)
                st = e.base.ty
            offset = 0
            if isinstance(st, StructType):
                offset = st.field_offset(e.fieldname)
            if offset == 0:
                return base
            off = new_reg()
            self.emit(Insn(Opcode.LI, dst=off, imm=offset, line=e.line))
            dst = new_reg(name="addr")
            self.emit(Insn(Opcode.ADD, dst=dst, srcs=(base, off), line=e.line))
            return dst
        if isinstance(e, ast.Unary) and e.op is ast.UnaryOp.DEREF:
            assert e.operand is not None
            return self._rvalue(e.operand)
        raise LoweringError(f"cannot take address of {type(e).__name__}")

    def _memref_static_info(self, e: ast.Expr) -> tuple[Optional[str], Optional[str]]:
        """(known_symbol, base_symbol) visible to the back-end for lvalue ``e``.

        Direct scalar names keep full knowledge; array accesses keep at most
        the base symbol; pointer dereferences keep nothing — reproducing the
        information GCC 2.7 retains in its RTL address expressions.
        """
        if isinstance(e, ast.Name) and isinstance(e.symbol, Symbol):
            return self._storage_name(e.symbol), None
        if isinstance(e, ast.Index):
            base: ast.Expr | None = e
            while isinstance(base, ast.Index):
                base = base.base
            if (
                isinstance(base, ast.Name)
                and isinstance(base.symbol, Symbol)
                and base.symbol.ty.is_array
            ):
                return None, self._storage_name(base.symbol)
            return None, None
        return None, None

    def _rvalue_memref(self, e: ast.Expr) -> Reg:
        """Load the value of an Index/FieldAccess expression."""
        if e.ty is not None and e.ty.is_array:
            # Partial indexing of a multi-dim array yields an address.
            return self._address(e)
        addr = self._address(e)
        known, base_sym = self._memref_static_info(e)
        is_float = e.ty is not None and e.ty.is_float
        dst = new_reg(is_float=is_float)
        mem = MemRef(
            addr=addr,
            width=self._width_of(e.ty),
            is_store=False,
            known_symbol=known,
            known_offset=0 if known is not None else None,
            base_symbol=base_sym,
        )
        insn = Insn(Opcode.LOAD, dst=dst, mem=mem, line=e.line, is_float=is_float)
        self._check_emit_mem(e, AccessKind.LOAD, insn)
        return dst

    def _store_to(self, target: ast.Expr, addr: Reg, value: Reg) -> None:
        known, base_sym = self._memref_static_info(target)
        is_float = target.ty is not None and target.ty.is_float
        value = self._coerce(value, is_float, target.line)
        aliased = True
        if isinstance(target, ast.Name) and isinstance(target.symbol, Symbol):
            sym = target.symbol
            aliased = sym.address_taken or sym.storage is StorageClass.GLOBAL
        mem = MemRef(
            addr=addr,
            width=self._width_of(target.ty),
            is_store=True,
            known_symbol=known,
            known_offset=0 if known is not None else None,
            base_symbol=base_sym,
            may_be_aliased=aliased,
        )
        insn = Insn(
            Opcode.STORE, srcs=(value,), mem=mem, line=target.line, is_float=is_float
        )
        self._check_emit_mem(target, AccessKind.STORE, insn)

    def _load_lvalue(self, target: ast.Expr, addr: Reg) -> Reg:
        known, base_sym = self._memref_static_info(target)
        is_float = target.ty is not None and target.ty.is_float
        dst = new_reg(is_float=is_float)
        mem = MemRef(
            addr=addr,
            width=self._width_of(target.ty),
            is_store=False,
            known_symbol=known,
            known_offset=0 if known is not None else None,
            base_symbol=base_sym,
        )
        insn = Insn(Opcode.LOAD, dst=dst, mem=mem, line=target.line, is_float=is_float)
        self._check_emit_mem(target, AccessKind.LOAD, insn)
        return dst

    def _target_in_memory(self, target: ast.Expr) -> bool:
        if isinstance(target, ast.Name):
            sym = target.symbol
            return isinstance(sym, Symbol) and sym.in_memory and not sym.ty.is_array
        return True  # Index / FieldAccess / deref always hit memory

    def _lower_assign(self, e: ast.Assign) -> Reg:
        assert e.target is not None and e.value is not None
        value = self._rvalue(e.value)
        target = e.target
        if not self._target_in_memory(target):
            # Register-promoted scalar.
            assert isinstance(target, ast.Name) and isinstance(target.symbol, Symbol)
            reg = self._value_reg(target.symbol)
            if e.op is not ast.AssignOp.ASSIGN:
                op = _ASSIGN_BINOP[e.op]
                is_float = reg.is_float
                value = self._coerce(value, is_float, e.line)
                tmp = new_reg(is_float=is_float)
                self.emit(
                    Insn(op, dst=tmp, srcs=(reg, value), line=e.line, is_float=is_float)
                )
                value = tmp
            else:
                value = self._coerce(value, reg.is_float, e.line)
            self.emit(
                Insn(
                    Opcode.MOVE,
                    dst=reg,
                    srcs=(value,),
                    line=e.line,
                    is_float=reg.is_float,
                )
            )
            return reg
        addr = self._address(target)
        if e.op is not ast.AssignOp.ASSIGN:
            old = self._load_lvalue(target, addr)
            op = _ASSIGN_BINOP[e.op]
            is_float = old.is_float
            value = self._coerce(value, is_float, e.line)
            tmp = new_reg(is_float=is_float)
            self.emit(Insn(op, dst=tmp, srcs=(old, value), line=e.line, is_float=is_float))
            value = tmp
        self._store_to(target, addr, value)
        return value

    def _lower_incdec(self, e: ast.IncDec) -> Reg:
        assert e.target is not None
        target = e.target
        step = 1
        if isinstance(target.ty, PointerType):
            step = max(target.ty.pointee.size(), 1)
        if not self._target_in_memory(target):
            assert isinstance(target, ast.Name) and isinstance(target.symbol, Symbol)
            reg = self._value_reg(target.symbol)
            old = new_reg(is_float=reg.is_float)
            self.emit(Insn(Opcode.MOVE, dst=old, srcs=(reg,), line=e.line, is_float=reg.is_float))
            one = new_reg()
            self.emit(Insn(Opcode.LI, dst=one, imm=step, line=e.line))
            op = Opcode.ADD if e.increment else Opcode.SUB
            self.emit(Insn(op, dst=reg, srcs=(reg, one), line=e.line, is_float=reg.is_float))
            return reg if e.prefix else old
        addr = self._address(target)
        old = self._load_lvalue(target, addr)
        one = new_reg()
        self.emit(Insn(Opcode.LI, dst=one, imm=step, line=e.line))
        op = Opcode.ADD if e.increment else Opcode.SUB
        newval = new_reg(is_float=old.is_float)
        self.emit(Insn(op, dst=newval, srcs=(old, one), line=e.line, is_float=old.is_float))
        self._store_to(target, addr, newval)
        return newval if e.prefix else old

    # -- calls -------------------------------------------------------------------------

    def _lower_call(self, e: ast.Call) -> Reg:
        arg_regs: list[Reg] = []
        for idx, arg in enumerate(e.args):
            val = self._rvalue(arg)
            if idx >= NUM_ARG_REGS:
                slot = arg_slot_symbol(idx).name
                addr = new_reg(name=f"&{slot}")
                self.emit(Insn(Opcode.LA, dst=addr, symbol=slot, line=e.line))
                mem = MemRef(
                    addr=addr,
                    width=4,
                    is_store=True,
                    known_symbol=slot,
                    known_offset=0,
                    may_be_aliased=False,
                )
                insn = Insn(
                    Opcode.STORE, srcs=(val,), mem=mem, line=e.line, is_float=val.is_float
                )
                self._check_emit_mem(e, AccessKind.STORE, insn)
            else:
                arg_regs.append(val)
        fsym = self.table_lookup(e.callee)
        ret_float = fsym is not None and fsym.ty.ret.is_float
        dst = new_reg(is_float=ret_float, name="ret")
        insn = Insn(
            Opcode.CALL,
            dst=dst,
            srcs=tuple(arg_regs),
            callee=e.callee,
            line=e.line,
            is_float=ret_float,
        )
        self._check_emit_call(e, insn)
        return dst

    def table_lookup(self, name: str):
        return self.parent.table.lookup_function(name)

    def _check_emit_call(self, node: ast.Call, insn: Insn) -> Insn:
        if not self._expected:
            raise LoweringError("item-order contract: unexpected call")
        exp = self._expected.pop(0)
        if exp.node is not node or exp.kind is not AccessKind.CALL:
            raise LoweringError(
                f"item-order contract: expected {exp.kind.value}, emitting call "
                f"to {node.callee} at line {insn.line}"
            )
        return self.emit(insn)


def lower_program(
    program: ast.Program,
    table: SymbolTable,
    cached: Optional[dict[str, RTLFunction]] = None,
) -> RTLProgram:
    """Lower a checked program to RTL.

    ``cached`` maps function names to pre-lowered bodies (from the
    per-function artifact cache); those functions are spliced instead of
    re-lowered, with their frame layout replayed in program order so the
    resulting address map matches a from-scratch compile.
    """
    from ..obs import metrics, trace

    with trace.span("backend.lowering", file=program.filename):
        rtl = ProgramLowering(program, table, cached=cached).run()
    if metrics.is_enabled():
        metrics.add(
            "lowering.insns", sum(len(f.insns) for f in rtl.functions.values())
        )
        metrics.add("lowering.functions", len(rtl.functions))
    return rtl
