"""Generic pass-manager infrastructure.

The compilation pipeline used to be a hard-coded call sequence in
``driver/compile.py`` plus an ad-hoc "rebuild ``HLIQuery`` after table
mutations" loop in ``backend/passes.py``.  This module replaces both
with data: a :class:`Pass` declares what it *requires*, *provides*, and
*invalidates* (named artifacts such as ``"rtl"`` or ``"queries"``), and
the :class:`PassManager` enforces those declarations centrally — a pass
that mutates the HLI tables simply declares ``invalidates=("queries",)``
and the manager rebuilds the query indices lazily, right before the next
pass that needs them.

The module is deliberately compiler-agnostic: it never imports the
driver layer.  Passes act on an opaque context object, and artifact
names are plain strings; the concrete pipeline (parse → HLI build →
lower → map → opt passes → schedule → lint) lives in
:mod:`repro.driver.passes`.

Two properties fall out of declared effects that the old code could not
offer:

* **static validation** — a pipeline whose ordering is impossible
  (``map`` before ``lower``, an unknown pass name) is rejected with a
  :class:`PipelineError` before anything runs;
* **fingerprinting** — each pass carries a ``name@version`` fingerprint,
  and the fingerprint of the front-end prefix keys the
  :class:`~repro.driver.session.CompilationSession` artifact cache, so
  bumping a pass version transparently invalidates stale cache entries.

Back-end passes that act on one function at a time declare
``per_function=True``; the manager then drives them per compilation
unit through a *units provider* (``PassManager(units=...)``).  On a cold
compile the provider yields every function; on an incremental recompile
the session narrows it to the invalidated set, so unchanged functions'
passes are skipped entirely — the pipeline schedules at function, not
file, granularity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from ..obs import metrics, trace

__all__ = [
    "Pass",
    "PassManager",
    "PipelineError",
    "PipelineStats",
    "frontend_fingerprint",
    "pipeline_fingerprint",
    "split_frontend",
]


class PipelineError(Exception):
    """A structurally invalid pipeline (unknown pass, impossible order)."""


@dataclass(frozen=True)
class Pass:
    """One pipeline stage with declared effects.

    ``action`` receives the pipeline's context object (for the driver
    pipeline, a :class:`repro.driver.passes.PassContext`) and mutates it
    in place.  ``requires``/``provides``/``invalidates`` name artifacts;
    the manager guarantees every required artifact is valid before
    ``action`` runs.
    """

    name: str
    action: Callable[..., None]
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    invalidates: tuple[str, ...] = ()
    #: front-end passes form the cacheable prefix of a pipeline: their
    #: outputs depend only on (source, filename), never on back-end knobs
    frontend: bool = False
    #: bump when the pass's output format/semantics change; part of the
    #: cache-key fingerprint
    version: int = 1
    #: per-function passes run once per *active* compilation unit with
    #: ``action(ctx, unit)``; the manager's ``units`` provider decides
    #: which units are active (all of them on a cold compile, only the
    #: invalidated ones on an incremental recompile)
    per_function: bool = False

    @property
    def fingerprint(self) -> str:
        return f"{self.name}@{self.version}"


@dataclass
class PipelineStats:
    """What one :meth:`PassManager.run` actually did (for tests/obs)."""

    #: pass names in execution order
    passes_run: list[str] = field(default_factory=list)
    #: artifact name -> number of automatic rebuilds triggered
    rebuilds: dict[str, int] = field(default_factory=dict)
    #: names of front-end passes skipped because a cache supplied their
    #: artifacts (set by the CompilationSession)
    cached_prefix: tuple[str, ...] = ()
    #: per-function pass name -> the units it actually ran over; on an
    #: incremental recompile this is the invalidated set, not the file
    function_runs: dict[str, list[str]] = field(default_factory=dict)


class PassManager:
    """Run a pass sequence, enforcing declared requires/invalidates.

    ``rebuilders`` maps an artifact name to a function that can restore
    it from the context after an invalidation (e.g. ``"queries"`` →
    rebuild every ``HLIQuery`` from the current HLI tables).  An
    invalidated artifact with no rebuilder makes a later requirement a
    :class:`PipelineError` at validation time.
    """

    def __init__(
        self,
        passes: Sequence[Pass],
        rebuilders: Optional[Mapping[str, Callable[[object], None]]] = None,
        units: Optional[Callable[[object], Sequence[str]]] = None,
    ) -> None:
        self.passes = list(passes)
        self.rebuilders = dict(rebuilders or {})
        self.units = units
        seen: set[str] = set()
        for p in self.passes:
            if p.name in seen:
                raise PipelineError(f"duplicate pass '{p.name}' in pipeline")
            seen.add(p.name)

    # -- static validation -----------------------------------------------------

    def validate(self, initial: Sequence[str] = ()) -> None:
        """Reject impossible orderings before anything runs.

        ``initial`` names artifacts already valid on entry (used when a
        cached front end supplies them).
        """
        available = set(initial)
        ever = set(initial)
        for p in self.passes:
            for need in p.requires:
                if need in available:
                    continue
                if need in self.rebuilders and need in ever:
                    continue  # restorable at run time
                origin = "invalidated by an earlier pass" if need in ever else (
                    "provided by no earlier pass"
                )
                raise PipelineError(
                    f"pass '{p.name}' requires artifact '{need}', "
                    f"which is {origin}"
                )
            available |= set(p.provides)
            ever |= set(p.provides)
            available -= set(p.invalidates)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        ctx: object,
        initial: Sequence[str] = (),
        stats: Optional[PipelineStats] = None,
    ) -> PipelineStats:
        """Execute every pass in order; returns the run's statistics."""
        self.validate(initial)
        stats = stats if stats is not None else PipelineStats()
        available = set(initial)
        for p in self.passes:
            for need in p.requires:
                if need not in available:
                    rebuild = self.rebuilders[need]
                    with trace.span("pm.rebuild", artifact=need, before=p.name):
                        rebuild(ctx)
                    stats.rebuilds[need] = stats.rebuilds.get(need, 0) + 1
                    metrics.inc("pm.rebuild", need)
                    available.add(need)
            if p.per_function:
                if self.units is None:
                    raise PipelineError(
                        f"per-function pass '{p.name}' needs a units "
                        "provider on the PassManager"
                    )
                names = list(self.units(ctx))
                with trace.span("pm.pass", **{"pass": p.name, "units": len(names)}):
                    for unit in names:
                        p.action(ctx, unit)
                stats.function_runs[p.name] = names
            else:
                with trace.span("pm.pass", **{"pass": p.name}):
                    p.action(ctx)
            metrics.inc("pm.pass", p.name)
            stats.passes_run.append(p.name)
            available |= set(p.provides)
            available -= set(p.invalidates)
        return stats


# -- pipeline introspection helpers -------------------------------------------


def split_frontend(passes: Sequence[Pass]) -> tuple[list[Pass], list[Pass]]:
    """Split a pipeline into its front-end prefix and back-end suffix.

    Front-end passes must form a contiguous prefix — a front-end pass
    after a back-end one would make the cached-prefix story unsound.
    """
    prefix: list[Pass] = []
    suffix: list[Pass] = []
    for p in passes:
        if p.frontend:
            if suffix:
                raise PipelineError(
                    f"front-end pass '{p.name}' appears after back-end "
                    f"pass '{suffix[0].name}'; front-end passes must form "
                    "a contiguous prefix"
                )
            prefix.append(p)
        else:
            suffix.append(p)
    return prefix, suffix


def pipeline_fingerprint(passes: Sequence[Pass]) -> str:
    """Stable hash of a whole pipeline's ``name@version`` sequence."""
    joined = "|".join(p.fingerprint for p in passes)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


def frontend_fingerprint(passes: Sequence[Pass]) -> str:
    """Fingerprint of just the cacheable front-end prefix."""
    prefix, _ = split_frontend(passes)
    return pipeline_fingerprint(prefix)
