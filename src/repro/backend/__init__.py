"""Back-end compiler (the reproduction's "GCC" side).

Lowers the typed AST to an RTL-like IR, imports and maps HLI, and runs
the optimization passes the paper instruments: CSE, loop-invariant code
motion, loop unrolling, and basic-block instruction scheduling.
"""

from .cfg import CFG, BasicBlock, build_cfg
from .ddg import DDG, DDGBuilder, DDGMode, DepStats
from .deps import LocalDependenceTest, may_conflict
from .lowering import FunctionLowering, ProgramLowering, lower_program
from .mapping import MapStats, map_function
from .rtl import Insn, MemRef, Opcode, Reg, RTLFunction, RTLProgram, new_reg
from .scheduler import ScheduleResult, schedule_block, schedule_function
from .cse import CSEStats, run_cse
from .licm import LICMStats, run_licm
from .unroll import UnrollStats, run_unroll
from .swp import LoopPipelineReport, MIIResult, analyze_loop_pipelining

__all__ = [
    "CFG",
    "BasicBlock",
    "build_cfg",
    "DDG",
    "DDGBuilder",
    "DDGMode",
    "DepStats",
    "LocalDependenceTest",
    "may_conflict",
    "FunctionLowering",
    "ProgramLowering",
    "lower_program",
    "MapStats",
    "map_function",
    "Insn",
    "MemRef",
    "Opcode",
    "Reg",
    "RTLFunction",
    "RTLProgram",
    "new_reg",
    "ScheduleResult",
    "schedule_block",
    "schedule_function",
    "CSEStats",
    "run_cse",
    "LICMStats",
    "run_licm",
    "UnrollStats",
    "run_unroll",
    "LoopPipelineReport",
    "MIIResult",
    "analyze_loop_pipelining",
]
