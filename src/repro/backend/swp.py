"""Software-pipelining feasibility analysis driven by LCDD information.

The paper singles out cyclic scheduling: "LCDD information is
indispensable for a cyclic scheduling algorithm such as software
pipelining" (Section 3.2.2).  This module computes the classic
*minimum initiation interval* bounds for innermost loops:

* **ResMII** — resource bound: ``ceil(#insns / issue_width)``;
* **RecMII** — recurrence bound: the maximum over dependence cycles of
  ``ceil(total latency / total distance)``, found by binary search on II
  with a positive-cycle test (Bellman-Ford over edge weights
  ``latency - II * distance``).

The dependence graph takes intra-iteration edges from the block DDG and
cross-iteration edges from either:

* the **conservative** assumption GCC 2.7 is stuck with — every memory
  pair involving a store recurs at distance 1; or
* the **HLI LCDD table** — exact distances, definite/maybe, or no arc
  at all.

The gap between the two RecMII values is the paper's point: without
distances, software pipelining has almost no headroom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hli.query import HLIQuery
from ..hli.tables import RegionType
from ..machine.latencies import r10000_latency
from .cfg import build_cfg
from .ddg import DDGBuilder, DDGMode
from .deps import may_conflict
from .rtl import Insn, Opcode, RTLFunction


@dataclass
class MIIResult:
    """Initiation-interval bounds for one loop."""

    res_mii: int
    rec_mii: int
    insns: int

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii)


@dataclass
class LoopPipelineReport:
    """Per-loop comparison of conservative vs LCDD-informed bounds."""

    header_label: str
    gcc: MIIResult
    hli: MIIResult

    @property
    def headroom(self) -> float:
        """How much tighter HLI's bound is (>=1; 1 = no improvement)."""
        return self.gcc.mii / self.hli.mii if self.hli.mii else 1.0


@dataclass(frozen=True)
class _Edge:
    src: int
    dst: int
    latency: int
    distance: int


def _positive_cycle(n: int, edges: list[_Edge], ii: int) -> bool:
    """Is there a cycle with positive weight under ``w = lat - ii*dist``?

    Bellman-Ford longest-path relaxation; any relaxation on the n-th pass
    implies a positive cycle (II infeasible).
    """
    dist = [0] * n
    for _ in range(n):
        changed = False
        for e in edges:
            w = e.latency - ii * e.distance
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                changed = True
        if not changed:
            return False
    return True


def _rec_mii(n: int, edges: list[_Edge], upper: int) -> int:
    """Smallest II with no positive cycle (binary search)."""
    if not edges:
        return 1
    lo, hi = 1, max(upper, 1)
    if _positive_cycle(n, edges, hi):
        return hi  # pathological; report the cap
    while lo < hi:
        mid = (lo + hi) // 2
        if _positive_cycle(n, edges, mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _loop_body(fn: RTLFunction, top: str) -> Optional[list[Insn]]:
    start = None
    for idx, insn in enumerate(fn.insns):
        if insn.op is Opcode.LABEL and insn.label == top:
            start = idx
        elif insn.op is Opcode.J and insn.label == top and start is not None:
            body = fn.insns[start + 1 : idx]
            return [i for i in body if i.op is not Opcode.LABEL]
    return None


def _cross_iteration_edges_gcc(
    body: list[Insn], latency: Callable[[Insn], int]
) -> list[_Edge]:
    """Conservative recurrences: every store recurs with every other
    memory access at distance 1 (GCC cannot prove otherwise)."""
    out: list[_Edge] = []
    for i, a in enumerate(body):
        if a.mem is None:
            continue
        for j, b in enumerate(body):
            if b.mem is None:
                continue
            if not (a.mem.is_store or b.mem.is_store):
                continue
            if not may_conflict(a.mem, b.mem):
                continue
            out.append(_Edge(src=i, dst=j, latency=latency(a), distance=1))
    return out


def _cross_iteration_edges_hli(
    body: list[Insn],
    query: HLIQuery,
    latency: Callable[[Insn], int],
) -> list[_Edge]:
    """LCDD-informed recurrences with exact distances where known."""
    out: list[_Edge] = []
    for i, a in enumerate(body):
        if a.mem is None or a.hli_item is None:
            continue
        for j, b in enumerate(body):
            if b.mem is None or b.hli_item is None:
                continue
            if not (a.mem.is_store or b.mem.is_store):
                continue
            arcs = query.get_lcdd(a.hli_item, b.hli_item)
            if arcs is None:
                # item not covered: conservative distance-1 recurrence
                out.append(_Edge(src=i, dst=j, latency=latency(a), distance=1))
                continue
            for arc in arcs:
                dist = arc.distance if arc.distance is not None else 1
                out.append(
                    _Edge(src=i, dst=j, latency=latency(a), distance=max(dist, 1))
                )
    return out


def _register_recurrences(
    body: list[Insn], latency: Callable[[Insn], int]
) -> list[_Edge]:
    """Loop-carried register dependences (accumulators, induction vars):
    a register read before its (re)definition recurs at distance 1."""
    defined: set[int] = set()
    live_in: set[int] = set()
    for insn in body:
        for s in insn.src_regs():
            if s.rid not in defined:
                live_in.add(s.rid)
        if insn.dst is not None:
            defined.add(insn.dst.rid)
    out: list[_Edge] = []
    writer: dict[int, int] = {}
    for idx, insn in enumerate(body):
        if insn.dst is not None and insn.dst.rid in live_in:
            writer[insn.dst.rid] = idx
    for idx, insn in enumerate(body):
        for s in insn.src_regs():
            w = writer.get(s.rid)
            if w is not None and w >= idx:
                # value produced later in the body (or by this insn) is
                # consumed next iteration
                out.append(_Edge(src=w, dst=idx, latency=latency(body[w]), distance=1))
    return out


def analyze_loop_pipelining(
    fn: RTLFunction,
    query: Optional[HLIQuery] = None,
    latency: Callable[[Insn], int] = r10000_latency,
    issue_width: int = 4,
) -> list[LoopPipelineReport]:
    """MII bounds for every innermost loop, conservative vs LCDD-informed."""
    reports: list[LoopPipelineReport] = []
    inner_tops = [t for t, _, _ in fn.loops]
    for top, _cont, _exit in fn.loops:
        body = _loop_body(fn, top)
        if body is None or not body:
            continue
        # innermost only
        labels_inside = {
            i.label for i in body if i.op is Opcode.LABEL and i.label is not None
        }
        if any(t in labels_inside for t in inner_tops if t != top):
            continue
        if any(i.op in (Opcode.CALL, Opcode.RET) for i in body):
            continue  # calls preclude pipelining here
        n = len(body)
        res_mii = max(1, -(-n // issue_width))
        # intra-iteration edges from the block DDG (combined mode when HLI
        # is present; that is what a pipelining compiler would use)
        intra_mode = DDGMode.COMBINED if query is not None else DDGMode.GCC
        ddg = DDGBuilder(mode=intra_mode, query=query).build(list(body))
        # anti/output edges only order issue slots; a cycle through them
        # costs one cycle, not the source's full latency
        intra = [
            _Edge(
                src=i,
                dst=j,
                latency=(
                    latency(body[i])
                    if ddg.kinds.get((i, j)) in ("raw", "mem")
                    else 1
                ),
                distance=0,
            )
            for i in range(n)
            for j in ddg.succs[i]
        ]
        reg_rec = _register_recurrences(body, latency)
        cap = sum(latency(i) for i in body) + 1

        gcc_edges = intra + reg_rec + _cross_iteration_edges_gcc(body, latency)
        gcc_rec = _rec_mii(n, gcc_edges, cap)
        if query is not None:
            hli_edges = intra + reg_rec + _cross_iteration_edges_hli(
                body, query, latency
            )
            hli_rec = _rec_mii(n, hli_edges, cap)
        else:
            hli_rec = gcc_rec
        reports.append(
            LoopPipelineReport(
                header_label=top,
                gcc=MIIResult(res_mii=res_mii, rec_mii=gcc_rec, insns=n),
                hli=MIIResult(res_mii=res_mii, rec_mii=hli_rec, insns=n),
            )
        )
    return reports
