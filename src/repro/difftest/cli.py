"""``repro-fuzz`` — the differential fuzzing command.

Normal mode generates seeded random programs (:mod:`repro.difftest.gen`)
and runs each through the differential matrix
(:mod:`repro.difftest.diff`); any failing program is shrunk with the
delta-debugging reducer (:mod:`repro.difftest.reduce`) and written to
the crash directory.

Mutation mode (``--inject``) measures the harness's *detection power*:
it arms the known-miscompilation faults of :mod:`repro.hli.faults`
(dropped maintenance call, stale generation counter, flipped dependence
verdict) one at a time and fuzzes until each armed fault is caught.  A
fault the harness cannot catch is itself a finding — it means the
test oracle has a blind spot, and the command exits non-zero.

Examples::

    repro-fuzz --count 200 --matrix quick
    repro-fuzz --count 1000 --matrix full --time-budget 600
    repro-fuzz --inject --count 50
    repro-fuzz --seed 1234 --count 1 --gen large --stats-out metrics.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Optional

from .. import obs
from ..hli import faults
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .diff import DiffResult, build_matrix, run_differential
from .gen import GenConfig, generate
from .reduce import reduce_source, write_crash

__all__ = ["main", "run_fuzz", "run_incremental_fuzz", "run_inject", "run_wp_fuzz"]


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzing of the HLI compilation pipeline.",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; program k uses seed+k (default 0)")
    p.add_argument("--count", type=int, default=100,
                   help="number of random programs (default 100)")
    p.add_argument("--time-budget", type=float, default=0.0, metavar="SECONDS",
                   help="stop early after this many seconds (0 = no limit)")
    p.add_argument("--matrix", choices=["quick", "full"], default="quick",
                   help="configuration matrix to run each program under")
    p.add_argument("--gen", choices=["small", "medium", "large", "mixed"],
                   default="mixed",
                   help="generator size preset (mixed cycles all three)")
    p.add_argument("--inject", action="store_true",
                   help="mutation mode: arm each known fault and verify the"
                        " harness detects it")
    p.add_argument("--incremental", action="store_true",
                   help="incremental mode: edit one function per program and"
                        " verify the warm session's spliced recompile matches"
                        " a cold compile (RTL, semantics, lint, and exact"
                        " invalidation set)")
    p.add_argument("--wp", action="store_true",
                   help="whole-program mode: split each program over 2-4"
                        " units and verify linked compilation agrees with"
                        " per-file compilation semantically while keeping"
                        " at most as many dependence edges")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan the fuzz batch out over N worker processes"
                        " (0 = one per core; default 1, serial; normal"
                        " mode) or, with --wp, the whole-program back"
                        " end within each seeded program")
    p.add_argument("--partition", choices=["none", "1to1", "balanced"],
                   default="none", metavar="MODE",
                   help="partition mode for the whole-program back end"
                        " (--wp only): none (serial), 1to1, or balanced;"
                        " every seed then doubles as a partitioned-vs-"
                        "serial parity probe (default none)")
    p.add_argument("--server", metavar="HOST:PORT",
                   help="route matrix compiles through a running repro-serve"
                        " daemon, sharing its hot cache (normal serial mode"
                        " only; falls back in-process if unreachable)")
    p.add_argument("--crash-dir", default="crashes", metavar="DIR",
                   help="directory for reduced reproducers (default crashes/)")
    p.add_argument("--no-reduce", action="store_true",
                   help="report failures without delta-debugging them")
    p.add_argument("--stats-out", metavar="FILE",
                   help="write the obs metrics snapshot to FILE as JSON")
    p.add_argument("--max-failures", type=int, default=5,
                   help="stop after this many failing programs (default 5)")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="only print the final summary")
    return p


_PRESETS = ["small", "medium", "large"]


def _config_for(args: argparse.Namespace, k: int) -> GenConfig:
    if args.gen == "mixed":
        return GenConfig.preset(_PRESETS[k % len(_PRESETS)])
    return GenConfig.preset(args.gen)


def _preset_for(gen: str, k: int) -> str:
    return _PRESETS[k % len(_PRESETS)] if gen == "mixed" else gen


def _fuzz_worker(job: tuple) -> dict:
    """Module-level (picklable) batch worker: fuzz one seed.

    Returns a light summary — the parent re-runs failing seeds serially
    to get the full :class:`DiffResult` for reporting and reduction, so
    nothing heavyweight crosses the process boundary.
    """
    seed, preset, matrix_name = job
    source = generate(seed, GenConfig.preset(preset))
    res = run_differential(source, seed=seed, matrix=build_matrix(matrix_name))
    return {"seed": seed, "preset": preset, "ok": res.ok,
            "n_failures": len(res.failures)}


def _run_fuzz_batch(args: argparse.Namespace, out) -> int:
    """Parallel fan-out: summarize every seed, then replay failures serially."""
    from ..driver.session import parallel_map, resolve_workers

    jobs = [
        (args.seed + k, _preset_for(args.gen, k), args.matrix)
        for k in range(args.count)
    ]
    workers = resolve_workers(args.jobs, len(jobs))
    with _trace.span("difftest.fuzz.batch", count=len(jobs), workers=workers):
        summaries = parallel_map(_fuzz_worker, jobs, max_workers=workers)
    matrix = build_matrix(args.matrix)
    failing: list[DiffResult] = []
    for summary in summaries:
        if summary["ok"]:
            continue
        seed, preset = summary["seed"], summary["preset"]
        source = generate(seed, GenConfig.preset(preset))
        res = run_differential(source, seed=seed, matrix=matrix)
        failing.append(res)
        _report_failure(res, args, out)
        if not args.no_reduce:
            case = reduce_source(
                source,
                seed=seed,
                matrix=matrix,
                kinds=frozenset(f.kind for f in res.failures),
            )
            path = write_crash(case, args.crash_dir)
            print(
                f"  reduced {case.original_lines} -> "
                f"{case.reduced_lines} lines: {path}",
                file=out,
            )
        if len(failing) >= args.max_failures:
            print(f"stopping after {len(failing)} failures", file=out)
            break
    verdict = "FAIL" if failing else "ok"
    print(
        f"repro-fuzz: {len(summaries)} programs x {len(matrix)} configs"
        f" ({args.matrix} matrix, {workers} workers):"
        f" {len(failing)} failing -> {verdict}",
        file=out,
    )
    return 1 if failing else 0


def _report_failure(res: DiffResult, args, out) -> None:
    print(f"FAIL seed={res.seed}:", file=out)
    for f in res.failures[:8]:
        print(f"  {f.format()}", file=out)
    if len(res.failures) > 8:
        print(f"  ... {len(res.failures) - 8} more", file=out)


def run_fuzz(args: argparse.Namespace, out=None) -> int:
    """Normal fuzzing: generate, diff, reduce, persist. Returns exit code."""
    out = out if out is not None else sys.stdout
    if getattr(args, "jobs", 1) != 1:
        return _run_fuzz_batch(args, out)
    matrix = build_matrix(args.matrix)
    compile_fn = None
    remote = None
    if getattr(args, "server", None):
        from ..serve.client import RemoteSession

        remote = RemoteSession(args.server)
        compile_fn = remote.compile
    deadline = time.monotonic() + args.time_budget if args.time_budget else None
    ran = 0
    failing: list[DiffResult] = []
    with _trace.span("difftest.fuzz", count=args.count, matrix=args.matrix):
        for k in range(args.count):
            if deadline is not None and time.monotonic() > deadline:
                if not args.quiet:
                    print(f"time budget exhausted after {ran} programs", file=out)
                break
            seed = args.seed + k
            source = generate(seed, _config_for(args, k))
            res = run_differential(
                source, seed=seed, matrix=matrix, compile_fn=compile_fn
            )
            ran += 1
            if not res.ok:
                failing.append(res)
                _report_failure(res, args, out)
                if not args.no_reduce:
                    case = reduce_source(
                        source,
                        seed=seed,
                        matrix=matrix,
                        kinds=frozenset(f.kind for f in res.failures),
                    )
                    path = write_crash(case, args.crash_dir)
                    print(
                        f"  reduced {case.original_lines} -> "
                        f"{case.reduced_lines} lines: {path}",
                        file=out,
                    )
                if len(failing) >= args.max_failures:
                    print(f"stopping after {len(failing)} failures", file=out)
                    break
            elif not args.quiet and ran % 50 == 0:
                print(f"  {ran}/{args.count} programs clean", file=out)

    verdict = "FAIL" if failing else "ok"
    via = ""
    if remote is not None:
        via = (
            f" via {args.server}"
            if remote.using_remote
            else f" ({args.server} unreachable; ran in-process)"
        )
    print(
        f"repro-fuzz: {ran} programs x {len(matrix)} configs"
        f" ({args.matrix} matrix){via}: {len(failing)} failing -> {verdict}",
        file=out,
    )
    return 1 if failing else 0


#: Which failure kinds count as "detection" for each injected fault.
_EXPECTED_CHANNELS = {
    faults.DROP_MAINTENANCE: ("maintenance", "lint", "semantic"),
    faults.STALE_GENERATION: ("lint", "semantic", "compile-crash"),
    faults.FLIP_VERDICT: ("lint", "semantic", "memory"),
}

#: Which whole-program lint rule must fire for each link-time fault
#: (detection channel: the HLI009–HLI012 auditor on a multi-file build).
_EXPECTED_WP_RULES = {
    faults.DROP_SUMMARY: "HLI009",
    faults.SWAP_LINK_ENTRIES: "HLI010",
    faults.STALE_SUMMARY: "HLI012",
}


def run_incremental_fuzz(args: argparse.Namespace, out=None) -> int:
    """Incremental mode: edited programs must splice-recompile exactly.

    Each seed alternates between a computation-only edit and a
    REF/MOD-changing one (which must transitively invalidate callers).
    Returns non-zero if any program's incremental recompile diverges
    from the cold compile in any dimension the oracle checks.
    """
    from .incremental import run_incremental

    out = out if out is not None else sys.stdout
    deadline = time.monotonic() + args.time_budget if args.time_budget else None
    ran = 0
    failing = 0
    with _trace.span("difftest.incremental", count=args.count):
        for k in range(args.count):
            if deadline is not None and time.monotonic() > deadline:
                if not args.quiet:
                    print(f"time budget exhausted after {ran} programs", file=out)
                break
            seed = args.seed + k
            res = run_incremental(
                seed, _config_for(args, k), refmod_changing=bool(k % 2)
            )
            ran += 1
            if not res.ok:
                failing += 1
                kind = "refmod" if k % 2 else "plain"
                print(f"  seed {seed} ({kind} edit of {res.target}): FAIL", file=out)
                for msg in res.failures:
                    print(f"    {msg}", file=out)
                if failing >= args.max_failures:
                    print(f"stopping after {failing} failures", file=out)
                    break
            elif not args.quiet and ran % 50 == 0:
                print(f"  {ran}/{args.count} programs clean", file=out)
    verdict = "FAIL" if failing else "ok"
    print(
        f"repro-fuzz --incremental: {ran} edit-recompile checks:"
        f" {failing} failing -> {verdict}",
        file=out,
    )
    return 1 if failing else 0


def run_wp_fuzz(args: argparse.Namespace, out=None) -> int:
    """Whole-program mode: linked and per-file builds must agree.

    Each seeded program is split over 2–4 units; the differential
    checks semantics, edge-count monotonicity, and both lint tiers
    (see :mod:`repro.difftest.wp`).  Returns non-zero on any finding.
    """
    from .wp import run_wp_differential

    out = out if out is not None else sys.stdout
    deadline = time.monotonic() + args.time_budget if args.time_budget else None
    jobs = getattr(args, "jobs", 1)
    partition = getattr(args, "partition", "none")
    ran = 0
    failing = 0
    deleted = 0
    partitions = 0
    max_skew = 1.0
    with _trace.span("difftest.wp.fuzz", count=args.count):
        for k in range(args.count):
            if deadline is not None and time.monotonic() > deadline:
                if not args.quiet:
                    print(f"time budget exhausted after {ran} programs", file=out)
                break
            seed = args.seed + k
            res = run_wp_differential(
                seed,
                _config_for(args, k),
                n_units=2 + k % 3,
                jobs=jobs,
                partition=partition,
            )
            ran += 1
            deleted += max(0, res.edges_deleted)
            partitions += res.partitions
            max_skew = max(max_skew, res.partition_skew)
            if not res.ok:
                failing += 1
                print(f"  seed {seed} ({res.n_units} units): FAIL", file=out)
                for msg in res.failures:
                    print(f"    {msg}", file=out)
                if failing >= args.max_failures:
                    print(f"stopping after {failing} failures", file=out)
                    break
            elif not args.quiet and ran % 50 == 0:
                print(f"  {ran}/{args.count} programs clean", file=out)
    verdict = "FAIL" if failing else "ok"
    sched = ""
    if partition != "none":
        sched = (
            f" [{partition} partitioning, {partitions} partitions,"
            f" max skew {max_skew:.2f}]"
        )
    print(
        f"repro-fuzz --wp: {ran} linked-vs-per-file checks"
        f" ({deleted} extra call edges deleted by linking){sched}:"
        f" {failing} failing -> {verdict}",
        file=out,
    )
    return 1 if failing else 0


def run_inject(args: argparse.Namespace, out=None) -> int:
    """Mutation mode: every known fault must be detected. Returns exit code."""
    out = out if out is not None else sys.stdout
    matrix = build_matrix(args.matrix)
    deadline = time.monotonic() + args.time_budget if args.time_budget else None
    detected: dict[str, Optional[dict]] = {}
    with _trace.span("difftest.inject", count=args.count):
        for fault in faults.ALL_FAULTS:
            found: Optional[dict] = None
            if fault in faults.LINK_FAULTS:
                # Link faults only exist on multi-file builds; the
                # detection channel is the whole-program auditor.
                from .wp import run_wp_differential

                expected_rule = _EXPECTED_WP_RULES[fault]
                with faults.inject(fault):
                    for k in range(args.count):
                        if deadline is not None and time.monotonic() > deadline:
                            break
                        seed = args.seed + k
                        res = run_wp_differential(
                            seed, _config_for(args, k), n_units=2 + k % 3
                        )
                        if any(
                            r.startswith(expected_rule)
                            for r in res.wp_lint_rules
                        ):
                            found = {
                                "seed": seed,
                                "programs": k + 1,
                                "kinds": [f"wp-lint:{expected_rule}"],
                            }
                            _metrics.inc("difftest.inject.detected", fault)
                            break
                detected[fault] = found
            else:
                channels = _EXPECTED_CHANNELS[fault]
                with faults.inject(fault):
                    for k in range(args.count):
                        if deadline is not None and time.monotonic() > deadline:
                            break
                        seed = args.seed + k
                        source = generate(seed, _config_for(args, k))
                        res = run_differential(source, seed=seed, matrix=matrix)
                        hits = [f for f in res.failures if f.kind in channels]
                        if hits:
                            found = {
                                "seed": seed,
                                "programs": k + 1,
                                "kinds": sorted({f.kind for f in hits}),
                            }
                            _metrics.inc("difftest.inject.detected", fault)
                            break
                detected[fault] = found
            if found is not None:
                print(
                    f"  fault {fault}: DETECTED after {found['programs']}"
                    f" program(s) via {', '.join(found['kinds'])}"
                    f" (seed {found['seed']})",
                    file=out,
                )
            else:
                _metrics.inc("difftest.inject.missed", fault)
                print(
                    f"  fault {fault}: NOT DETECTED in {args.count}"
                    f" program(s) - the oracle has a blind spot",
                    file=out,
                )

    missed = [f for f, v in detected.items() if v is None]
    verdict = "FAIL" if missed else "ok"
    print(
        f"repro-fuzz --inject: {len(detected) - len(missed)}/{len(detected)}"
        f" seeded faults detected -> {verdict}",
        file=out,
    )
    return 1 if missed else 0


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.count < 1:
        print("--count must be >= 1", file=sys.stderr)
        return 2
    if args.server and (
        args.inject or args.incremental or args.wp or args.jobs != 1
    ):
        print(
            "--server applies to normal serial fuzzing only"
            " (not --inject/--incremental/--wp/--jobs)",
            file=sys.stderr,
        )
        return 2
    if args.partition != "none" and not args.wp:
        print("--partition requires --wp", file=sys.stderr)
        return 2
    with obs.enabled_scope(True):
        if args.inject:
            code = run_inject(args)
        elif args.incremental:
            code = run_incremental_fuzz(args)
        elif args.wp:
            code = run_wp_fuzz(args)
        else:
            code = run_fuzz(args)
        if args.stats_out:
            Path(args.stats_out).write_text(
                json.dumps(_metrics.snapshot(), indent=2) + "\n"
            )
    return code


if __name__ == "__main__":
    sys.exit(main())
