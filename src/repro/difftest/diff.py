"""Differential executor: one program, many compilations, one verdict.

The harness runs a single MiniC program through

* the front-end tree-walking interpreter (:func:`repro.frontend.interp.
  interpret`) — the **reference semantics**; and
* compile + RTL execution under every configuration in a matrix of
  :class:`MatrixConfig` points (dependence mode × optimization passes ×
  scheduling),

then checks, in increasing order of subtlety:

1. **semantic equality** — return value and output stream of every
   compiled configuration match the interpreter exactly;
2. **memory equality** — final data memory matches across configurations
   (optimizations may reorder or eliminate *code*, never net stores);
3. **lint cleanliness** — ``hli-lint`` reports no errors on the flagged
   configurations (its oracle replay catches flipped dependence verdicts
   and its reference rebuild catches silent table staleness);
4. **DDG monotonicity** — per compilation, ``combined_yes <= gcc_yes``
   and ``combined_yes <= hli_yes`` (Figure 5: intersecting verdicts can
   only delete edges), and across configurations the base GCC and base
   combined compilations answer the *same* number of dependence tests;
5. **maintenance accounting** — optimizing compilations introduce no new
   *orphan* HLI items (line-table entries referenced by no surviving RTL
   insn) relative to the base compilation of the same mode.  A dropped
   ``delete_item`` call is invisible to semantics and to lint's
   conservative rules, but it leaves exactly this fingerprint.

Any violated check becomes a :class:`Failure`; the per-program verdict
is a :class:`DiffResult`.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Optional

from ..backend.ddg import DDGMode
from ..driver.compile import Compilation, CompileOptions, compile_source
from ..frontend import parse_and_check
from ..frontend.interp import InterpResult, interpret
from ..machine.executor import execute
from ..obs import metrics as _metrics
from ..obs import trace as _trace

__all__ = [
    "MatrixConfig",
    "Failure",
    "DiffResult",
    "build_matrix",
    "run_differential",
]


@dataclass(frozen=True)
class MatrixConfig:
    """One point of the differential configuration matrix."""

    name: str
    mode: DDGMode = DDGMode.COMBINED
    schedule: bool = True
    cse: bool = False
    licm: bool = False
    unroll: int = 1
    #: run ``hli-lint`` over the finished compilation (costly; a subset)
    lint: bool = False

    @property
    def has_passes(self) -> bool:
        return self.cse or self.licm or self.unroll > 1

    def to_options(self) -> CompileOptions:
        return CompileOptions(
            mode=self.mode,
            schedule=self.schedule,
            cse=self.cse,
            licm=self.licm,
            unroll=self.unroll,
        )


#: Pass bundles used to span the matrix: (suffix, cse, licm, unroll).
_PASS_SETS = [
    ("base", False, False, 1),
    ("cse", True, False, 1),
    ("licm", False, True, 1),
    ("unroll", False, False, 2),
    ("opt", True, True, 2),
]


def build_matrix(name: str = "quick") -> list[MatrixConfig]:
    """The named configuration matrix.

    * ``quick`` — 4 configurations: the two base modes, the fully
      optimized combined pipeline, and an unscheduled combined build.
    * ``full``  — all three dependence modes crossed with five pass
      bundles, plus an unscheduled build: 16 configurations.
    """
    if name == "quick":
        return [
            MatrixConfig("gcc-base", mode=DDGMode.GCC),
            MatrixConfig("combined-base", mode=DDGMode.COMBINED, lint=True),
            MatrixConfig(
                "combined-opt",
                mode=DDGMode.COMBINED,
                cse=True,
                licm=True,
                unroll=2,
                lint=True,
            ),
            MatrixConfig("combined-nosched", mode=DDGMode.COMBINED, schedule=False),
        ]
    if name == "full":
        out = []
        for mode in (DDGMode.GCC, DDGMode.HLI, DDGMode.COMBINED):
            for suffix, cse, licm, unroll in _PASS_SETS:
                out.append(
                    MatrixConfig(
                        f"{mode.value}-{suffix}",
                        mode=mode,
                        cse=cse,
                        licm=licm,
                        unroll=unroll,
                        # lint the combined end-points: the clean build and
                        # the maximally transformed one
                        lint=mode is DDGMode.COMBINED and suffix in ("base", "opt"),
                    )
                )
        out.append(MatrixConfig("combined-nosched", mode=DDGMode.COMBINED, schedule=False))
        return out
    raise ValueError(f"unknown matrix '{name}' (quick|full)")


@dataclass(frozen=True)
class Failure:
    """One violated check for one (program, configuration) pair."""

    kind: str  # frontend-error | compile-crash | exec-crash | semantic |
    #          # memory | lint | monotonic | test-count | maintenance
    config: str  # MatrixConfig name, or "<matrix>" for cross-config checks
    detail: str
    seed: Optional[int] = None

    def format(self) -> str:
        tag = f" seed={self.seed}" if self.seed is not None else ""
        return f"[{self.kind}] config={self.config}{tag}: {self.detail}"


@dataclass
class DiffResult:
    """The verdict for one program across the whole matrix."""

    seed: Optional[int] = None
    source: str = ""
    configs_run: int = 0
    checks: int = 0
    failures: list[Failure] = field(default_factory=list)
    #: interpreter reference (None if the front end rejected the program)
    reference: Optional[InterpResult] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def add(self, kind: str, config: str, detail: str) -> None:
        self.failures.append(Failure(kind, config, detail, seed=self.seed))
        _metrics.inc("difftest.failures", kind)


def _trim(text: str, limit: int = 400) -> str:
    return text if len(text) <= limit else text[:limit] + "...<trimmed>"


def _fmt_output(res) -> str:
    return f"ret={res.ret!r} output={_trim('|'.join(res.output))!r}"


def _orphan_items(comp: Compilation) -> dict[str, frozenset[int]]:
    """Per unit: line-table item IDs referenced by no surviving RTL insn."""
    out = {}
    for unit, entry in comp.hli.entries.items():
        fn = comp.rtl.functions.get(unit)
        live = {
            insn.hli_item
            for insn in (fn.insns if fn is not None else [])
            if insn.hli_item is not None
        }
        declared = {item_id for item_id, _ty in entry.line_table.all_items()}
        out[unit] = frozenset(declared - live)
    return out


def run_differential(
    source: str,
    seed: Optional[int] = None,
    matrix: Optional[list[MatrixConfig]] = None,
    filename: str = "<fuzz>",
    compile_fn=None,
) -> DiffResult:
    """Run one program through the full differential harness.

    ``compile_fn(source, filename, options) -> Compilation`` replaces the
    in-process :func:`compile_source` when given — ``repro-fuzz --server``
    passes a :class:`~repro.serve.client.RemoteSession` bound method here
    so the matrix compiles ride a shared daemon cache.  Every check
    downstream only reads the returned :class:`Compilation`, so the two
    paths are interchangeable.
    """
    matrix = matrix if matrix is not None else build_matrix("quick")
    if compile_fn is None:
        compile_fn = lambda src, fn, options: compile_source(src, fn, options=options)  # noqa: E731
    result = DiffResult(seed=seed, source=source)
    _metrics.inc("difftest.programs")

    with _trace.span("difftest.run", seed=seed, configs=len(matrix)):
        # -- reference semantics ------------------------------------------
        try:
            program, _table = parse_and_check(source, filename)
            reference = interpret(program)
        except Exception:
            result.add("frontend-error", "<reference>", _trim(traceback.format_exc()))
            return result
        result.reference = reference

        comps: dict[str, Compilation] = {}
        memories: dict[str, dict] = {}

        for mc in matrix:
            with _trace.span("difftest.config", config=mc.name):
                try:
                    comp = compile_fn(source, filename, mc.to_options())
                except Exception:
                    result.add("compile-crash", mc.name, _trim(traceback.format_exc()))
                    continue
                comps[mc.name] = comp
                result.configs_run += 1

                try:
                    res = execute(comp.rtl, collect_trace=False)
                except Exception:
                    result.add("exec-crash", mc.name, _trim(traceback.format_exc()))
                    continue

                # 1. semantic equality against the interpreter
                result.checks += 1
                if res.ret != reference.ret or res.output != reference.output:
                    result.add(
                        "semantic",
                        mc.name,
                        f"interp {_fmt_output(reference)} != exec {_fmt_output(res)}",
                    )
                memories[mc.name] = res.memory

                # 4. DDG monotonicity within this compilation
                for unit, stats in comp.dep_stats.items():
                    result.checks += 1
                    if (
                        stats.combined_yes > stats.gcc_yes
                        or stats.combined_yes > stats.hli_yes
                    ):
                        result.add(
                            "monotonic",
                            mc.name,
                            f"unit {unit}: combined_yes={stats.combined_yes} exceeds"
                            f" gcc_yes={stats.gcc_yes} or hli_yes={stats.hli_yes}",
                        )

                # 3. lint cleanliness on the flagged configurations
                if mc.lint:
                    from ..checker.lint import lint_compilation

                    result.checks += 1
                    report = lint_compilation(comp)
                    if report.errors:
                        msgs = "; ".join(
                            f"{d.rule.rule_id} {d.unit}:{d.line} {d.message}"
                            for d in report.errors[:5]
                        )
                        result.add("lint", mc.name, _trim(msgs, 600))

        # -- cross-configuration checks -----------------------------------
        # 2. final memory must agree everywhere it was observed
        if len(memories) > 1:
            result.checks += 1
            names = sorted(memories)
            base_name = names[0]
            for other in names[1:]:
                if memories[other] != memories[base_name]:
                    delta = {
                        a: (memories[base_name].get(a), memories[other].get(a))
                        for a in set(memories[base_name]) ^ set(memories[other])
                        | {
                            a
                            for a in set(memories[base_name]) & set(memories[other])
                            if memories[base_name][a] != memories[other][a]
                        }
                    }
                    result.add(
                        "memory",
                        other,
                        f"final memory differs from {base_name}:"
                        f" {_trim(repr(dict(sorted(delta.items())[:8])))}",
                    )

        # 4b. base GCC and base combined must answer the same tests
        gcc_base = next(
            (c for c in comps.values() if c.options.mode is DDGMode.GCC
             and not c.options.cse and not c.options.licm and c.options.unroll == 1
             and c.options.schedule),
            None,
        )
        comb_base = next(
            (c for c in comps.values() if c.options.mode is DDGMode.COMBINED
             and not c.options.cse and not c.options.licm and c.options.unroll == 1
             and c.options.schedule),
            None,
        )
        if gcc_base is not None and comb_base is not None:
            for unit in gcc_base.dep_stats:
                g = gcc_base.dep_stats[unit]
                c = comb_base.dep_stats.get(unit)
                if c is None:
                    continue
                result.checks += 1
                if g.total_tests != c.total_tests:
                    result.add(
                        "test-count",
                        "<matrix>",
                        f"unit {unit}: gcc base ran {g.total_tests} dependence"
                        f" tests, combined base ran {c.total_tests}",
                    )
                result.checks += 1
                if c.combined_yes > g.gcc_yes:
                    result.add(
                        "monotonic",
                        "<matrix>",
                        f"unit {unit}: combined build keeps {c.combined_yes} edges,"
                        f" more than the {g.gcc_yes} GCC-only edges",
                    )

        # 5. maintenance accounting: optimizing builds may not orphan items
        base_orphans: dict[DDGMode, dict[str, frozenset[int]]] = {}
        for mc in matrix:
            comp = comps.get(mc.name)
            if comp is not None and not mc.has_passes and mc.schedule:
                base_orphans.setdefault(mc.mode, _orphan_items(comp))
        for mc in matrix:
            comp = comps.get(mc.name)
            base = base_orphans.get(mc.mode)
            if comp is None or base is None or not mc.has_passes:
                continue
            result.checks += 1
            for unit, orphans in _orphan_items(comp).items():
                new = orphans - base.get(unit, frozenset())
                if new:
                    result.add(
                        "maintenance",
                        mc.name,
                        f"unit {unit}: items {sorted(new)} remain in the line"
                        " table but no RTL insn references them (missed"
                        " delete_item?)",
                    )

    _metrics.inc("difftest.verdict", "ok" if result.ok else "fail")
    return result
