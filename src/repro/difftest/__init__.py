"""repro.difftest — differential fuzzing of the whole HLI pipeline.

The paper's value proposition is that HLI-guided scheduling deletes DDG
edges *without changing program semantics*.  This package turns that
invariant into a generator-driven harness:

* :mod:`repro.difftest.gen`    — a well-typed random MiniC program
  generator (seeded, deterministic, sized by :class:`~repro.difftest.gen.GenConfig`)
  with loops, affine and non-affine array accesses, pointers, structs,
  and calls;
* :mod:`repro.difftest.diff`   — the differential executor: each program
  runs through the front-end reference interpreter and through
  compile+execute under a configuration matrix (HLI on/off × CSE/LICM/
  unroll × scheduling), asserting identical observable outputs plus
  cross-configuration soundness claims (DDG-edge monotonicity, HLI
  maintenance accounting, ``hli-lint`` cleanliness);
* :mod:`repro.difftest.reduce` — a delta-debugging reducer that shrinks
  any failing program to a minimal reproducer written to ``crashes/``;
* :mod:`repro.difftest.wp`     — the whole-program differential: each
  seeded program is split over 2–4 translation units and compiled both
  per-file and linked (:mod:`repro.driver.wpa`); the runner checks
  semantic agreement, dependence-edge monotonicity, and both lint tiers;
* :mod:`repro.difftest.cli`    — the ``repro-fuzz`` command, including a
  mutation mode (``--inject``) that arms the known-miscompilation faults
  of :mod:`repro.hli.faults` (link-time faults included) to measure the
  harness's detection power, and ``--wp`` for whole-program fuzzing.
"""

from .diff import DiffResult, Failure, MatrixConfig, build_matrix, run_differential
from .gen import GenConfig, ProgramGen, generate, generate_units
from .reduce import ReducedCase, reduce_source, write_crash
from .wp import WpDiffResult, run_wp_differential

__all__ = [
    "DiffResult",
    "Failure",
    "MatrixConfig",
    "build_matrix",
    "run_differential",
    "GenConfig",
    "ProgramGen",
    "generate",
    "generate_units",
    "ReducedCase",
    "reduce_source",
    "write_crash",
    "WpDiffResult",
    "run_wp_differential",
]
