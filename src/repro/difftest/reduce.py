"""Delta-debugging reduction of failing fuzz programs.

Given a program that fails the differential harness, shrink it to a
minimal reproducer before a human ever looks at it.  Two phases:

1. **line-chunk ddmin** — repeatedly try deleting contiguous chunks of
   lines (halving chunk size down to single lines), keeping a deletion
   whenever the program still parses/checks *and* still exhibits a
   failure under the same matrix;
2. **literal shrinking** — rewrite surviving integer literals toward
   zero and array sizes toward the minimum, again keeping only changes
   that preserve the failure.

Validity is gated on ``parse_and_check``: a candidate that no longer
compiles in the front end is rejected outright, so the reducer can never
turn a miscompilation into a syntax error.  The interestingness test is
"``run_differential`` reports at least one failure whose *kind* matches
the original" — matching on kind (not exact message) lets the reducer
cross line-number and value changes while still refusing to wander onto
an unrelated bug.

Reduced cases are written to a ``crashes/`` directory with a header
comment carrying the seed, the failure list, and the reduction ratio.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..frontend import parse_and_check
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .diff import DiffResult, MatrixConfig, run_differential

__all__ = ["ReducedCase", "reduce_source", "write_crash"]


@dataclass
class ReducedCase:
    """The outcome of one reduction run."""

    original: str
    reduced: str
    seed: Optional[int] = None
    #: failure kinds preserved through the reduction
    kinds: tuple[str, ...] = ()
    #: the final failing DiffResult on the reduced program
    result: Optional[DiffResult] = None
    attempts: int = 0
    kept: int = 0

    @property
    def original_lines(self) -> int:
        return len(self.original.splitlines())

    @property
    def reduced_lines(self) -> int:
        return len(self.reduced.splitlines())


def _is_valid(source: str) -> bool:
    try:
        parse_and_check(source)
    except Exception:
        return False
    return True


def _make_oracle(
    matrix: Optional[list[MatrixConfig]],
    kinds: frozenset[str],
    seed: Optional[int],
    require_partial: bool = False,
) -> Callable[[str], Optional[DiffResult]]:
    """Interestingness test: valid program that still fails with one of
    the original failure kinds.

    With ``require_partial`` (set when the original program passed on at
    least one configuration), a candidate must also pass somewhere: a
    reduction step that breaks *every* configuration has almost certainly
    manufactured a new, unrelated bug (e.g. an out-of-bounds access from
    shrinking a bound) rather than preserved the original one.
    """
    n_configs = len(matrix) if matrix is not None else 4

    def oracle(source: str) -> Optional[DiffResult]:
        if not _is_valid(source):
            return None
        res = run_differential(source, seed=seed, matrix=matrix)
        if not any(f.kind in kinds for f in res.failures):
            return None
        if require_partial:
            failing = {f.config for f in res.failures} - {"<matrix>", "<reference>"}
            if len(failing) >= n_configs:
                return None
        return res

    return oracle


def _ddmin_lines(
    lines: list[str],
    oracle: Callable[[str], Optional[DiffResult]],
    case: ReducedCase,
) -> tuple[list[str], Optional[DiffResult]]:
    """Classic ddmin over line chunks: try removing each chunk, halve the
    chunk size whenever a full sweep keeps nothing."""
    best: Optional[DiffResult] = None
    chunk = max(1, len(lines) // 2)
    while chunk >= 1:
        removed_any = False
        i = 0
        while i < len(lines):
            candidate = lines[:i] + lines[i + chunk :]
            if not candidate:
                i += chunk
                continue
            case.attempts += 1
            res = oracle("\n".join(candidate) + "\n")
            if res is not None:
                lines = candidate
                best = res
                case.kept += 1
                removed_any = True
                # stay at the same index: the next chunk slid into place
            else:
                i += chunk
        if chunk == 1 and not removed_any:
            break
        if not removed_any:
            chunk //= 2
    return lines, best


_INT_RE = re.compile(r"(?<![\w.])(\d{2,})(?![\w.])")
#: Lines whose literals define storage shapes: shrinking them would break
#: the in-bounds-by-construction property of generated programs.
_DECL_RE = re.compile(r"^\s*(int|double|float|char|struct)\b")


def _shrinkable(source: str, start: int) -> bool:
    """May the literal at ``start`` be rewritten without changing the
    program's memory-safety envelope?"""
    line_start = source.rfind("\n", 0, start) + 1
    line_end = source.find("\n", start)
    line = source[line_start : line_end if line_end != -1 else len(source)]
    if _DECL_RE.match(line):
        return False  # array / variable declaration sizes stay put
    before = source[:start].rstrip()
    if before.endswith("&"):
        return False  # subscript masks keep accesses in bounds
    return True


def _shrink_literals(
    source: str,
    oracle: Callable[[str], Optional[DiffResult]],
    case: ReducedCase,
) -> tuple[str, Optional[DiffResult]]:
    """Rewrite multi-digit integer literals toward smaller values."""
    best: Optional[DiffResult] = None
    changed = True
    while changed:
        changed = False
        for m in list(_INT_RE.finditer(source)):
            if not _shrinkable(source, m.start(1)):
                continue
            value = int(m.group(1))
            for smaller in {value // 2, 8, 1}:
                if smaller >= value:
                    continue
                candidate = source[: m.start(1)] + str(smaller) + source[m.end(1) :]
                case.attempts += 1
                res = oracle(candidate)
                if res is not None:
                    source = candidate
                    best = res
                    case.kept += 1
                    changed = True
                    break
            if changed:
                break  # offsets shifted; rescan from the top
    return source, best


def reduce_source(
    source: str,
    seed: Optional[int] = None,
    matrix: Optional[list[MatrixConfig]] = None,
    kinds: Optional[frozenset[str]] = None,
    max_rounds: int = 4,
) -> ReducedCase:
    """Shrink ``source`` to a minimal program preserving its failure.

    ``kinds`` are the failure kinds to preserve; by default they are
    discovered by running the harness once on the original program.  If
    the original does not fail at all, the case is returned unreduced.
    """
    case = ReducedCase(original=source, reduced=source, seed=seed)
    with _trace.span("difftest.reduce", seed=seed):
        first = run_differential(source, seed=seed, matrix=matrix)
        if kinds is None:
            if first.ok:
                return case
            kinds = frozenset(f.kind for f in first.failures)
        case.result = first if not first.ok else None
        case.kinds = tuple(sorted(kinds))
        n_configs = len(matrix) if matrix is not None else 4
        failing = {f.config for f in first.failures} - {"<matrix>", "<reference>"}
        require_partial = bool(failing) and len(failing) < n_configs
        oracle = _make_oracle(matrix, frozenset(kinds), seed, require_partial)

        lines = source.splitlines()
        for _ in range(max_rounds):
            before = len(lines)
            lines, res = _ddmin_lines(lines, oracle, case)
            if res is not None:
                case.result = res
            text = "\n".join(lines) + "\n"
            text, res = _shrink_literals(text, oracle, case)
            if res is not None:
                case.result = res
            lines = text.splitlines()
            if len(lines) >= before:
                break
        case.reduced = "\n".join(lines) + "\n"
    _metrics.inc("difftest.reduced")
    _metrics.add("difftest.reduce.lines_removed",
                 case.original_lines - case.reduced_lines)
    return case


def write_crash(case: ReducedCase, crash_dir: "Path | str") -> Path:
    """Persist a reduced case under ``crash_dir`` with a triage header."""
    crash_dir = Path(crash_dir)
    crash_dir.mkdir(parents=True, exist_ok=True)
    tag = f"seed{case.seed}" if case.seed is not None else "case"
    name = f"{tag}-{'-'.join(case.kinds) or 'unknown'}.c"
    path = crash_dir / name
    header = [
        "// repro-fuzz reduced reproducer",
        f"// seed: {case.seed}",
        f"// failure kinds: {', '.join(case.kinds) or '?'}",
        f"// reduced {case.original_lines} -> {case.reduced_lines} lines"
        f" ({case.attempts} attempts, {case.kept} kept)",
    ]
    if case.result is not None:
        for f in case.result.failures[:6]:
            header.append(f"// {f.format()}")
    path.write_text("\n".join(header) + "\n" + case.reduced)
    return path
