"""Well-typed random MiniC program generator for differential fuzzing.

Extends the :mod:`repro.workloads.generators` family (which produces
stencils, reductions, and small masked-subscript programs) with the
constructs the HLI analyses actually reason about: counted loops with
*affine* subscripts (``a[2*i - 1]``), non-affine masked subscripts,
pointer walks, struct field accesses, helper-function calls with global
side effects, and guarded integer division — sized by a
:class:`GenConfig` knob set.

Every generated program is, by construction:

* **well-typed** — it passes ``parse_and_check`` unchanged;
* **terminating** — only counted ``for`` loops and down-counted
  ``do``/``while`` loops; no recursion; helper calls form a DAG of
  depth 1;
* **fault-free** — every array subscript is provably in bounds (affine
  bounds are solved at generation time, non-affine subscripts are
  masked), every pointer dereference stays inside its array, and every
  divisor is forced into ``1..8``;
* **fully observable** — ``main`` ends with a checksum loop that folds
  *every* array element plus all scalars and struct fields into the
  return value, so any memory divergence between two compilations is
  visible in the observable result;
* **deterministic** — all randomness flows through one explicit
  :class:`random.Random`; the same ``(seed, config)`` pair always
  yields the same source text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["GenConfig", "ProgramGen", "generate", "generate_units"]


@dataclass(frozen=True)
class GenConfig:
    """Shape knobs for one generated program."""

    #: number of global int arrays (``ga0``, ``ga1``, ...)
    arrays: int = 3
    #: elements per array; must be a power of two (masked subscripts)
    array_size: int = 32
    #: number of global int scalars (``gs0``, ...)
    scalars: int = 3
    #: number of helper functions ``f0(a, b)`` callable from main
    functions: int = 2
    #: top-level statements in ``main`` (before the checksum epilogue)
    max_stmts: int = 10
    #: maximum statement nesting depth (loops / conditionals)
    max_depth: int = 3
    #: maximum expression tree depth
    max_expr_depth: int = 2
    #: emit pointer declarations, walks, and dereferences
    pointers: bool = True
    #: emit a global struct and field accesses
    structs: bool = True
    #: emit calls to the helper functions
    calls: bool = True
    #: emit global doubles and float arithmetic (+ - * and compares)
    floats: bool = False
    #: emit printf statements (adds output-stream observability)
    prints: bool = True
    #: let helper ``f_k`` chain-call ``f_{k+1}`` even in single-unit
    #: programs (always a DAG, so termination holds); this is what the
    #: deep-call-graph benchmark profile dials up
    chain_calls: bool = False

    def __post_init__(self) -> None:
        if self.array_size & (self.array_size - 1) or self.array_size < 8:
            raise ValueError("array_size must be a power of two >= 8")
        if self.arrays < 1:
            raise ValueError("need at least one array")

    @staticmethod
    def small() -> "GenConfig":
        return GenConfig(
            arrays=2, array_size=16, scalars=2, functions=1,
            max_stmts=6, max_depth=2, structs=False, floats=False,
        )

    @staticmethod
    def medium() -> "GenConfig":
        return GenConfig()

    @staticmethod
    def large() -> "GenConfig":
        return GenConfig(
            arrays=4, array_size=64, scalars=4, functions=3,
            max_stmts=16, max_depth=3, max_expr_depth=3, floats=True,
        )

    @staticmethod
    def preset(name: str) -> "GenConfig":
        try:
            return {
                "small": GenConfig.small,
                "medium": GenConfig.medium,
                "large": GenConfig.large,
            }[name]()
        except KeyError:
            raise ValueError(f"unknown GenConfig preset '{name}'") from None


#: Loop-index variables by nesting depth (never assignment targets).
_IDX = ["i0", "i1", "i2", "i3"]
#: Down-counted do/while counters by nesting depth.
_DW = ["j0", "j1", "j2", "j3"]
#: Scratch locals in main.
_LOCALS = ["t0", "t1", "t2", "t3"]

_INT_OPS = ["+", "-", "*", "&", "|", "^"]
_CMP_OPS = ["<", ">", "<=", ">=", "==", "!="]
_ASSIGN_OPS = ["=", "=", "=", "+=", "-=", "*="]
_FLOAT_CONSTS = ["0.5", "1.5", "0.25", "2.0", "0.125", "1.0"]


class ProgramGen:
    """One generator instance; :meth:`build` renders the program text."""

    def __init__(self, rng: random.Random, config: Optional[GenConfig] = None) -> None:
        self.rng = rng
        self.cfg = config if config is not None else GenConfig()
        self.size = self.cfg.array_size
        self.mask = self.size - 1
        self.arrays = [f"ga{k}" for k in range(self.cfg.arrays)]
        self.scalars = [f"gs{k}" for k in range(self.cfg.scalars)]
        self.floats = [f"gd{k}" for k in range(2)] if self.cfg.floats else []
        self._print_seq = 0
        #: inside a helper body only params + globals are in scope
        self._in_helper = False

    # -- expressions -------------------------------------------------------

    def _literal(self) -> str:
        return str(self.rng.randint(-9, 9))

    def _int_atom(self, depth: int, idx_vars: list[str]) -> str:
        roll = self.rng.random()
        if roll < 0.25:
            return self._literal()
        if roll < 0.40 and idx_vars:
            return self.rng.choice(idx_vars)
        if roll < 0.60:
            pool = self.scalars if self._in_helper else self.scalars + _LOCALS
            return self.rng.choice(pool)
        if roll < 0.68 and self.cfg.structs:
            return self.rng.choice(["gr.fa", "gr.fb"])
        if roll < 0.74 and self.cfg.pointers:
            return "(*gp)"
        arr = self.rng.choice(self.arrays)
        return f"{arr}[({self._int_expr(depth + 1, idx_vars)}) & {self.mask}]"

    def _int_expr(self, depth: int, idx_vars: list[str]) -> str:
        if depth >= self.cfg.max_expr_depth:
            return self._int_atom(depth, idx_vars)
        roll = self.rng.random()
        a = self._int_expr(depth + 1, idx_vars)
        b = self._int_expr(depth + 1, idx_vars)
        if roll < 0.06:
            # guarded division / modulo: divisor forced into 1..8
            op = self.rng.choice(["/", "%"])
            return f"({a} {op} (({b} & 7) + 1))"
        if roll < 0.12:
            op = self.rng.choice(["<<", ">>"])
            return f"({a} {op} ({b} & 3))"
        if roll < 0.18:
            return f"({a} {self.rng.choice(_CMP_OPS)} {b})"
        if roll < 0.24:
            c = self._cond(idx_vars)
            return f"(({c}) ? {a} : {b})"
        return f"({a} {self.rng.choice(_INT_OPS)} {b})"

    def _cond(self, idx_vars: list[str]) -> str:
        a = self._int_atom(1, idx_vars)
        b = self._int_atom(1, idx_vars)
        base = f"{a} {self.rng.choice(_CMP_OPS)} {b}"
        if self.rng.random() < 0.25:
            c = self._int_atom(1, idx_vars)
            d = self._int_atom(1, idx_vars)
            glue = self.rng.choice(["&&", "||"])
            return f"{base} {glue} {c} {self.rng.choice(_CMP_OPS)} {d}"
        return base

    # -- statement kinds ---------------------------------------------------

    def _stmt_scalar(self, pad: str, idx_vars: list[str]) -> list[str]:
        target = self.rng.choice(self.scalars + _LOCALS)
        op = self.rng.choice(_ASSIGN_OPS)
        return [f"{pad}{target} {op} {self._int_expr(0, idx_vars)};"]

    def _stmt_masked_store(self, pad: str, idx_vars: list[str]) -> list[str]:
        arr = self.rng.choice(self.arrays)
        sub = f"({self._int_expr(1, idx_vars)}) & {self.mask}"
        return [f"{pad}{arr}[{sub}] = {self._int_expr(0, idx_vars)};"]

    def _stmt_cse_bait(self, pad: str, idx_vars: list[str]) -> list[str]:
        """Repeated same-address loads (and a store-forward) in one block:
        the CSE pass must eliminate some of these and, with it, exercise
        the ``delete_item`` maintenance path the fuzzer audits."""
        arr = self.rng.choice(self.arrays)
        c = self.rng.randint(0, self.size - 1)
        t = self.rng.choice(_LOCALS)
        out = [f"{pad}{t} = {arr}[{c}] + {arr}[{c}];"]
        if self.rng.random() < 0.5:
            c2 = self.rng.randint(0, self.size - 1)
            out.append(f"{pad}{arr}[{c2}] = {t} + 1;")
            out.append(f"{pad}{t} = {arr}[{c2}] * 3 + {arr}[{c2}];")
        return out

    def _affine_accesses(
        self, n: int
    ) -> tuple[int, list[tuple[str, int, int]], int, int]:
        """Pick a scale plus ``n`` (array, scale, shift) accesses and solve
        the loop bounds so every subscript ``scale*i + shift`` is in
        ``[0, size)`` for all ``i`` in ``[lo, hi)``."""
        scale = self.rng.choice([1, 1, 1, 2])
        accesses = []
        lo, hi = 0, self.size
        for _ in range(n):
            arr = self.rng.choice(self.arrays)
            shift = self.rng.randint(-2, 2)
            accesses.append((arr, scale, shift))
            # 0 <= scale*i + shift  =>  i >= ceil(-shift / scale)
            lo = max(lo, -(-(-shift) // scale) if shift < 0 else 0)
            # scale*i + shift < size  =>  i <= (size - 1 - shift) / scale
            hi = min(hi, (self.size - 1 - shift) // scale + 1)
        return scale, accesses, lo, hi

    @staticmethod
    def _affine_sub(var: str, scale: int, shift: int) -> str:
        term = var if scale == 1 else f"{scale} * {var}"
        if shift > 0:
            return f"{term} + {shift}"
        if shift < 0:
            return f"{term} - {-shift}"
        return term

    def _stmt_affine_loop(self, depth: int, idx_vars: list[str]) -> list[str]:
        pad = "    " * (depth + 1)
        var = _IDX[depth]
        n = self.rng.randint(2, 3)
        scale, accesses, lo, hi = self._affine_accesses(n)
        if lo >= hi:
            return self._stmt_scalar(pad, idx_vars)
        inner = idx_vars + [var]
        ipad = pad + "    "
        warr, wscale, wshift = accesses[0]
        body = []
        reads = [
            f"{a}[{self._affine_sub(var, s, sh)}]" for a, s, sh in accesses[1:]
        ]
        rhs = " + ".join(reads) if reads else self._int_expr(1, inner)
        body.append(f"{ipad}{warr}[{self._affine_sub(var, wscale, wshift)}] = {rhs};")
        if self.rng.random() < 0.5:
            body.extend(self._stmt_scalar(ipad, inner))
        return [f"{pad}for ({var} = {lo}; {var} < {hi}; {var}++) {{"] + body + [
            f"{pad}}}"
        ]

    def _stmt_counted_loop(self, depth: int, idx_vars: list[str]) -> list[str]:
        pad = "    " * (depth + 1)
        var = _IDX[depth]
        trip = self.rng.randint(2, 6)
        inner = idx_vars + [var]
        out = [f"{pad}for ({var} = 0; {var} < {trip}; {var}++) {{"]
        for _ in range(self.rng.randint(1, 3)):
            out.extend(self._stmt(depth + 1, inner, in_loop=True))
        out.append(f"{pad}}}")
        return out

    def _stmt_do_while(self, depth: int, idx_vars: list[str]) -> list[str]:
        pad = "    " * (depth + 1)
        var = _DW[depth]
        trip = self.rng.randint(2, 5)
        ipad = pad + "    "
        # The decrement comes FIRST: a generated `continue` in the body
        # jumps straight to the condition, and a trailing decrement would
        # be skipped, making the loop infinite.
        out = [f"{pad}{var} = {trip};", f"{pad}do {{"]
        out.append(f"{ipad}{var} = {var} - 1;")
        out.extend(self._stmt(depth + 1, idx_vars, in_loop=True))
        out.append(f"{pad}}} while ({var} > 0);")
        return out

    def _stmt_if(self, depth: int, idx_vars: list[str], in_loop: bool) -> list[str]:
        pad = "    " * (depth + 1)
        out = [f"{pad}if ({self._cond(idx_vars)}) {{"]
        out.extend(self._stmt(depth + 1, idx_vars, in_loop=in_loop))
        out.append(f"{pad}}}")
        if self.rng.random() < 0.45:
            out.append(f"{pad}else {{")
            out.extend(self._stmt(depth + 1, idx_vars, in_loop=in_loop))
            out.append(f"{pad}}}")
        return out

    def _stmt_pointer_walk(self, depth: int, idx_vars: list[str]) -> list[str]:
        """A bounded pointer walk; ``gp`` is re-parked on the array base
        afterwards so later dereferences stay in bounds."""
        pad = "    " * (depth + 1)
        var = _IDX[depth]
        arr = self.rng.choice(self.arrays)
        start = self.rng.randint(0, self.size // 2)
        trip = self.rng.randint(2, self.size - start)
        ipad = pad + "    "
        if self.rng.random() < 0.5:
            body = f"{ipad}*gp = *gp + {self._int_atom(1, idx_vars + [var])};"
        else:
            t = self.rng.choice(_LOCALS)
            body = f"{ipad}{t} = {t} + *gp;"
        return [
            f"{pad}gp = {arr} + {start};" if start else f"{pad}gp = {arr};",
            f"{pad}for ({var} = 0; {var} < {trip}; {var}++) {{",
            body,
            f"{ipad}gp++;",
            f"{pad}}}",
            f"{pad}gp = {arr};",
        ]

    def _stmt_pointer_simple(self, pad: str, idx_vars: list[str]) -> list[str]:
        arr = self.rng.choice(self.arrays)
        k = self.rng.randint(0, self.size - 1)
        t = self.rng.choice(_LOCALS)
        if self.rng.random() < 0.5:
            return [f"{pad}gp = &{arr}[{k}];", f"{pad}*gp = {self._int_expr(1, idx_vars)};"]
        return [f"{pad}gp = &{arr}[{k}];", f"{pad}{t} = *gp + {self._int_atom(1, idx_vars)};"]

    def _stmt_struct(self, pad: str, idx_vars: list[str]) -> list[str]:
        field = self.rng.choice(["gr.fa", "gr.fb"])
        if self.rng.random() < 0.6:
            return [f"{pad}{field} = {self._int_expr(0, idx_vars)};"]
        t = self.rng.choice(_LOCALS)
        return [f"{pad}{t} = gr.fa {self.rng.choice(_INT_OPS)} gr.fb;"]

    def _stmt_call(self, pad: str, idx_vars: list[str]) -> list[str]:
        fn = f"f{self.rng.randrange(self.cfg.functions)}"
        t = self.rng.choice(_LOCALS)
        a = self._int_atom(1, idx_vars)
        b = self._int_atom(1, idx_vars)
        return [f"{pad}{t} = {fn}({a}, {b});"]

    def _stmt_float(self, pad: str, idx_vars: list[str]) -> list[str]:
        d = self.rng.choice(self.floats)
        roll = self.rng.random()
        if roll < 0.4:
            other = self.rng.choice(self.floats)
            c = self.rng.choice(_FLOAT_CONSTS)
            op = self.rng.choice(["+", "-", "*"])
            return [f"{pad}{d} = {other} {op} {c};"]
        if roll < 0.7:
            return [f"{pad}{d} = {d} * 0.5 + {self._int_atom(1, idx_vars)};"]
        t = self.rng.choice(_LOCALS)
        return [f"{pad}{t} = ({d} > {self.rng.choice(self.floats)}) + {t};"]

    def _stmt_print(self, pad: str, idx_vars: list[str]) -> list[str]:
        self._print_seq += 1
        return [
            f'{pad}printf("p{self._print_seq}=%d\\n", {self._int_expr(1, idx_vars)});'
        ]

    def _stmt_loop_escape(self, pad: str, idx_vars: list[str]) -> list[str]:
        kw = self.rng.choice(["break", "continue"])
        return [f"{pad}if ({self._cond(idx_vars)}) {kw};"]

    # -- statement dispatch ------------------------------------------------

    def _stmt(self, depth: int, idx_vars: list[str], in_loop: bool = False) -> list[str]:
        pad = "    " * (depth + 1)
        cfg = self.cfg
        roll = self.rng.random()
        deeper = depth < cfg.max_depth and depth < len(_IDX) - 1
        if roll < 0.18:
            return self._stmt_scalar(pad, idx_vars)
        if roll < 0.30:
            return self._stmt_masked_store(pad, idx_vars)
        if roll < 0.36:
            return self._stmt_cse_bait(pad, idx_vars)
        if roll < 0.48 and deeper:
            return self._stmt_affine_loop(depth, idx_vars)
        if roll < 0.56 and deeper:
            return self._stmt_counted_loop(depth, idx_vars)
        if roll < 0.62 and deeper:
            return self._stmt_if(depth, idx_vars, in_loop)
        if roll < 0.66 and deeper and depth < len(_DW):
            return self._stmt_do_while(depth, idx_vars)
        if roll < 0.72 and cfg.pointers and deeper:
            return self._stmt_pointer_walk(depth, idx_vars)
        if roll < 0.76 and cfg.pointers:
            return self._stmt_pointer_simple(pad, idx_vars)
        if roll < 0.82 and cfg.structs:
            return self._stmt_struct(pad, idx_vars)
        if roll < 0.88 and cfg.calls and cfg.functions > 0:
            return self._stmt_call(pad, idx_vars)
        if roll < 0.91 and cfg.floats:
            return self._stmt_float(pad, idx_vars)
        if roll < 0.94 and cfg.prints:
            return self._stmt_print(pad, idx_vars)
        if roll < 0.97 and in_loop:
            return self._stmt_loop_escape(pad, idx_vars)
        return self._stmt_scalar(pad, idx_vars)

    # -- helper functions --------------------------------------------------

    def _helper(self, k: int, chain: bool = False) -> str:
        body = [f"    int r;"]
        self._in_helper = True
        expr = self._int_expr(0, ["a", "b"])
        self._in_helper = False
        body.append(f"    r = {expr};")
        if self.scalars and self.rng.random() < 0.7:
            # global side effect: makes call REF/MOD summaries non-trivial
            g = self.rng.choice(self.scalars)
            body.append(f"    {g} = {g} + a;")
        if self.rng.random() < 0.4:
            arr = self.rng.choice(self.arrays)
            body.append(f"    r = r + {arr}[(b) & {self.mask}];")
        if chain and k + 1 < self.cfg.functions and self.rng.random() < 0.6:
            # cross-unit call chain: f_k -> f_{k+1} (still a DAG, so
            # termination holds; feeds the linker's SCC fixpoint)
            body.append(f"    r = r + f{k + 1}(b, a);")
        body.append(f"    return r;")
        return f"int f{k}(int a, int b) {{\n" + "\n".join(body) + "\n}\n"

    # -- top level ---------------------------------------------------------

    def _global_defs(self) -> list[str]:
        """Defining declarations for every global (one unit owns these)."""
        cfg = self.cfg
        parts: list[str] = []
        if cfg.structs:
            parts.append("struct rec { int fa; int fb; };")
            parts.append("struct rec gr;")
        for a in self.arrays:
            parts.append(f"int {a}[{self.size}];")
        for s in self.scalars:
            parts.append(f"int {s};")
        for d in self.floats:
            parts.append(f"double {d};")
        if cfg.pointers:
            parts.append("int *gp;")
        return parts

    def _global_externs(self) -> list[str]:
        """Extern declarations mirroring :meth:`_global_defs`."""
        cfg = self.cfg
        parts: list[str] = []
        if cfg.structs:
            parts.append("struct rec { int fa; int fb; };")
            parts.append("extern struct rec gr;")
        for a in self.arrays:
            parts.append(f"extern int {a}[{self.size}];")
        for s in self.scalars:
            parts.append(f"extern int {s};")
        for d in self.floats:
            parts.append(f"extern double {d};")
        if cfg.pointers:
            parts.append("extern int *gp;")
        return parts

    @staticmethod
    def _proto(k: int) -> str:
        return f"extern int f{k}(int a, int b);"

    def build(self) -> str:
        cfg = self.cfg
        parts: list[str] = self._global_defs()
        parts.append("")
        for k in range(cfg.functions if cfg.calls else 0):
            parts.append(self._helper(k, chain=cfg.chain_calls))
        parts.append(self._main_text())
        return "\n".join(parts) + "\n"

    def build_units(self, n_units: int) -> list[tuple[str, str]]:
        """Render the program split across ``n_units`` translation units.

        Unit 0 (``u0.c``) owns every global definition and ``main``;
        helper functions are distributed round-robin over the remaining
        units, each of which sees the globals through extern declarations
        and the other units' helpers through extern prototypes.  Helpers
        may chain-call the next helper, so calls cross unit boundaries in
        both directions.  Deterministic for a fixed ``(seed, config,
        n_units)``.
        """
        cfg = self.cfg
        n_helpers = cfg.functions if cfg.calls else 0
        n_units = max(2, min(n_units, 1 + n_helpers))
        if n_helpers == 0:
            return [("u0.c", self.build())]
        helpers = [self._helper(k, chain=True) for k in range(n_helpers)]
        main_text = self._main_text()
        owner = {k: 1 + (k % (n_units - 1)) for k in range(n_helpers)}
        units: list[tuple[str, str]] = []
        for u in range(n_units):
            parts: list[str] = []
            if u == 0:
                parts.extend(self._global_defs())
                parts.append("")
                parts.extend(self._proto(k) for k in range(n_helpers))
                parts.append("")
                parts.append(main_text)
            else:
                parts.extend(self._global_externs())
                parts.append("")
                parts.extend(
                    self._proto(k) for k in range(n_helpers) if owner[k] != u
                )
                parts.append("")
                parts.extend(h for k, h in enumerate(helpers) if owner[k] == u)
            units.append((f"u{u}.c", "\n".join(parts) + "\n"))
        return units

    def _main_text(self) -> str:
        cfg = self.cfg
        main: list[str] = ["int main() {"]
        main.append(f"    int {', '.join(_IDX)};")
        main.append(f"    int {', '.join(_DW)};")
        main.append(f"    int {', '.join(_LOCALS)};")
        main.append("    int chk;")
        for k, t in enumerate(_LOCALS):
            main.append(f"    {t} = {k + 1};")
        for v in _DW:
            main.append(f"    {v} = 0;")
        # deterministic array / global initialization
        main.append(f"    for (i0 = 0; i0 < {self.size}; i0++) {{")
        for k, a in enumerate(self.arrays):
            main.append(f"        {a}[i0] = i0 * {2 * k + 3} - {k};")
        main.append("    }")
        for k, s in enumerate(self.scalars):
            main.append(f"    {s} = {k * 7 + 1};")
        for k, d in enumerate(self.floats):
            main.append(f"    {d} = {k}.5;")
        if cfg.structs:
            main.append("    gr.fa = 11; gr.fb = -4;")
        if cfg.pointers:
            main.append(f"    gp = {self.arrays[0]};")
        # the random body
        for _ in range(self.rng.randint(3, cfg.max_stmts)):
            main.extend(self._stmt(0, []))
        # checksum epilogue: fold every observable location into `chk`
        main.append("    chk = 0;")
        main.append(f"    for (i0 = 0; i0 < {self.size}; i0++) {{")
        for k, a in enumerate(self.arrays):
            main.append(f"        chk = chk * 31 + {a}[i0];")
        main.append("    }")
        for s in self.scalars:
            main.append(f"    chk = chk * 31 + {s};")
        for t in _LOCALS:
            main.append(f"    chk = chk * 31 + {t};")
        if cfg.structs:
            main.append("    chk = chk * 31 + gr.fa + gr.fb;")
        for d in self.floats:
            main.append(f"    chk = chk * 31 + ({d} > 0.0) - ({d} < -1.0);")
        if cfg.prints:
            main.append('    printf("chk=%d\\n", chk);')
        main.append("    return chk & 65535;")
        main.append("}")
        return "\n".join(main)


def generate(
    seed: int,
    config: Optional[GenConfig] = None,
    rng: Optional[random.Random] = None,
) -> str:
    """Generate one deterministic random MiniC program."""
    return ProgramGen(rng if rng is not None else random.Random(seed), config).build()


def generate_units(
    seed: int,
    config: Optional[GenConfig] = None,
    n_units: int = 3,
    rng: Optional[random.Random] = None,
) -> list[tuple[str, str]]:
    """Generate one deterministic random *multi-file* MiniC program.

    Returns ``(filename, source)`` pairs suitable for
    :func:`repro.driver.wpa.compile_whole_program`.
    """
    gen = ProgramGen(rng if rng is not None else random.Random(seed), config)
    return gen.build_units(n_units)
