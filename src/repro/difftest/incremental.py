"""Incremental-recompilation oracle: edit, splice, and compare to cold.

The function-grained artifact cache (:mod:`repro.driver.session`) claims
that recompiling an edited file through a warm session is *semantically
indistinguishable* from a cold compile — only faster.  This module turns
that claim into a differential oracle over the random programs of
:mod:`repro.difftest.gen`:

1. generate a base program and compile it through a session (cold);
2. apply a deterministic **line-count-preserving edit** to one helper
   function — either a pure computation change or a REF/MOD-changing
   one (a new global side effect, which must transitively invalidate
   every caller);
3. recompile the edited program through the warm session and cold via
   :func:`~repro.driver.compile.compile_source`;
4. check that

   * the incremental RTL is **alpha-equivalent** to the cold RTL
     (identical modulo register numbers and instruction uids, which are
     process-global counters and legitimately differ);
   * execution of the incremental RTL matches the reference interpreter
     (and therefore the cold compile) on return value and output;
   * scheduling statistics agree function-for-function;
   * ``hli-lint`` is clean over the spliced compilation;
   * the set of functions the back end actually re-ran is **exactly**
     the edited function plus its transitive callers — nothing stale
     (unsoundness), nothing extra (lost incrementality).

Register/uid renumbering (:func:`canonical_rtl`) makes the comparison
deterministic: both compiles are renamed into first-occurrence order
before comparing text.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Optional

from ..backend.rtl import Reg, RTLFunction, RTLProgram
from ..driver.compile import Compilation, CompileOptions, compile_source
from ..driver.session import CompilationSession
from ..frontend import parse_and_check
from ..frontend.interp import interpret
from ..machine.executor import execute
from .gen import GenConfig, generate

__all__ = [
    "IncrementalResult",
    "canonical_fn",
    "canonical_rtl",
    "edit_helper",
    "run_incremental",
]


# -- alpha-equivalent RTL rendering --------------------------------------------


def _canon_val(v, regmap: dict[int, int]) -> str:
    if isinstance(v, Reg):
        rid = regmap.setdefault(v.rid, len(regmap))
        return f"{'f' if v.is_float else 'r'}{rid}"
    return repr(v)


def canonical_fn(fn: RTLFunction) -> list[str]:
    """Render one function with registers renumbered in first-occurrence
    order — identical output means identical code modulo reg/uid choice."""
    regmap: dict[int, int] = {}
    lines = [
        "params " + ",".join(_canon_val(r, regmap) for r in fn.param_regs),
        "ret " + (_canon_val(fn.ret_reg, regmap) if fn.ret_reg else "-"),
        "frame " + ",".join(f"{n}:{sz}" for n, (_, sz) in sorted(fn.frame.items())),
    ]
    for insn in fn.insns:
        parts = [insn.op.name if hasattr(insn.op, "name") else str(insn.op)]
        if insn.dst is not None:
            parts.append("dst=" + _canon_val(insn.dst, regmap))
        if insn.srcs:
            parts.append("srcs=" + ",".join(_canon_val(s, regmap) for s in insn.srcs))
        if insn.mem is not None:
            m = insn.mem
            parts.append(
                f"mem={_canon_val(m.addr, regmap)}:{m.width}"
                f":{'st' if m.is_store else 'ld'}:{m.known_symbol}"
                f":{m.known_offset}:{m.base_symbol}:{int(m.may_be_aliased)}"
            )
        if insn.label is not None:
            parts.append(f"label={insn.label}")
        if insn.callee is not None:
            parts.append(f"callee={insn.callee}")
        if insn.imm is not None:
            parts.append(f"imm={insn.imm!r}")
        if insn.symbol is not None:
            parts.append(f"sym={insn.symbol}")
        if insn.hli_item is not None:
            parts.append(f"item={insn.hli_item}")
        parts.append(f"line={insn.line}")
        lines.append(" ".join(parts))
    return lines


def canonical_rtl(rtl: RTLProgram) -> dict[str, list[str]]:
    return {name: canonical_fn(fn) for name, fn in rtl.functions.items()}


# -- deterministic edits over generated programs -------------------------------

_RETURN_R = re.compile(r"^(\s*)return r;\s*$")


@dataclass
class Edit:
    """One applied edit: the new source plus what it touched."""

    source: str
    #: the helper function whose body changed
    target: str
    #: True when the edit adds a global store (REF/MOD-changing)
    refmod_changing: bool


def edit_helper(
    source: str, rng: random.Random, refmod_changing: bool = False
) -> Optional[Edit]:
    """Apply a line-count-preserving edit to one random helper ``fk``.

    A plain edit perturbs the helper's return value; a REF/MOD-changing
    edit additionally stores to a global the helper did not previously
    modify on that line.  Both keep every line number in the file
    identical, so only the edited function's fingerprint (and, through
    effect chaining, its callers') may change.
    """
    lines = source.split("\n")
    helpers: list[tuple[int, str]] = []  # (line index of "return r;", name)
    current: Optional[str] = None
    for i, line in enumerate(lines):
        m = re.match(r"^int (f\d+)\(int a, int b\) \{", line)
        if m:
            current = m.group(1)
        elif current is not None and _RETURN_R.match(line):
            helpers.append((i, current))
            current = None
    if not helpers:
        return None
    idx, name = helpers[rng.randrange(len(helpers))]
    pad = _RETURN_R.match(lines[idx]).group(1)
    if refmod_changing:
        scalars = sorted(set(re.findall(r"^int (gs\d+);", source, re.M)))
        if not scalars:
            return None
        g = scalars[rng.randrange(len(scalars))]
        lines[idx] = f"{pad}{g} = {g} ^ a; return r - 1;"
    else:
        lines[idx] = f"{pad}return r + {rng.randrange(1, 7)};"
    return Edit(source="\n".join(lines), target=name, refmod_changing=True
                if refmod_changing else False)


# -- the oracle ----------------------------------------------------------------


@dataclass
class IncrementalResult:
    """Verdict of one edit-recompile check."""

    seed: int
    ok: bool = True
    failures: list[str] = field(default_factory=list)
    #: functions the back end re-ran on the incremental compile
    recompiled: list[str] = field(default_factory=list)
    #: the invalidation set the fingerprints predict
    expected: list[str] = field(default_factory=list)
    target: str = ""

    def fail(self, msg: str) -> None:
        self.ok = False
        self.failures.append(msg)


def _expected_invalidation(source: str, target: str) -> set[str]:
    """Edited function + its transitive callers, from the call graph."""
    from ..analysis.alias import analyze_points_to
    from ..analysis.refmod import analyze_refmod
    from ..driver.incremental import function_keys, transitive_callers

    program, table = parse_and_check(source, "inc.c")
    pts = analyze_points_to(program, table)
    refmod = analyze_refmod(program, table, pts)
    keys = function_keys(source, program, table, pts, refmod)
    return {target} | transitive_callers(keys, {target})


def run_incremental(
    seed: int,
    config: Optional[GenConfig] = None,
    options: Optional[CompileOptions] = None,
    cache_dir=None,
    refmod_changing: bool = False,
) -> IncrementalResult:
    """Generate, edit, recompile warm, and compare against cold."""
    res = IncrementalResult(seed=seed)
    rng = random.Random(seed * 2654435761 % 2**32)
    base = generate(seed, config)
    edit = edit_helper(base, rng, refmod_changing=refmod_changing)
    if edit is None:
        return res  # vacuously ok: nothing editable in this program
    res.target = edit.target
    opts = options or CompileOptions(cse=True, licm=True, lint=True)

    session = CompilationSession(cache_dir=cache_dir)
    session.compile(base, "inc.c", opts)
    inc = session.compile(edit.source, "inc.c", opts)
    cold = compile_source(edit.source, "inc.c", opts)

    # 1. alpha-equivalent RTL
    canon_inc, canon_cold = canonical_rtl(inc.rtl), canonical_rtl(cold.rtl)
    if canon_inc != canon_cold:
        diverged = sorted(
            n for n in canon_cold if canon_inc.get(n) != canon_cold[n]
        )
        res.fail(f"incremental RTL diverges from cold in {diverged}")

    # 2. semantics vs the reference interpreter
    program, _ = parse_and_check(edit.source, "inc.c")
    ref = interpret(program)
    got = execute(inc.rtl, collect_trace=False)
    if got.ret != ref.ret or list(got.output) != list(ref.output):
        res.fail(
            f"incremental execution diverges from interpreter: "
            f"ret {got.ret} vs {ref.ret}"
        )

    # 3. scheduling statistics agree
    if {n: vars(s) for n, s in inc.dep_stats.items()} != {
        n: vars(s) for n, s in cold.dep_stats.items()
    }:
        res.fail("dep stats diverge between incremental and cold")

    # 4. lint is clean over the spliced compilation
    if opts.lint and inc.lint_report is not None and inc.lint_report.findings:
        res.fail(f"hli-lint over spliced compilation: {inc.lint_report.findings}")

    # 5. exact invalidation set
    stats = inc.pipeline_stats
    ran: set[str] = set()
    if stats is not None:
        for units in stats.function_runs.values():
            ran |= set(units)
    expected = _expected_invalidation(edit.source, edit.target)
    res.recompiled = sorted(ran)
    res.expected = sorted(expected)
    if ran != expected:
        stale = expected - ran
        extra = ran - expected
        if stale:
            res.fail(f"stale functions never recompiled: {sorted(stale)}")
        if extra:
            res.fail(f"unnecessary recompilation of {sorted(extra)}")
    survivors = set(inc.rtl.functions) - expected
    if survivors and inc.cache_state != "incremental":
        # some functions should have been served from the cache
        res.fail(f"unexpected cache state {inc.cache_state!r}")
    return res
