"""Differential testing of whole-program vs per-file compilation.

For one seeded multi-file program (:func:`repro.difftest.gen.generate_units`)
this runner compiles the same unit list twice — once per-file
(conservative extern effects) and once whole-program (linked summaries)
— links both into executable images, and checks:

* **semantic agreement** — return value, output stream, and final data
  memory of the two images are identical (the linked summaries may only
  delete *redundant* ordering edges, never change behaviour);
* **monotonicity** — whole-program mode keeps at most as many
  call-vs-memory edges (``DepStats.call_dep``) and combined dependence
  edges as per-file mode: more information can only delete edges;
* **link hygiene** — no link or image diagnostics on generated programs
  (they are well-formed by construction);
* **lint** — per-unit ``hli-lint`` is clean in both modes and the
  whole-program auditor (HLI009–HLI012) is clean.

Any violated check is a finding: either the linker computed an unsound
summary (and the schedule diverged) or the monotonicity argument of the
adapter broke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..backend.ddg import DepStats
from ..driver.compile import CompileOptions
from ..driver.wpa import compile_whole_program
from ..machine.executor import execute
from ..obs import trace as _trace
from .gen import GenConfig, generate_units

__all__ = ["WpDiffResult", "run_wp_differential"]


@dataclass
class WpDiffResult:
    """Outcome of one whole-program differential run."""

    seed: int
    n_units: int
    failures: list[str] = field(default_factory=list)
    wp_stats: DepStats = field(default_factory=DepStats)
    pf_stats: DepStats = field(default_factory=DepStats)
    #: rule IDs the whole-program lint raised (empty when clean)
    wp_lint_rules: list[str] = field(default_factory=list)
    #: back-end scheduling of the whole-program compile (serial = 1 / 1.0)
    partitions: int = 1
    partition_skew: float = 1.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, message: str) -> None:
        self.failures.append(message)

    @property
    def edges_deleted(self) -> int:
        """Call-ordering edges whole-program mode deleted beyond per-file."""
        return self.pf_stats.call_dep - self.wp_stats.call_dep


def run_wp_differential(
    seed: int,
    config: Optional[GenConfig] = None,
    n_units: int = 3,
    options: Optional[CompileOptions] = None,
    jobs: int = 1,
    partition: str = "none",
) -> WpDiffResult:
    """Compile one seeded multi-file program both ways and compare.

    ``jobs``/``partition`` schedule the whole-program compile's parallel
    back end; since partitioning must never change output, fuzzing with
    a partition mode turns every seed into a parity probe as well.
    """
    sources = generate_units(seed, config, n_units=n_units)
    res = WpDiffResult(seed=seed, n_units=len(sources))
    opts = options or CompileOptions(lint=True)
    with _trace.span("difftest.wp", seed=seed, units=len(sources)):
        wp = compile_whole_program(
            sources, opts, whole_program=True, jobs=jobs, partition=partition
        )
        pf = compile_whole_program(sources, opts, whole_program=False)
        if wp.partition_plan is not None:
            res.partitions = wp.partition_plan.n_partitions
            res.partition_skew = wp.partition_plan.skew
        res.wp_stats = wp.total_dep_stats()
        res.pf_stats = pf.total_dep_stats()

        for diag in wp.link.diagnostics:
            res.fail(f"link diagnostic: {diag.code} '{diag.name}': {diag.message}")
        for diag in wp.image_diagnostics:
            res.fail(f"image diagnostic: {diag.code} '{diag.name}': {diag.message}")

        r_wp = execute(wp.image, collect_trace=False)
        r_pf = execute(pf.image, collect_trace=False)
        if r_wp.ret != r_pf.ret:
            res.fail(f"return value diverges: wp={r_wp.ret} pf={r_pf.ret}")
        if list(r_wp.output) != list(r_pf.output):
            res.fail("output stream diverges between wp and per-file images")
        if r_wp.memory != r_pf.memory:
            diff = {
                addr
                for addr in set(r_wp.memory) | set(r_pf.memory)
                if r_wp.memory.get(addr) != r_pf.memory.get(addr)
            }
            res.fail(f"final memory diverges at {len(diff)} address(es)")

        if res.wp_stats.call_dep > res.pf_stats.call_dep:
            res.fail(
                "monotonicity violated: whole-program kept more call edges "
                f"({res.wp_stats.call_dep}) than per-file ({res.pf_stats.call_dep})"
            )
        if res.wp_stats.combined_yes > res.pf_stats.combined_yes:
            res.fail(
                "monotonicity violated: whole-program kept more combined "
                f"edges ({res.wp_stats.combined_yes}) than per-file "
                f"({res.pf_stats.combined_yes})"
            )

        if opts.lint:
            for mode_name, result in (("wp", wp), ("per-file", pf)):
                for fname, comp in result.units.items():
                    if comp.lint_report is not None and not comp.lint_report.clean:
                        res.fail(
                            f"{mode_name} unit lint not clean for {fname}: "
                            f"{[d.rule.rule_id for d in comp.lint_report.findings]}"
                        )
        wp_report = wp.lint_report()
        res.wp_lint_rules = sorted(
            {d.rule.rule_id for d in wp_report.diagnostics}
        )
        if not wp_report.clean:
            res.fail(
                f"whole-program lint not clean: {res.wp_lint_rules}"
            )
    return res
