"""One-command artifact validation: ``python -m repro.driver.validate``.

Runs the complete reproduction — Table 1, Table 2, speedups, and the
figure-level checks — and writes a machine-readable ``RESULTS.json``
plus a pass/fail summary of every shape claim in EXPERIMENTS.md.
Intended as the artifact-evaluation entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field
from time import perf_counter

from .. import obs
from ..backend.ddg import DDGMode
from ..hli.sizes import size_report
from ..machine.executor import execute
from ..obs import export as obs_export
from ..obs import trace as obs_trace
from ..workloads.suite import BENCHMARKS, by_name, float_benchmarks, integer_benchmarks
from .compile import CompileOptions
from .session import CompilationSession, parallel_map
from .timing import time_benchmark


@dataclass
class Claim:
    """One checkable shape claim from the paper."""

    name: str
    description: str
    passed: bool
    measured: object = None
    #: wall time spent checking this claim (including exclusive evidence
    #: collection, e.g. the lint replay), via ``perf_counter``
    seconds: float = 0.0


@dataclass
class ValidationReport:
    #: ``perf_counter`` at construction — monotonic, immune to wall-clock
    #: steps (NTP adjustments used to corrupt ``elapsed_seconds``)
    started: float = field(default_factory=perf_counter)
    table1: list[dict] = field(default_factory=list)
    table2: list[dict] = field(default_factory=list)
    speedups: list[dict] = field(default_factory=list)
    claims: list[Claim] = field(default_factory=list)
    #: per-workload whole-program vs per-file comparison rows
    whole_program: list[dict] = field(default_factory=list)
    #: per-phase wall times (seconds), keyed by phase name
    phases: dict = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.claims)

    def add_claim(self, build) -> None:
        """Append ``build()``'s claim, recording how long the check took."""
        t0 = perf_counter()
        claim = build()
        claim.seconds = round(perf_counter() - t0 + claim.seconds, 6)
        self.claims.append(claim)


def _collect_tables(report: ValidationReport, session: CompilationSession) -> None:
    # the suite is consumed through the workload registry (suite-v1), so
    # the tables are pinned to the same named population repro-bench runs
    from ..bench.registry import suite_specs

    for b in suite_specs():
        comp = session.compile(b.source, b.name, CompileOptions(mode=DDGMode.COMBINED))
        rep = size_report(comp.hli, b.source)
        stats = comp.total_dep_stats()
        unmapped = sum(m.unmapped for m in comp.map_stats.values())
        report.table1.append(
            {
                "benchmark": b.name,
                "is_float": b.is_float,
                "code_lines": rep.code_lines,
                "hli_bytes": rep.hli_bytes,
                "bytes_per_line": round(rep.bytes_per_line, 2),
            }
        )
        report.table2.append(
            {
                "benchmark": b.name,
                "is_float": b.is_float,
                "total_tests": stats.total_tests,
                "gcc_yes": stats.gcc_yes,
                "hli_yes": stats.hli_yes,
                "combined_yes": stats.combined_yes,
                "reduction_pct": round(100 * stats.reduction, 1),
                "unmapped_refs": unmapped,
            }
        )


def _collect_lint(report: ValidationReport, session: CompilationSession) -> None:
    """Audit every benchmark with ``hli-lint`` in all three DDG modes."""
    from ..checker.lint import lint_compilation

    def build() -> Claim:
        findings = 0
        claims = 0
        for b in BENCHMARKS:
            for mode in DDGMode:
                comp = session.compile(b.source, b.name, CompileOptions(mode=mode))
                lint = lint_compilation(comp)
                findings += len(lint.diagnostics)
                claims += sum(lint.claims_checked.values())
        return Claim(
            "hli_lint_clean",
            "hli-lint replays every consumed HLI claim with zero findings "
            "in all three dependence modes",
            findings == 0 and claims > 0,
            {"claims_replayed": claims, "findings": findings},
        )

    report.add_claim(build)


def _collect_difftest(report: ValidationReport) -> None:
    """A bounded differential-fuzz batch over the quick matrix."""
    from ..difftest.diff import build_matrix, run_differential
    from ..difftest.gen import GenConfig, generate

    def build() -> Claim:
        matrix = build_matrix("quick")
        presets = ["small", "medium", "large"]
        failures: list[str] = []
        programs = 0
        for seed in range(24):
            source = generate(seed, GenConfig.preset(presets[seed % 3]))
            res = run_differential(source, seed=seed, matrix=matrix)
            programs += 1
            failures.extend(f.format() for f in res.failures)
        return Claim(
            "difftest_batch_clean",
            "a seeded differential-fuzz batch finds no interpreter/RTL "
            "divergence across the quick config matrix",
            programs > 0 and not failures,
            {"programs": programs, "failures": failures[:5]},
        )

    report.add_claim(build)


def _collect_whole_program(
    report: ValidationReport, jobs: int = 1, partition: str = "none"
) -> None:
    """Whole-program linking gate over the multi-file workloads.

    For every workload in
    :data:`~repro.workloads.multifile.WHOLE_PROGRAM_WORKLOADS` the units
    are compiled twice — per-file (conservative extern effects) and
    linked (cross-module summaries) — and three claims are checked:
    identical execution, a *strict* reduction in call-ordering edges,
    and a clean whole-program lint (HLI009–HLI012).

    ``jobs``/``partition`` schedule the linked compile's phases (see
    :func:`~repro.driver.wpa.compile_whole_program`); the partition
    count and weight skew of each workload land in the report rows.
    """
    from ..workloads.multifile import WHOLE_PROGRAM_WORKLOADS
    from .wpa import compile_whole_program

    rows: list[dict] = []
    opts = CompileOptions(lint=True)
    for w in WHOLE_PROGRAM_WORKLOADS:
        wp = compile_whole_program(
            w.sources(), opts, whole_program=True, jobs=jobs, partition=partition
        )
        pf = compile_whole_program(w.sources(), opts, whole_program=False)
        r_wp = execute(wp.image, collect_trace=False)
        r_pf = execute(pf.image, collect_trace=False)
        s_wp, s_pf = wp.total_dep_stats(), pf.total_dep_stats()
        lint = wp.lint_report()
        plan = wp.partition_plan
        rows.append(
            {
                "workload": w.name,
                "units": len(w.units),
                "agree": (
                    r_wp.ret == r_pf.ret
                    and list(r_wp.output) == list(r_pf.output)
                    and not wp.link.diagnostics
                    and not wp.image_diagnostics
                ),
                "call_dep_pf": s_pf.call_dep,
                "call_dep_wp": s_wp.call_dep,
                "lint_findings": len(lint.diagnostics),
                "lint_claims": sum(lint.claims_checked.values()),
                "partitions": plan.n_partitions if plan is not None else 1,
                "partition_skew": round(plan.skew, 4) if plan is not None else 1.0,
            }
        )
    report.whole_program = rows
    report.add_claim(
        lambda: Claim(
            "wp_semantics_agree",
            "linked and per-file images execute identically on every "
            "multi-file workload",
            bool(rows) and all(r["agree"] for r in rows),
            {r["workload"]: r["agree"] for r in rows},
        )
    )
    report.add_claim(
        lambda: Claim(
            "wp_edges_strictly_reduced",
            "whole-program summaries delete strictly more call-ordering "
            "edges than per-file compilation on every multi-file workload",
            bool(rows) and all(r["call_dep_wp"] < r["call_dep_pf"] for r in rows),
            {r["workload"]: (r["call_dep_pf"], r["call_dep_wp"]) for r in rows},
        )
    )
    report.add_claim(
        lambda: Claim(
            "wp_lint_clean",
            "the whole-program auditor (HLI009-HLI012) replays every "
            "linked claim with zero findings",
            bool(rows)
            and all(r["lint_findings"] == 0 and r["lint_claims"] > 0 for r in rows),
            {
                "claims_replayed": sum(r["lint_claims"] for r in rows),
                "findings": sum(r["lint_findings"] for r in rows),
            },
        )
    )


def _speedup_row(t) -> dict:
    return {
        "benchmark": t.name,
        "speedup_r4600": round(t.speedup_r4600, 3),
        "speedup_r10000": round(t.speedup_r10000, 3),
        "results_match": t.results_match,
        "dynamic_insns": t.dynamic_insns,
    }


def _speedup_worker(job: tuple) -> dict:
    """Module-level (picklable) fan-out worker: time one benchmark.

    Each worker process builds its own session over the shared disk
    cache, so the four compiles inside ``time_benchmark`` still share
    one front end even across the pool.
    """
    name, cache_dir = job
    sess = CompilationSession(cache_dir=cache_dir)
    return _speedup_row(time_benchmark(by_name(name), sess))


def _collect_speedups(
    report: ValidationReport, session: CompilationSession, jobs: int
) -> None:
    if jobs != 1:
        cache_dir = str(session.cache_dir) if session.cache_dir else None
        rows = parallel_map(
            _speedup_worker,
            [(b.name, cache_dir) for b in BENCHMARKS],
            max_workers=jobs,
        )
        report.speedups.extend(rows)
        return
    for b in BENCHMARKS:
        report.speedups.append(_speedup_row(time_benchmark(b, session)))


def _collect_registry(report: ValidationReport) -> None:
    """Workload-registry reproducibility: every named set must regenerate
    exactly the source digests pinned in its committed manifest."""
    from ..bench import registry as bench_registry

    def build() -> Claim:
        problems: list[str] = []
        for name in bench_registry.set_names():
            problems.extend(bench_registry.verify_manifest(name))
        return Claim(
            "bench_registry_reproducible",
            "every repro-bench workload set regenerates byte-identical "
            "sources from its pinned seeds (digest manifest match)",
            not problems,
            {
                "sets_verified": len(bench_registry.set_names()),
                "mismatches": problems[:5],
            },
        )

    report.add_claim(build)


def _check_claims(report: ValidationReport) -> None:
    def mean(rows, key, flt):
        vals = [r[key] for r in rows if r["is_float"] == flt]
        return sum(vals) / len(vals)

    int_bpl = mean(report.table1, "bytes_per_line", False)
    fp_bpl = mean(report.table1, "bytes_per_line", True)
    report.add_claim(
        lambda: Claim(
            "t1_fp_denser",
            "fp programs carry more HLI bytes/line than int programs",
            fp_bpl > int_bpl,
            {"int": round(int_bpl, 1), "fp": round(fp_bpl, 1)},
        )
    )
    int_red = mean(report.table2, "reduction_pct", False)
    fp_red = mean(report.table2, "reduction_pct", True)
    report.add_claim(
        lambda: Claim(
            "t2_substantial_reduction",
            "mean dependence-edge reduction exceeds 40% (paper: 48/54%)",
            int_red > 40 and fp_red > 40,
            {"int": round(int_red, 1), "fp": round(fp_red, 1)},
        )
    )
    report.add_claim(
        lambda: Claim(
            "t2_fp_reduces_more",
            "fp programs reduce more than int programs",
            fp_red > int_red,
        )
    )
    tomcatv = next(r for r in report.table2 if r["benchmark"] == "101.tomcatv")
    report.add_claim(
        lambda: Claim(
            "t2_tomcatv_over_80",
            "tomcatv analogue reduces >80% of edges (paper: 93%)",
            tomcatv["reduction_pct"] > 80,
            tomcatv["reduction_pct"],
        )
    )
    report.add_claim(
        lambda: Claim(
            "mapping_complete",
            "every back-end memory reference maps to an HLI item",
            all(r["unmapped_refs"] == 0 for r in report.table2),
        )
    )
    report.add_claim(
        lambda: Claim(
            "combined_is_and",
            "combined answers <= min(GCC, HLI) on every benchmark (Fig. 5)",
            all(
                r["combined_yes"] <= min(r["gcc_yes"], r["hli_yes"])
                for r in report.table2
            ),
        )
    )
    if report.speedups:
        report.add_claim(
            lambda: Claim(
                "schedules_sound",
                "GCC and HLI schedules produce identical results everywhere",
                all(r["results_match"] for r in report.speedups),
            )
        )
        report.add_claim(
            lambda: Claim(
                "no_meaningful_slowdown",
                "HLI scheduling never loses more than 3% on either machine",
                all(
                    r["speedup_r4600"] > 0.97 and r["speedup_r10000"] > 0.97
                    for r in report.speedups
                ),
            )
        )
        md = [
            r
            for r in report.speedups
            if r["benchmark"] in ("034.mdljdp2", "077.mdljsp2")
        ]
        others = [r for r in report.speedups if r not in md]
        report.add_claim(
            lambda: Claim(
                "md_codes_stand_out",
                "molecular-dynamics analogues show the largest speedups (paper's ranking)",
                min(r["speedup_r10000"] for r in md)
                >= max(0.99, sum(r["speedup_r10000"] for r in others) / len(others)),
                {"md": [r["speedup_r10000"] for r in md]},
            )
        )


def validate(
    include_speedups: bool = True,
    out_path: str = "RESULTS.json",
    include_lint: bool = True,
    trace_out: str | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    cache_max_bytes: int | None = None,
    include_whole_program: bool = False,
    server: str | None = None,
    partition: str = "none",
) -> ValidationReport:
    """Run the full validation; writes ``RESULTS.json`` and returns the report.

    With ``trace_out`` set, the :mod:`repro.obs` subsystem is enabled for
    the run and a Chrome ``trace_event`` JSON profile of the whole
    validation is written to that path.

    All compilations route through one :class:`CompilationSession`
    (optionally disk-backed via ``cache_dir``), so the tables, lint, and
    timing phases share front-end artifacts instead of re-parsing each
    benchmark up to seven times.  ``jobs`` fans the speedup phase out
    over a process pool (``0`` = one worker per core) and, together
    with ``partition``, schedules the whole-program phase's parallel
    back end.

    ``server`` (``HOST:PORT``) routes compilations through a running
    ``repro-serve`` daemon instead, sharing its hot cache with every
    other client; if the daemon is unreachable the run degrades to the
    in-process session and still completes.
    """
    report = ValidationReport()
    local = CompilationSession(cache_dir=cache_dir, max_disk_bytes=cache_max_bytes)
    if server is not None:
        from ..serve.client import RemoteSession

        session = RemoteSession(server, fallback=local)
    else:
        session = local

    def phase(name: str, fn) -> None:
        t0 = perf_counter()
        with obs_trace.span(f"validate.{name}"):
            fn()
        report.phases[name] = round(perf_counter() - t0, 3)

    with obs.enabled_scope(trace_out is not None):
        with obs_trace.span("driver.validate"):
            print("collecting Table 1 / Table 2 statistics ...", flush=True)
            phase("tables", lambda: _collect_tables(report, session))
            if include_speedups:
                print(
                    "running speedup measurements (4 executions per benchmark) ...",
                    flush=True,
                )
                phase("speedups", lambda: _collect_speedups(report, session, jobs))
            phase("claims", lambda: _check_claims(report))
            print("verifying workload-registry digest manifests ...", flush=True)
            phase("registry", lambda: _collect_registry(report))
            if include_lint:
                print("replaying HLI claims with hli-lint (3 modes) ...", flush=True)
                phase("lint", lambda: _collect_lint(report, session))
            print("running differential-fuzz batch (24 programs) ...", flush=True)
            phase("difftest", lambda: _collect_difftest(report))
            if include_whole_program:
                print(
                    "linking multi-file workloads (whole-program vs per-file) ...",
                    flush=True,
                )
                phase(
                    "whole_program",
                    lambda: _collect_whole_program(report, jobs, partition),
                )
    payload = {
        "table1": report.table1,
        "table2": report.table2,
        "speedups": report.speedups,
        "whole_program": report.whole_program,
        "claims": [asdict(c) for c in report.claims],
        "phase_seconds": report.phases,
        "session_cache": session.stats.to_dict(),
        "elapsed_seconds": round(perf_counter() - report.started, 1),
    }
    if server is not None:
        payload["server"] = {
            "spec": server,
            "remote_compiles": session.remote_compiles,
            "fallback_compiles": session.fallback_compiles,
            "using_remote": session.using_remote,
        }
    with open(out_path, "w") as f:
        json.dump(payload, f, indent=2)
    print(f"\nwrote {out_path}")
    if trace_out is not None:
        with open(trace_out, "w") as f:
            json.dump(obs_export.chrome_trace(), f)
        print(f"wrote {trace_out}")
    for c in report.claims:
        mark = "PASS" if c.passed else "FAIL"
        extra = f"  [{c.measured}]" if c.measured is not None else ""
        print(f"  {mark}  {c.name}: {c.description}{extra}")
    print(f"\noverall: {'ALL CLAIMS PASS' if report.all_passed else 'FAILURES PRESENT'}")
    return report


def main(argv: list[str] | None = None) -> int:
    """CI gate: exit 0 only when every claim passes."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.driver.validate",
        description="Reproduce the paper's tables and verify every shape claim.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="skip the speedup measurements (fastest meaningful gate)",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the hli-lint claim-replay gate",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="also link the multi-file workloads and check the "
        "whole-program claims (semantic agreement, strict edge "
        "reduction, HLI009-HLI012 lint)",
    )
    parser.add_argument(
        "--out",
        default="RESULTS.json",
        metavar="PATH",
        help="where to write the machine-readable report (default: %(default)s)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs instrumentation and write a Chrome "
        "trace_event JSON profile of the validation run to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the speedup phase (and, with --partition, the "
        "whole-program back end) out over N worker processes "
        "(0 = one per core; default: %(default)s, serial)",
    )
    parser.add_argument(
        "--partition",
        choices=("none", "1to1", "balanced"),
        default="none",
        metavar="MODE",
        help="partition mode for the whole-program phase's parallel "
        "back end: none (serial), 1to1, or balanced "
        "(default: %(default)s; needs --whole-program and --jobs > 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="back the compilation session with an on-disk artifact "
        "cache shared across phases, workers, and reruns",
    )
    parser.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="route compilations through a running repro-serve daemon "
        "(falls back in-process if unreachable)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict the disk cache above N bytes "
        "(default: unbounded; requires --cache-dir)",
    )
    args = parser.parse_args(argv)
    if args.cache_max_bytes is not None and not args.cache_dir:
        parser.error("--cache-max-bytes requires --cache-dir")
    report = validate(
        include_speedups=not args.quick,
        out_path=args.out,
        include_lint=not args.no_lint,
        trace_out=args.trace_out,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        include_whole_program=args.whole_program,
        server=args.server,
        partition=args.partition,
    )
    return 0 if report.all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
