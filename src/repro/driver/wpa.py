"""Whole-program compilation: per-unit pipelines around one link step.

``compile_whole_program`` is the driver for multi-file MiniC programs.
It runs in two phases around :func:`repro.linker.link_units`:

1. **Analyze + link.**  Every unit is parsed, checked, and summarized
   (:func:`repro.linker.unit.analyze_unit`); the linker reconciles the
   global symbols and runs the bottom-up SCC fixpoint over the
   cross-unit call graph.
2. **Compile.**  Every unit is compiled through the ordinary per-unit
   pipeline, but with ``external_effects`` — the linked summaries of the
   extern functions it calls, translated back into its own object
   vocabulary by :mod:`repro.linker.adapter` — so the HLI builder,
   queries, DDG, and lint all see precise cross-module REF/MOD facts
   instead of the conservative TOP/TOP default.

The per-unit RTL programs are then merged into one executable image
(:func:`repro.linker.image.link_image`).  When a
:class:`~repro.driver.session.CompilationSession` is supplied, phase 2
compiles through it with an ``extra_salt`` derived from the link
fingerprint, so per-file and whole-program artifacts never collide and a
relink retires stale cache entries automatically.

After phase 2 the driver snapshots each summarized function's HLI
generation (``summary_generations``).  The whole-program lint's HLI012
rule replays that snapshot against the entries' current generations —
the link-time analog of the paper's staleness protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import TYPE_CHECKING, Optional

from ..backend.ddg import DepStats
from ..backend.rtl import RTLProgram
from ..frontend import parse_and_check
from ..hli import faults
from ..linker import (
    PARTITION_MODES,
    LinkResult,
    PartitionPlan,
    UnitAnalysis,
    analyze_unit,
    effects_fingerprint,
    effects_for_unit,
    link_image,
    link_units,
    partition_program,
)
from ..linker.table import LinkDiagnostic
from ..obs import enabled_scope
from ..obs import trace as _trace
from .compile import Compilation, CompileOptions, compile_source
from .session import CompileJob, parallel_map, resolve_workers

if TYPE_CHECKING:
    from ..checker.rules import LintReport
    from .session import CompilationSession

__all__ = ["WholeProgramResult", "compile_whole_program"]


def _analyze_source(item: tuple[str, str]) -> UnitAnalysis:
    """Phase-1 worker: parse + check + summarize one unit.

    Module-level so :func:`~repro.driver.session.parallel_map` can ship
    it to a process pool; the returned :class:`UnitAnalysis` crosses the
    boundary via pickle (plain dataclasses end to end).
    """
    filename, source = item
    program, table = parse_and_check(source, filename)
    return analyze_unit(program, table, filename=filename)


@dataclass
class WholeProgramResult:
    """Everything whole-program compilation produced."""

    #: unit filename -> its per-unit compilation (program order)
    units: dict[str, Compilation] = field(default_factory=dict)
    #: link table + cross-module summaries (phase 1)
    link: LinkResult = field(default_factory=LinkResult)
    #: the merged executable image (runs on the unmodified executor)
    image: Optional[RTLProgram] = None
    #: diagnostics from the image merge (size/duplicate/orphan issues)
    image_diagnostics: list[LinkDiagnostic] = field(default_factory=list)
    #: function -> HLI generation its summary was recorded against
    #: (whole-program mode only; audited by lint rule HLI012)
    summary_generations: dict[str, int] = field(default_factory=dict)
    options: Optional[CompileOptions] = None
    #: whether phase 2 consumed the linked summaries
    whole_program: bool = True
    #: how phase 2 was scheduled (None when the serial default ran)
    partition_plan: Optional[PartitionPlan] = None

    def total_dep_stats(self) -> DepStats:
        """Scheduling statistics summed over every unit."""
        total = DepStats()
        for comp in self.units.values():
            total.merge(comp.total_dep_stats())
        return total

    def lint_report(self) -> "LintReport":
        """Run the whole-program auditor (rules HLI009–HLI012)."""
        from ..checker.wplint import lint_whole_program

        return lint_whole_program(self)


def _link_salt(link: LinkResult, effects: dict) -> str:
    """Cache salt binding a unit's artifacts to the link state."""
    h = sha256()
    h.update(b"repro-wpa-link\x00")
    h.update(link.fingerprint().encode("utf-8", "surrogatepass"))
    h.update(b"\x00")
    h.update(effects_fingerprint(effects).encode("utf-8", "surrogatepass"))
    return "wpa:" + h.hexdigest()


def compile_whole_program(
    sources: list[tuple[str, str]],
    options: Optional[CompileOptions] = None,
    whole_program: bool = True,
    session: Optional["CompilationSession"] = None,
    summary_cache: Optional[str] = None,
    jobs: Optional[int] = 1,
    partition: str = "none",
) -> WholeProgramResult:
    """Compile ``(filename, source)`` units as one linked program.

    With ``whole_program=False`` the link step still runs (the image and
    diagnostics are always produced) but phase 2 compiles every unit
    with the conservative per-file defaults — the baseline the
    whole-program mode is measured against.

    ``summary_cache`` names a file persisting the linked cross-module
    summary table (:mod:`repro.linker.persist`): an unchanged program
    restores it instead of re-running the interprocedural fixpoint.

    ``jobs``/``partition`` schedule the two phases.  ``jobs=1`` +
    ``partition="none"`` (the default) is today's fully serial path;
    with more jobs, phase 1 fans units out over
    :func:`~repro.driver.session.parallel_map` and phase 2 groups them
    by :func:`~repro.linker.partition.partition_program` and dispatches
    each partition as one
    :meth:`~repro.driver.session.CompilationSession.compile_partitions`
    pool task (``jobs=0`` means one per core).  Scheduling never changes
    output: the compiled units, merged image, DepStats, and lint
    verdicts are identical across every ``jobs``/``partition`` choice.
    """
    if partition not in PARTITION_MODES:
        raise ValueError(
            f"partition mode must be one of {PARTITION_MODES}, got {partition!r}"
        )
    opts = options or CompileOptions()
    n_jobs = resolve_workers(jobs, len(sources))
    result = WholeProgramResult(options=opts, whole_program=whole_program)
    with enabled_scope(opts.trace):
        with _trace.span(
            "driver.wpa",
            units=len(sources),
            wp=whole_program,
            jobs=n_jobs,
            partition=partition,
        ):
            if n_jobs > 1:
                analyses = parallel_map(_analyze_source, sources, max_workers=n_jobs)
            else:
                analyses = [_analyze_source(item) for item in sources]
            result.link = link_units(analyses, summary_cache=summary_cache)

            def job_for(filename: str, source: str, unit) -> CompileJob:
                if whole_program:
                    effects = effects_for_unit(unit, result.link.summaries)
                    salt = _link_salt(result.link, effects)
                else:
                    effects, salt = None, ""
                return CompileJob(
                    source=source,
                    filename=filename,
                    options=opts,
                    external_effects=effects,
                    extra_salt=salt,
                )

            if partition != "none" and n_jobs > 1 and len(sources) > 1:
                result.partition_plan = plan = partition_program(
                    analyses, mode=partition, jobs=n_jobs
                )
                by_name = {
                    fname: (src, unit)
                    for (fname, src), unit in zip(sources, analyses)
                }
                batches = [
                    [job_for(f, by_name[f][0], by_name[f][1]) for f in part]
                    for part in plan.partitions
                ]
                sess = session
                if sess is None:
                    from .session import CompilationSession

                    sess = CompilationSession(cache_dir=None)
                compiled = sess.compile_partitions(batches, max_workers=n_jobs)
                flat: dict[str, Compilation] = {}
                for part, comps in zip(plan.partitions, compiled):
                    for fname, comp in zip(part, comps):
                        flat[fname] = comp
                # Reassemble in source order so the merged image layout
                # is independent of the partitioning.
                for filename, _src in sources:
                    result.units[filename] = flat[filename]
            else:
                for (filename, source), unit in zip(sources, analyses):
                    job = job_for(filename, source, unit)
                    if session is not None:
                        comp = session.compile(
                            job.source,
                            job.filename,
                            opts,
                            external_effects=job.external_effects,
                            extra_salt=job.extra_salt,
                        )
                    else:
                        comp = compile_source(
                            job.source, job.filename, opts, job.external_effects
                        )
                    result.units[filename] = comp

            result.image, result.image_diagnostics = link_image(
                [(fname, comp.rtl) for fname, comp in result.units.items()]
            )

            if whole_program:
                _snapshot_generations(result)
    return result


def _snapshot_generations(result: WholeProgramResult) -> None:
    """Record each summarized function's HLI generation *after* phase 2.

    The back-end passes bump ``HLIEntry.generation`` through table
    maintenance, so the binding must be taken from the finished
    compilations — a link-time snapshot would be stale by construction.
    The :data:`~repro.hli.faults.STALE_SUMMARY` fault corrupts one
    binding here, modelling a summary reused across a relink.
    """
    for name, summary in result.link.summaries.items():
        comp = result.units.get(summary.unit)
        if comp is None or comp.hli is None:
            continue
        entry = comp.hli.entries.get(name)
        if entry is not None:
            result.summary_generations[name] = entry.generation
    if faults.is_active(faults.STALE_SUMMARY) and result.summary_generations:
        victim = sorted(result.summary_generations)[0]
        result.summary_generations[victim] -= 1
