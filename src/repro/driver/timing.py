"""Timing comparisons: GCC-only vs HLI-combined schedules on both machines.

Regenerates the last two columns of the paper's Table 2: each benchmark
is compiled twice (``gcc`` mode and ``combined`` mode), executed
functionally to obtain a dynamic trace, and the trace is timed on the
R4600-like and R10000-like models.  Speedup = GCC cycles / HLI cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..backend.ddg import DDGMode, DepStats
from ..machine.executor import execute
from ..machine.latencies import r4600_latency, r10000_latency
from ..machine.pipeline import R4600Model
from ..machine.superscalar import R10000Model
from ..obs import trace
from ..workloads.suite import BenchmarkSpec
from .compile import CompileOptions
from .session import CompilationSession


@dataclass
class BenchTiming:
    """Timing outcome of one benchmark under both machines."""

    name: str
    ret_gcc: object
    ret_hli: object
    cycles_r4600_gcc: int
    cycles_r4600_hli: int
    cycles_r10000_gcc: int
    cycles_r10000_hli: int
    dynamic_insns: int
    stats: DepStats

    @property
    def speedup_r4600(self) -> float:
        return self.cycles_r4600_gcc / self.cycles_r4600_hli if self.cycles_r4600_hli else 1.0

    @property
    def speedup_r10000(self) -> float:
        return self.cycles_r10000_gcc / self.cycles_r10000_hli if self.cycles_r10000_hli else 1.0

    @property
    def results_match(self) -> bool:
        return self.ret_gcc == self.ret_hli


def time_benchmark(
    spec: BenchmarkSpec, session: Optional[CompilationSession] = None
) -> BenchTiming:
    """Compile + execute + time one benchmark under both modes.

    Each machine's run uses a schedule tuned with that machine's latency
    table (as ``-mcpu`` tuning would); the dependence information — GCC
    local analysis vs the Figure 5 combination — is the only other
    variable between the compared runs.

    All four compiles route through one :class:`CompilationSession`
    (``session`` or a private one): the cache key covers only the
    front-end artifacts, so the gcc-vs-hli double compile parses, builds
    HLI, and lowers exactly once per benchmark — the paper's separate
    compilation story applied to our own measurement harness.
    """
    sess = session if session is not None else CompilationSession()
    cycles: dict[tuple[str, str], int] = {}
    rets: dict[str, object] = {}
    dyn = 0
    stats: DepStats | None = None
    machines = (
        ("r4600", r4600_latency, R4600Model()),
        ("r10000", r10000_latency, R10000Model()),
    )
    with trace.span("driver.timing", benchmark=spec.name):
        for mach_name, lat, model in machines:
            for mode in (DDGMode.GCC, DDGMode.COMBINED):
                with trace.span(
                    "driver.timing.run", machine=mach_name, mode=mode.value
                ):
                    comp = sess.compile(
                        spec.source, spec.name, CompileOptions(mode=mode, latency=lat)
                    )
                    res = execute(comp.rtl, spec.entry, input_text=spec.input_text)
                    timing = model.time(res.trace)
                cycles[(mach_name, mode.value)] = timing.cycles
                rets[mode.value] = res.ret
                dyn = timing.instructions
                if stats is None and mode is DDGMode.COMBINED:
                    stats = comp.total_dep_stats()
    assert stats is not None
    return BenchTiming(
        name=spec.name,
        ret_gcc=rets["gcc"],
        ret_hli=rets["combined"],
        cycles_r4600_gcc=cycles[("r4600", "gcc")],
        cycles_r4600_hli=cycles[("r4600", "combined")],
        cycles_r10000_gcc=cycles[("r10000", "gcc")],
        cycles_r10000_hli=cycles[("r10000", "combined")],
        dynamic_insns=dyn,
        stats=stats,
    )
