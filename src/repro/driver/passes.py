"""The concrete compilation pipeline as pass-manager data.

Every stage of the paper's Figure 3 pipeline — parse, HLI construction,
lowering, HLI import/mapping, the optimization passes, scheduling, and
the ``hli-lint`` audit — is a :class:`repro.backend.pm.Pass` with
declared inputs/outputs/invalidations.  ``driver.compile.compile_source``
is a thin wrapper that assembles a pipeline (``CompileOptions.pipeline``
when given, otherwise :func:`default_pipeline` derived from the option
flags) and hands it to the :class:`~repro.backend.pm.PassManager`.

Artifact names
--------------
``ast``       parsed+checked program (``ctx.program``/``ctx.table``)
``hli``       the HLI file (``comp.hli``) + front-end info (``comp.frontend``)
``rtl``       lowered RTL (``comp.rtl``)
``mapping``   per-insn HLI item annotations + ``comp.map_stats``
``queries``   fresh ``HLIQuery`` indices per unit (``comp.queries``)
``opt_stats`` ``comp.opt_stats``
``dep_stats`` scheduling statistics (``comp.dep_stats``)
``lint``      ``comp.lint_report``

The old ``backend/passes.run_optimizations`` rebuilt every ``HLIQuery``
by hand after the table-mutating passes; here the mutating passes
declare ``invalidates=("queries",)`` and the manager rebuilds lazily,
exactly when a later pass requires fresh indices (the ``"queries"``
rebuilder below).  In GCC mode the optimization passes consume no HLI at
all, so their pipeline instances declare no query requirement and no
invalidation — the mode changes the *data*, not the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from ..analysis.builder import build_hli
from ..backend.ddg import DDGMode
from ..backend.lowering import lower_program
from ..backend.mapping import map_function
from ..backend.pm import Pass, PassManager, PipelineError
from ..backend.scheduler import schedule_function
from ..frontend import parse_and_check
from ..hli.query import HLIQuery
from ..obs import trace as _trace

if TYPE_CHECKING:  # no runtime import: driver.compile imports this module
    from ..backend.passes import OptStats
    from ..frontend import ast_nodes as ast
    from ..frontend.symbols import SymbolTable
    from .compile import Compilation, CompileOptions

__all__ = [
    "PassContext",
    "build_pipeline",
    "default_pipeline",
    "rebuild_queries",
    "run_pipeline",
    "KNOWN_PASSES",
]


@dataclass
class PassContext:
    """Everything a pass may read or write while running one pipeline."""

    comp: "Compilation"
    opts: "CompileOptions"
    #: transient front-end state (never cached; only ``ast`` consumers use it)
    program: Optional["ast.Program"] = None
    table: Optional["SymbolTable"] = None
    #: units the per-function passes run over; ``None`` means every
    #: function in ``comp.rtl`` (the cold-compile default).  The
    #: incremental session narrows this to the invalidated set.
    active_units: Optional[list[str]] = None
    #: per-function optimization-stats fragments (what the back-end
    #: artifact cache stores, so spliced functions restore their share)
    fn_opt_stats: dict[str, "OptStats"] = field(default_factory=dict)

    def units(self) -> list[str]:
        """The units per-function passes should visit, in program order."""
        if self.active_units is not None:
            return list(self.active_units)
        if self.comp.rtl is None:
            return []
        return list(self.comp.rtl.functions)


# -- pass actions -------------------------------------------------------------


def _parse(ctx: PassContext) -> None:
    ctx.program, ctx.table = parse_and_check(ctx.comp.source, ctx.comp.filename)


def _build_hli(ctx: PassContext) -> None:
    ctx.comp.hli, ctx.comp.frontend = build_hli(
        ctx.program, ctx.table, external_effects=ctx.comp.external_effects
    )


def _lower(ctx: PassContext) -> None:
    ctx.comp.rtl = lower_program(ctx.program, ctx.table)


def _map(ctx: PassContext, unit: str) -> None:
    comp = ctx.comp
    entry = comp.hli.entries.get(unit)
    if entry is None:
        return
    with _trace.span("backend.mapping", fn=unit):
        comp.map_stats[unit] = map_function(comp.rtl.functions[unit], entry)
        comp.queries[unit] = HLIQuery(entry)


def _ensure_opt_stats(ctx: PassContext):
    if ctx.comp.opt_stats is None:
        from ..backend.passes import OptStats

        ctx.comp.opt_stats = OptStats()
    return ctx.comp.opt_stats


def _fn_opt_stats(ctx: PassContext, unit: str):
    stats = ctx.fn_opt_stats.get(unit)
    if stats is None:
        from ..backend.passes import OptStats

        stats = ctx.fn_opt_stats[unit] = OptStats()
    return stats


def _unroll(ctx: PassContext, unit: str) -> None:
    from ..backend.unroll import run_unroll

    stats = _ensure_opt_stats(ctx)
    use_hli = ctx.opts.mode is not DDGMode.GCC
    # GCC mode consumes no HLI: unrolling is guided by the region
    # header's trip/step, so without a query it is (correctly) a no-op.
    query = ctx.comp.queries.get(unit) if use_hli else None
    entry = ctx.comp.hli.entries.get(unit)
    s = run_unroll(ctx.comp.rtl.functions[unit], ctx.opts.unroll, query=query, entry=entry)
    stats.unroll.merge(s)
    _fn_opt_stats(ctx, unit).unroll.merge(s)


def _cse(ctx: PassContext, unit: str) -> None:
    from ..backend.cse import run_cse

    stats = _ensure_opt_stats(ctx)
    use_hli = ctx.opts.mode is not DDGMode.GCC
    query = ctx.comp.queries.get(unit) if use_hli else None
    entry = ctx.comp.hli.entries.get(unit)
    s = run_cse(ctx.comp.rtl.functions[unit], use_hli=use_hli, query=query, entry=entry)
    stats.cse.merge(s)
    _fn_opt_stats(ctx, unit).cse.merge(s)


def _licm(ctx: PassContext, unit: str) -> None:
    from ..backend.licm import run_licm

    stats = _ensure_opt_stats(ctx)
    use_hli = ctx.opts.mode is not DDGMode.GCC
    query = ctx.comp.queries.get(unit) if use_hli else None
    entry = ctx.comp.hli.entries.get(unit)
    s = run_licm(ctx.comp.rtl.functions[unit], use_hli=use_hli, query=query, entry=entry)
    stats.licm.merge(s)
    _fn_opt_stats(ctx, unit).licm.merge(s)


def _schedule(ctx: PassContext, unit: str) -> None:
    query = ctx.comp.queries.get(unit)
    sched = schedule_function(
        ctx.comp.rtl.functions[unit],
        mode=ctx.opts.mode,
        query=query,
        latency=ctx.opts.latency,
    )
    ctx.comp.dep_stats[unit] = sched.stats


def _lint(ctx: PassContext) -> None:
    from ..checker.lint import lint_compilation

    ctx.comp.lint_report = lint_compilation(ctx.comp)


def rebuild_queries(ctx: PassContext) -> None:
    """The ``"queries"`` artifact rebuilder: fresh indices per unit.

    Called by the pass manager when a pass that declared
    ``invalidates=("queries",)`` ran and a later pass requires them —
    the centrally enforced version of the manual rebuild the old
    ``run_optimizations`` carried.  Only the *active* units rebuild: on
    an incremental recompile, untouched functions' indices are already
    consistent with their (unmutated) cached tables.
    """
    comp = ctx.comp
    for name in ctx.units():
        entry = comp.hli.entries.get(name)
        if entry is not None:
            comp.queries[name] = HLIQuery(entry)


# -- pass registry ------------------------------------------------------------

# Front-end prefix: depends only on (source, filename); cacheable.
_PARSE = Pass("parse", _parse, provides=("ast",), frontend=True)
_HLI_BUILD = Pass(
    "hli-build", _build_hli, requires=("ast",), provides=("hli",), frontend=True
)
_LOWER = Pass("lower", _lower, requires=("ast",), provides=("rtl",), frontend=True)

_MAP = Pass(
    "map",
    _map,
    requires=("hli", "rtl"),
    provides=("mapping", "queries"),
    per_function=True,
)
_SCHEDULE = Pass(
    "schedule",
    _schedule,
    requires=("rtl", "queries"),
    provides=("dep_stats",),
    per_function=True,
)
_LINT = Pass(
    "lint", _lint, requires=("hli", "rtl", "mapping", "queries"), provides=("lint",)
)


def _opt_pass(
    name: str,
    action: Callable,
    opts: "CompileOptions",
    mutates_without_hli: bool = True,
) -> Pass:
    """Instantiate an optimization pass for the current dependence mode.

    In HLI-consuming modes the pass reads ``queries`` and mutates the
    HLI tables, so it both requires and invalidates the query indices.
    In GCC mode no query is consulted, but cse/licm still *maintain* the
    tables when they delete instructions (maintenance is
    mode-independent), so they keep the invalidation; unroll without a
    query is a guaranteed no-op and declares none.
    """
    use_hli = opts.mode is not DDGMode.GCC
    if use_hli:
        return Pass(
            name,
            action,
            requires=("rtl", "mapping", "queries"),
            provides=("opt_stats",),
            invalidates=("queries",),
            per_function=True,
        )
    return Pass(
        name,
        action,
        requires=("rtl", "mapping"),
        provides=("opt_stats",),
        invalidates=("queries",) if mutates_without_hli else (),
        per_function=True,
    )


#: name -> factory(opts) for every pass the pipeline language knows.
_REGISTRY: dict[str, Callable[["CompileOptions"], Pass]] = {
    "parse": lambda opts: _PARSE,
    "hli-build": lambda opts: _HLI_BUILD,
    "lower": lambda opts: _LOWER,
    "map": lambda opts: _MAP,
    "unroll": lambda opts: _opt_pass(
        "unroll", _unroll, opts, mutates_without_hli=False
    ),
    "cse": lambda opts: _opt_pass("cse", _cse, opts),
    "licm": lambda opts: _opt_pass("licm", _licm, opts),
    "schedule": lambda opts: _SCHEDULE,
    "lint": lambda opts: _LINT,
}

#: Every pass name the pipeline language accepts, in canonical order.
KNOWN_PASSES: tuple[str, ...] = tuple(_REGISTRY)


def default_pipeline(opts: "CompileOptions") -> tuple[str, ...]:
    """Derive the pass sequence from the option flags (pipelines are data)."""
    names = ["parse", "hli-build", "lower", "map"]
    if opts.unroll > 1:
        names.append("unroll")
    if opts.cse:
        names.append("cse")
    if opts.licm:
        names.append("licm")
    if opts.schedule:
        names.append("schedule")
    if opts.lint:
        names.append("lint")
    return tuple(names)


def build_pipeline(opts: "CompileOptions") -> list[Pass]:
    """Resolve ``opts.pipeline`` (or the derived default) to pass objects."""
    names = opts.pipeline if opts.pipeline is not None else default_pipeline(opts)
    passes: list[Pass] = []
    for name in names:
        factory = _REGISTRY.get(name)
        if factory is None:
            raise PipelineError(
                f"unknown pass '{name}'; known passes: {', '.join(KNOWN_PASSES)}"
            )
        passes.append(factory(opts))
    return passes


def make_manager(passes) -> PassManager:
    """A PassManager wired with the driver's rebuilders + units provider."""
    return PassManager(
        passes,
        rebuilders={"queries": rebuild_queries},
        units=lambda ctx: ctx.units(),
    )


def run_pipeline(ctx: PassContext) -> None:
    """Assemble and run the full pipeline for ``ctx`` (cold compile)."""
    passes = build_pipeline(ctx.opts)
    manager = make_manager(passes)
    ctx.comp.pipeline_stats = manager.run(ctx)
