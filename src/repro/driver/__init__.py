"""End-to-end drivers: compilation pipeline, timing comparisons, reports."""

from .compile import Compilation, CompileOptions, compile_source
from .timing import BenchTiming, time_benchmark

__all__ = [
    "Compilation",
    "CompileOptions",
    "compile_source",
    "BenchTiming",
    "time_benchmark",
]
