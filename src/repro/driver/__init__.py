"""End-to-end drivers: compilation pipeline, sessions, timing, reports."""

from .compile import Compilation, CompileOptions, compile_source
from .session import (
    CompilationSession,
    SessionStats,
    compile_many,
    default_session,
    parallel_map,
)
from .timing import BenchTiming, time_benchmark

__all__ = [
    "Compilation",
    "CompilationSession",
    "CompileOptions",
    "SessionStats",
    "compile_source",
    "compile_many",
    "default_session",
    "parallel_map",
    "BenchTiming",
    "time_benchmark",
]
