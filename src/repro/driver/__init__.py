"""End-to-end drivers: compilation pipeline, sessions, timing, reports."""

from .compile import Compilation, CompileOptions, compile_source
from .session import (
    CompilationSession,
    CompileJob,
    SessionStats,
    compile_many,
    default_session,
    parallel_map,
)
from .timing import BenchTiming, time_benchmark
from .wpa import WholeProgramResult, compile_whole_program

__all__ = [
    "Compilation",
    "CompilationSession",
    "CompileJob",
    "CompileOptions",
    "SessionStats",
    "WholeProgramResult",
    "compile_source",
    "compile_many",
    "compile_whole_program",
    "default_session",
    "parallel_map",
    "BenchTiming",
    "time_benchmark",
]
