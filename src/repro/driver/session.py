"""Compilation sessions: function-grained artifact caching + parallel fan-out.

The paper's whole premise is *separate compilation*: the front end
writes each source file's HLI once and the back end re-uses it across
builds (Section 3.2.1).  A :class:`CompilationSession` exercises that
story end-to-end — and, since the HLI is a *per-unit* format (one entry
per function), the cache is keyed at **function granularity**:

* a **manifest** blob per (source, filename, front-end fingerprint) —
  the whole file's pristine front-end artifacts, so an unchanged file
  skips parse/HLI-build/lowering entirely (the fast path);
* a **front-end blob** per function, keyed by the chained dependency
  fingerprint of :mod:`repro.driver.incremental` (own span + referenced
  symbol facts + transitive callee REF/MOD), holding the function's HLI
  entry (via :mod:`repro.hli.binio`), its analysis artifacts, and its
  pristine RTL;
* a **back-end blob** per function, keyed by the front-end key plus the
  back-end pass fingerprint and scheduling knobs, holding the
  optimized+scheduled RTL, the maintained HLI entry, and the mapping /
  scheduling statistics — so a warm function skips the back end too.

On a manifest miss the session parses, fingerprints every function, and
splices cached functions around the edited ones: only the invalidated
set (the edited functions plus their transitive callers) is re-built and
re-optimized.  ``Compilation.cache_state`` reports ``"incremental"`` for
such mixed compiles and ``Compilation.fn_cache_states`` breaks the
story down per function.

Cache entries are **verified, not trusted**: a checksum guards every
blob, HLI payloads must decode through the real binio reader, and any
failure (truncation, bit-flips, version skew) degrades to a cold build —
never a crash, never wrong code.  The disk tier shards entries
git-object style (``ab/cdef….hlic``), migrates legacy flat files on
first touch, and enforces an optional size budget by least-recently-used
eviction (``max_disk_bytes``).

``compile_many`` fans a batch out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  With more files than
workers it parallelizes per file (each worker shares the on-disk tier);
with spare workers it parallelizes per *function* — the front ends run
in-process and every invalidated function's back end becomes one pool
task, so parallelism scales with program size rather than file count.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import os
import pickle
import struct
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..analysis.builder import FrontEndInfo, UnitInfo
from ..backend import rtl as _rtl
from ..backend.ddg import DepStats
from ..backend.lowering import lower_program
from ..backend.mapping import MapStats
from ..backend.pm import (
    Pass,
    PipelineStats,
    frontend_fingerprint,
    pipeline_fingerprint,
    split_frontend,
)
from ..backend.rtl import Reg, RTLFunction, RTLProgram
from ..hli.binio import decode_entry, decode_hli, encode_entry, encode_hli
from ..hli.query import HLIQuery
from ..hli.tables import HLIEntry, HLIFile
from ..obs import enabled_scope
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .compile import Compilation, CompileOptions
from .passes import PassContext, build_pipeline, make_manager

__all__ = [
    "CacheCorruption",
    "CompilationSession",
    "SessionStats",
    "cache_key",
    "compile_many",
    "default_session",
    "parallel_map",
    "resolve_workers",
]

#: Bumped whenever the blob layout or any serialized artifact changes.
CACHE_MAGIC = b"HLIC"
CACHE_VERSION = 3  # 3: Symbol grew ``is_extern`` (pickled shape changed)

#: Blob kind tags (part of the frame, so a key collision across kinds
#: can never deserialize through the wrong decoder).
_TAG_MANIFEST = b"MF"
_TAG_FE = b"FE"
_TAG_BE = b"BE"


class CacheCorruption(Exception):
    """A cache entry failed verification (checksum, decode, or shape)."""


@dataclass
class SessionStats:
    """Cache effectiveness counters for one session.

    The first six counters are **file-level** (manifest tier), keeping
    PR-4 semantics: one compile is one hit or one miss.  The ``fn_*``
    and ``be_*`` counters are **function-level** and only move on a
    manifest miss, when the session falls back to per-function lookups:
    ``fn_*`` counts front-end entries (HLI + pristine RTL), ``be_*``
    counts back-end entries (optimized + scheduled RTL).
    """

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    corrupt: int = 0
    evictions: int = 0
    stores: int = 0
    # -- function-level (front-end entries) --
    fn_hits_memory: int = 0
    fn_hits_disk: int = 0
    fn_misses: int = 0
    fn_stores: int = 0
    # -- function-level (back-end entries) --
    be_hits_memory: int = 0
    be_hits_disk: int = 0
    be_misses: int = 0
    be_stores: int = 0
    #: disk-tier entries removed by the ``max_disk_bytes`` LRU budget
    disk_evictions: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def fn_hits(self) -> int:
        return self.fn_hits_memory + self.fn_hits_disk

    @property
    def be_hits(self) -> int:
        return self.be_hits_memory + self.be_hits_disk


# -- content-addressed keys ----------------------------------------------------


def cache_key(
    source: str, filename: str, passes: Sequence[Pass], salt: str = ""
) -> str:
    """Manifest key = hash of source + filename + front-end fingerprint.

    Back-end knobs (dependence mode, latency table, optimization flags)
    are deliberately absent: the front-end artifacts do not depend on
    them, which is exactly what lets ``timing``'s gcc-vs-hli double
    compile share one parse.  Bumping any front-end pass's ``version``
    changes the fingerprint and retires stale entries automatically.

    ``salt`` folds external state the source cannot express into the
    key — the whole-program driver passes a fingerprint of the linked
    cross-module summaries, so per-file and whole-program artifacts for
    the same source never collide (and relinking retires stale entries).
    """
    h = hashlib.sha256()
    h.update(b"repro-hli-cache\x00")
    h.update(struct.pack("<H", CACHE_VERSION))
    h.update(frontend_fingerprint(passes).encode("ascii"))
    h.update(b"\x00")
    h.update(salt.encode("utf-8", "surrogatepass"))
    h.update(b"\x00")
    h.update(filename.encode("utf-8", "surrogatepass"))
    h.update(b"\x00")
    h.update(source.encode("utf-8", "surrogatepass"))
    return h.hexdigest()


def _fe_salt(prefix: Sequence[Pass], filename: str, salt: str = "") -> str:
    """Function-independent part of every per-function front-end key."""
    return f"{CACHE_VERSION}:{pipeline_fingerprint(prefix)}:{filename}:{salt}"


def _be_key(fe_key: str, opts: CompileOptions, backend_fp: str) -> str:
    """Back-end key: front-end key + every knob the back end reads.

    ``backend_fp`` fingerprints the per-function suffix passes (file-only
    passes like ``lint`` excluded — they produce no per-function
    artifact, so toggling them must not duplicate entries).
    """
    h = hashlib.sha256()
    h.update(b"repro-fn-be\x00")
    h.update(struct.pack("<H", CACHE_VERSION))
    h.update(fe_key.encode("ascii"))
    h.update(b"\x00")
    h.update(backend_fp.encode("ascii"))
    h.update(b"\x00")
    h.update(opts.mode.value.encode("ascii"))
    h.update(b"\x00")
    h.update(str(opts.unroll).encode("ascii"))
    h.update(b"\x00")
    h.update(getattr(opts.latency, "__name__", repr(opts.latency)).encode())
    return h.hexdigest()


def _backend_fp(suffix: Sequence[Pass]) -> str:
    return pipeline_fingerprint([p for p in suffix if p.per_function])


# -- blob framing / verified decode -------------------------------------------


def _frame(tag: bytes, payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).digest()
    return CACHE_MAGIC + struct.pack("<H", CACHE_VERSION) + tag + digest + payload


def _unframe(tag: bytes, data: bytes) -> bytes:
    if data[:4] != CACHE_MAGIC:
        raise CacheCorruption("bad magic")
    (version,) = struct.unpack("<H", data[4:6])
    if version != CACHE_VERSION:
        raise CacheCorruption(f"cache version {version} != {CACHE_VERSION}")
    if data[6:8] != tag:
        raise CacheCorruption(f"blob kind {data[6:8]!r} != {tag!r}")
    digest, payload = data[8:40], data[40:]
    if hashlib.sha256(payload).digest() != digest:
        raise CacheCorruption("checksum mismatch")
    return payload


def _w_chunk(out: io.BytesIO, chunk: bytes) -> None:
    out.write(struct.pack("<I", len(chunk)))
    out.write(chunk)


def _r_chunk(payload: bytes, pos: int) -> tuple[bytes, int]:
    (n,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    chunk = payload[pos : pos + n]
    if len(chunk) != n:
        raise CacheCorruption("truncated chunk")
    return chunk, pos + n


@dataclass
class _Manifest:
    """Decoded file-level cache entry: the whole pristine front end."""

    hli: HLIFile
    frontend: FrontEndInfo
    rtl: RTLProgram
    #: function name -> its per-function front-end key (for be lookups)
    fe_keys: dict[str, str]


def _encode_blob(comp: Compilation, fe_keys: Optional[dict[str, str]] = None) -> bytes:
    """Serialize the pristine front-end artifacts of ``comp`` (manifest).

    Must be called right after the front end ran, *before* any back-end
    pass mutates the HLI tables or the RTL.
    """
    hli_bytes = encode_hli(comp.hli)
    # One pickle for (frontend, rtl, fe_keys) so Symbol/AST objects shared
    # between them keep their identity on reload.
    rest = pickle.dumps(
        (comp.frontend, comp.rtl, dict(fe_keys or {})),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    body = io.BytesIO()
    _w_chunk(body, hli_bytes)
    _w_chunk(body, rest)
    return _frame(_TAG_MANIFEST, body.getvalue())


def _decode_blob(data: bytes) -> _Manifest:
    """Verified decode of :func:`_encode_blob` output.

    Raises :class:`CacheCorruption` on *any* defect; never returns a
    partially valid artifact.
    """
    try:
        payload = _unframe(_TAG_MANIFEST, data)
        hli_bytes, pos = _r_chunk(payload, 0)
        rest, _ = _r_chunk(payload, pos)
        hli = decode_hli(bytes(hli_bytes))
        frontend, rtl, fe_keys = pickle.loads(bytes(rest))
        if not isinstance(hli, HLIFile) or not isinstance(rtl, RTLProgram):
            raise CacheCorruption("decoded artifacts have the wrong types")
        if not isinstance(frontend, FrontEndInfo):
            raise CacheCorruption("decoded front-end info has the wrong type")
        if not isinstance(fe_keys, dict) or set(fe_keys) != set(rtl.functions):
            raise CacheCorruption("function key table does not match the RTL")
        _reserve_foreign_ids(rtl.functions.values())
        return _Manifest(hli=hli, frontend=frontend, rtl=rtl, fe_keys=fe_keys)
    except CacheCorruption:
        raise
    except Exception as exc:  # struct errors, pickle errors, binio errors, ...
        raise CacheCorruption(f"{type(exc).__name__}: {exc}") from exc


def _encode_fn_fe(entry: HLIEntry, unit: UnitInfo, fn_rtl: RTLFunction) -> bytes:
    """Serialize one function's pristine front-end artifacts."""
    body = io.BytesIO()
    _w_chunk(body, encode_entry(entry))
    _w_chunk(body, pickle.dumps((unit, fn_rtl), protocol=pickle.HIGHEST_PROTOCOL))
    return _frame(_TAG_FE, body.getvalue())


def _decode_fn_fe(data: bytes) -> tuple[HLIEntry, UnitInfo, RTLFunction]:
    try:
        payload = _unframe(_TAG_FE, data)
        entry_bytes, pos = _r_chunk(payload, 0)
        rest, _ = _r_chunk(payload, pos)
        entry = decode_entry(bytes(entry_bytes))
        unit, fn_rtl = pickle.loads(bytes(rest))
        if not isinstance(unit, UnitInfo) or not isinstance(fn_rtl, RTLFunction):
            raise CacheCorruption("decoded unit artifacts have the wrong types")
        if entry.unit_name != fn_rtl.name:
            raise CacheCorruption("entry / RTL unit-name mismatch")
        _reserve_foreign_ids([fn_rtl])
        return entry, unit, fn_rtl
    except CacheCorruption:
        raise
    except Exception as exc:
        raise CacheCorruption(f"{type(exc).__name__}: {exc}") from exc


def _encode_fn_be(
    fn_rtl: RTLFunction,
    entry: HLIEntry,
    map_stats: Optional[MapStats],
    dep_stats: Optional[DepStats],
    opt_frag,
) -> bytes:
    """Serialize one function's finished back-end artifacts.

    The entry is the *maintained* one (post unroll/cse/licm table
    updates); its generation counter rides alongside so a restored query
    sees exactly the state an in-process compile would have left.
    """
    body = io.BytesIO()
    _w_chunk(body, encode_entry(entry))
    _w_chunk(
        body,
        pickle.dumps(
            (fn_rtl, entry.generation, map_stats, dep_stats, opt_frag),
            protocol=pickle.HIGHEST_PROTOCOL,
        ),
    )
    return _frame(_TAG_BE, body.getvalue())


def _decode_fn_be(data: bytes):
    try:
        payload = _unframe(_TAG_BE, data)
        entry_bytes, pos = _r_chunk(payload, 0)
        rest, _ = _r_chunk(payload, pos)
        entry = decode_entry(bytes(entry_bytes))
        fn_rtl, generation, map_stats, dep_stats, opt_frag = pickle.loads(bytes(rest))
        if not isinstance(fn_rtl, RTLFunction) or entry.unit_name != fn_rtl.name:
            raise CacheCorruption("decoded back-end RTL has the wrong shape")
        if not isinstance(generation, int) or generation < 0:
            raise CacheCorruption("bad entry generation")
        if map_stats is not None and not isinstance(map_stats, MapStats):
            raise CacheCorruption("decoded map stats have the wrong type")
        if dep_stats is not None and not isinstance(dep_stats, DepStats):
            raise CacheCorruption("decoded dep stats have the wrong type")
        if opt_frag is not None:
            from ..backend.passes import OptStats

            if not isinstance(opt_frag, OptStats):
                raise CacheCorruption("decoded opt stats have the wrong type")
        entry.generation = generation
        _reserve_foreign_ids([fn_rtl])
        return fn_rtl, entry, map_stats, dep_stats, opt_frag
    except CacheCorruption:
        raise
    except Exception as exc:
        raise CacheCorruption(f"{type(exc).__name__}: {exc}") from exc


def _reserve_foreign_ids(fns) -> None:
    """Keep fresh reg/insn IDs from colliding with deserialized ones."""
    max_reg = 0
    max_uid = 0
    for fn in fns:
        for reg in fn.param_regs:
            max_reg = max(max_reg, reg.rid)
        if fn.ret_reg is not None:
            max_reg = max(max_reg, fn.ret_reg.rid)
        for insn in fn.insns:
            max_uid = max(max_uid, insn.uid)
            if insn.dst is not None:
                max_reg = max(max_reg, insn.dst.rid)
            for src in insn.srcs:
                if isinstance(src, Reg):
                    max_reg = max(max_reg, src.rid)
            if insn.mem is not None:
                max_reg = max(max_reg, insn.mem.addr.rid)
    _rtl.reserve_ids(max_reg, max_uid)


# -- one prepared compile ------------------------------------------------------


@dataclass
class _Prepared:
    """A compile whose front end is resolved but whose suffix has not run."""

    comp: Compilation
    opts: CompileOptions
    prefix: list[Pass]
    suffix: list[Pass]
    stats: PipelineStats
    fe_keys: dict[str, str]
    #: functions the back-end passes must actually run over
    active: list[str]


# -- the session ---------------------------------------------------------------


#: Distinguishes concurrent same-key temp files within one process (the
#: pid alone is not enough once worker *threads* share a session).
_tmp_ids = itertools.count(1)


class CompilationSession:
    """Cached, optionally parallel compilation over a shared artifact store.

    Safe for concurrent use from multiple threads: the in-memory LRU,
    the :class:`SessionStats` counters, and the disk-budget enforcement
    are all guarded by one reentrant lock (``repro-serve`` hammers one
    session from a worker pool).  The lock is *not* held across pipeline
    work — two threads cold-compiling the same key may both compute and
    both store, which is wasteful but correct (stores are idempotent;
    the daemon's request coalescer removes the waste where it matters).
    """

    def __init__(
        self,
        cache_dir: Optional[str | os.PathLike] = None,
        max_memory_entries: int = 1024,
        max_disk_bytes: Optional[int] = None,
        reuse_backend: bool = True,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = max(0, max_memory_entries)
        self.max_disk_bytes = max_disk_bytes
        #: when False the session serves only front-end artifacts (the
        #: PR-4 whole-file warm path) — the escape hatch benchmarks use
        #: to compare against function-grained reuse
        self.reuse_backend = reuse_backend
        self._memory: OrderedDict[str, bytes] = OrderedDict()
        self.stats = SessionStats()
        #: guards ``_memory``, ``stats``, and the disk-budget sweep
        self._lock = threading.RLock()

    def _bump(self, counter: str, n: int = 1) -> None:
        """Thread-safe increment of one :class:`SessionStats` counter."""
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + n)

    # -- tier plumbing ---------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[Path]:
        """Sharded location (``ab/cdef….hlic``), git-object style."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / key[:2] / f"{key[2:]}.hlic"

    def _flat_path(self, key: str) -> Optional[Path]:
        """Legacy unsharded location; migrated on first touch."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.hlic"

    def _lookup(self, key: str) -> tuple[Optional[bytes], str]:
        """Return ``(blob, tier)``; tier is ``"memory"``, ``"disk"``, or ``""``."""
        with self._lock:
            blob = self._memory.get(key)
            if blob is not None:
                self._memory.move_to_end(key)
                return blob, "memory"
        path = self._disk_path(key)
        if path is None:
            return None, ""
        try:
            blob = path.read_bytes()
        except OSError:
            blob = None
        if blob is None:
            flat = self._flat_path(key)
            try:
                blob = flat.read_bytes()
            except OSError:
                return None, ""
            try:  # migrate the flat entry into the sharded layout
                path.parent.mkdir(exist_ok=True)
                os.replace(flat, path)
            except OSError:
                pass
        try:  # LRU recency for the disk budget
            os.utime(path)
        except OSError:
            pass
        return blob, "disk"

    def _remember(self, key: str, blob: bytes) -> None:
        if self.max_memory_entries == 0:
            return
        with self._lock:
            self._memory[key] = blob
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)
                self.stats.evictions += 1
                _metrics.inc("session.cache.evict")

    def _store(self, key: str, blob: bytes, kind: str = "manifest") -> None:
        if kind == "manifest":
            self._bump("stores")
        elif kind == "fe":
            self._bump("fn_stores")
        else:
            self._bump("be_stores")
        self._remember(key, blob)
        path = self._disk_path(key)
        if path is not None:
            tmp = path.parent / (
                path.name + ".tmp%d.%d" % (os.getpid(), next(_tmp_ids))
            )
            try:
                path.parent.mkdir(exist_ok=True)
                tmp.write_bytes(blob)
                os.replace(tmp, path)
            except OSError:
                # a read-only or full cache dir must never fail the compile
                tmp.unlink(missing_ok=True)
                return
            self._enforce_disk_budget(keep=path)

    def _enforce_disk_budget(self, keep: Optional[Path] = None) -> None:
        """Evict least-recently-used disk entries above ``max_disk_bytes``.

        Serialized under the session lock so two threads finishing
        stores at once do not race the scan and double-evict.
        """
        if self.cache_dir is None or self.max_disk_bytes is None:
            return
        with self._lock:
            self._enforce_disk_budget_locked(keep)

    def _enforce_disk_budget_locked(self, keep: Optional[Path] = None) -> None:
        entries = []
        total = 0
        for p in self.cache_dir.rglob("*.hlic"):
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, str(p), p, st.st_size))
            total += st.st_size
        if total <= self.max_disk_bytes:
            return
        for _, _, p, size in sorted(entries, key=lambda e: (e[0], e[1])):
            if keep is not None and p == keep:
                continue
            try:
                p.unlink()
            except OSError:
                continue
            total -= size
            self.stats.disk_evictions += 1
            _metrics.inc("session.cache.disk_evict")
            if total <= self.max_disk_bytes:
                return

    def _evict_corrupt(self, key: str, tier: str, why: str) -> None:
        self._bump("corrupt")
        _metrics.inc("session.cache.corrupt")
        with self._lock:
            self._memory.pop(key, None)
        if tier == "disk":
            for path in (self._disk_path(key), self._flat_path(key)):
                if path is not None:
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        pass

    # -- compilation -----------------------------------------------------------

    def compile(
        self,
        source: str,
        filename: str = "<input>",
        options: Optional[CompileOptions] = None,
        external_effects: Optional[dict] = None,
        extra_salt: str = "",
    ) -> Compilation:
        """Compile through the cache.

        A manifest hit skips the whole front end; per-function back-end
        hits then skip mapping/optimization/scheduling for every
        unchanged function, so an edit recompiles only the invalidated
        set (the edited functions plus their transitive callers).

        ``external_effects``/``extra_salt`` support whole-program mode:
        the effects feed the HLI builder and the salt keys the cached
        artifacts to the link state they were built under (callers must
        derive the salt from the effects — the session only hashes it).
        """
        opts = options or CompileOptions()
        passes = build_pipeline(opts)
        prefix, suffix = split_frontend(passes)
        if not prefix:  # nothing cacheable in this pipeline
            from .compile import compile_source

            return compile_source(source, filename, opts, external_effects)
        key = cache_key(source, filename, passes, salt=extra_salt)
        with enabled_scope(opts.trace):
            with _trace.span(
                "session.compile", file=filename, mode=opts.mode.value
            ) as span:
                prep = self._prepare(
                    key,
                    source,
                    filename,
                    opts,
                    prefix,
                    suffix,
                    external_effects=external_effects,
                    extra_salt=extra_salt,
                )
                self._run_suffix(prep)
                span.set(cache=prep.comp.cache_state)
                return prep.comp

    def _prepare(
        self,
        key,
        source,
        filename,
        opts,
        prefix,
        suffix,
        external_effects=None,
        extra_salt="",
    ) -> _Prepared:
        """Resolve the front end (cache or compile) and splice the back end."""
        blob, tier = self._lookup(key)
        man = None
        if blob is not None:
            try:
                man = _decode_blob(blob)
            except CacheCorruption as exc:
                self._evict_corrupt(key, tier, str(exc))
        if man is not None:
            if tier == "memory":
                self._bump("hits_memory")
            else:
                self._bump("hits_disk")
                self._remember(key, blob)
            _metrics.inc("session.cache.hit", tier)
            comp = Compilation(
                source=source,
                filename=filename,
                hli=man.hli,
                frontend=man.frontend,
                rtl=man.rtl,
                options=opts,
                cache_state=tier,
                external_effects=external_effects,
            )
            stats = PipelineStats(cached_prefix=tuple(p.name for p in prefix))
            fe_keys = man.fe_keys
            fn_states = {name: f"fe:{tier}" for name in man.rtl.functions}
        else:
            self._bump("misses")
            _metrics.inc("session.cache.miss")
            comp, stats, fe_keys, fn_states = self._frontend_incremental(
                key,
                source,
                filename,
                opts,
                prefix,
                external_effects=external_effects,
                extra_salt=extra_salt,
            )
        active = self._splice_backend(comp, fe_keys, opts, suffix, fn_states)
        comp.fn_cache_states = fn_states
        return _Prepared(
            comp=comp,
            opts=opts,
            prefix=list(prefix),
            suffix=list(suffix),
            stats=stats,
            fe_keys=fe_keys,
            active=active,
        )

    def _frontend_incremental(
        self,
        key,
        source,
        filename,
        opts,
        prefix,
        external_effects=None,
        extra_salt="",
    ):
        """Manifest miss: rebuild only the functions whose keys changed.

        Parses (unavoidable — fingerprints need the checked AST), then
        serves each function's HLI entry + pristine RTL from the
        per-function tier where the chained fingerprint still matches,
        building only the invalidated rest.  Pristine artifacts are
        stored *before* the back end runs, so later edits can splice
        around this compile's functions.
        """
        from ..analysis.builder import HLIBuilder
        from ..frontend import parse_and_check
        from .incremental import function_keys

        comp = Compilation(
            source=source,
            filename=filename,
            options=opts,
            external_effects=external_effects,
        )
        stats = PipelineStats()
        program, table = parse_and_check(source, filename)
        stats.passes_run.append("parse")
        builder = HLIBuilder(program, table, external_effects=external_effects)
        keys = function_keys(
            source,
            program,
            table,
            builder.pts,
            builder.refmod,
            salt=_fe_salt(prefix, filename, extra_salt),
        )
        hli = HLIFile(source_filename=program.filename)
        frontend = builder.frontend_info()
        cached_rtl: dict[str, RTLFunction] = {}
        fn_states: dict[str, str] = {}
        fresh: list[str] = []
        any_hit = False
        with _trace.span("analysis.build_hli", file=filename):
            for fn in program.functions:
                fe_key = keys.fe[fn.name]
                blob, tier = self._lookup(fe_key)
                decoded = None
                if blob is not None:
                    try:
                        decoded = _decode_fn_fe(blob)
                    except CacheCorruption as exc:
                        self._evict_corrupt(fe_key, tier, str(exc))
                if decoded is not None:
                    entry, unit, fn_rtl = decoded
                    entry.filename = program.filename
                    if tier == "memory":
                        self._bump("fn_hits_memory")
                    else:
                        self._bump("fn_hits_disk")
                        self._remember(fe_key, blob)
                    _metrics.inc("session.cache.fn_hit", tier)
                    cached_rtl[fn.name] = fn_rtl
                    fn_states[fn.name] = f"fe:{tier}"
                    any_hit = True
                else:
                    self._bump("fn_misses")
                    _metrics.inc("session.cache.fn_miss")
                    entry, unit = builder.build_unit(fn)
                    fn_states[fn.name] = "cold"
                    fresh.append(fn.name)
                hli.add(entry)
                frontend.units[fn.name] = unit
        stats.passes_run.append("hli-build")
        rtl = lower_program(program, table, cached=cached_rtl)
        stats.passes_run.append("lower")
        comp.hli, comp.frontend, comp.rtl = hli, frontend, rtl
        comp.cache_state = "incremental" if any_hit else "cold"
        # Store pristine artifacts before any back-end pass mutates them.
        with _trace.span("session.cache.store", fresh=len(fresh)):
            for name in fresh:
                self._store(
                    keys.fe[name],
                    _encode_fn_fe(hli.entries[name], frontend.units[name],
                                  rtl.functions[name]),
                    kind="fe",
                )
            self._store(key, _encode_blob(comp, keys.fe), kind="manifest")
        return comp, stats, dict(keys.fe), fn_states

    def _splice_backend(self, comp, fe_keys, opts, suffix, fn_states) -> list[str]:
        """Restore finished back-end artifacts; return the still-active set."""
        order = list(comp.rtl.functions)
        if not self.reuse_backend or not any(p.per_function for p in suffix):
            return order
        backend_fp = _backend_fp(suffix)
        active: list[str] = []
        for name in order:
            fe_key = fe_keys.get(name)
            bkey = _be_key(fe_key, opts, backend_fp) if fe_key is not None else None
            decoded = None
            tier = ""
            if bkey is not None:
                blob, tier = self._lookup(bkey)
                if blob is not None:
                    try:
                        decoded = _decode_fn_be(blob)
                    except CacheCorruption as exc:
                        self._evict_corrupt(bkey, tier, str(exc))
            if decoded is None:
                self._bump("be_misses")
                _metrics.inc("session.cache.be_miss")
                active.append(name)
                continue
            if tier == "memory":
                self._bump("be_hits_memory")
            else:
                self._bump("be_hits_disk")
                self._remember(bkey, blob)
            _metrics.inc("session.cache.be_hit", tier)
            self._install_be(comp, name, decoded)
            fn_states[name] = f"be:{tier}"
        return active

    def _install_be(self, comp: Compilation, name: str, decoded) -> None:
        """Splice one function's finished back-end artifacts into ``comp``.

        The frame metadata is taken from the *current* pristine function
        — the lowering splice already laid it out for this program, and
        deterministic storage naming guarantees slot-for-slot agreement
        — so the restored RTL is consistent with the rest of the file.
        """
        fn_rtl, entry, map_stats, dep_stats, opt_frag = decoded
        pristine = comp.rtl.functions[name]
        fn_rtl.frame = dict(pristine.frame)
        fn_rtl.frame_size = pristine.frame_size
        comp.rtl.functions[name] = fn_rtl
        entry.filename = comp.hli.source_filename or comp.filename
        comp.hli.entries[name] = entry
        comp.queries[name] = HLIQuery(entry)
        if map_stats is not None:
            comp.map_stats[name] = map_stats
        if dep_stats is not None:
            comp.dep_stats[name] = dep_stats
        if opt_frag is not None:
            if comp.opt_stats is None:
                from ..backend.passes import OptStats

                comp.opt_stats = OptStats()
            comp.opt_stats.cse.merge(opt_frag.cse)
            comp.opt_stats.licm.merge(opt_frag.licm)
            comp.opt_stats.unroll.merge(opt_frag.unroll)

    def _run_suffix(self, prep: _Prepared) -> None:
        """Run the back-end suffix over the active units, then store them."""
        ctx = PassContext(comp=prep.comp, opts=prep.opts, active_units=prep.active)
        initial = sorted({a for p in prep.prefix for a in p.provides})
        make_manager(prep.suffix).run(ctx, initial=initial, stats=prep.stats)
        prep.comp.pipeline_stats = prep.stats
        self._store_backend(prep, ctx)

    def _store_backend(self, prep: _Prepared, ctx: PassContext) -> None:
        if not self.reuse_backend or not prep.active:
            return
        if not any(p.per_function for p in prep.suffix):
            return
        comp = prep.comp
        backend_fp = _backend_fp(prep.suffix)
        for name in prep.active:
            entry = comp.hli.entries.get(name)
            fn = comp.rtl.functions.get(name)
            fe_key = prep.fe_keys.get(name)
            if entry is None or fn is None or fe_key is None:
                continue
            blob = _encode_fn_be(
                fn,
                entry,
                comp.map_stats.get(name),
                comp.dep_stats.get(name),
                ctx.fn_opt_stats.get(name),
            )
            self._store(_be_key(fe_key, prep.opts, backend_fp), blob, kind="be")

    # -- batch / parallel ------------------------------------------------------

    def compile_many(
        self,
        jobs: Sequence[tuple],
        max_workers: Optional[int] = None,
        granularity: str = "auto",
    ) -> list[Compilation]:
        """Compile a batch of ``(source, filename[, options])`` jobs.

        Fan-out happens at one of two granularities:

        * ``"file"`` — one pool task per job; every worker process runs
          the whole pipeline and shares this session's on-disk tier (the
          in-memory tier is per-process).
        * ``"function"`` — the front ends run in this process (through
          the cache) and every *invalidated function's* back end becomes
          one pool task, so a single large file still saturates the pool.

        ``"auto"`` picks per-function when there are spare workers
        (fewer jobs than workers), per-file otherwise.  Results come
        back in job order.  ``max_workers=None`` uses
        :func:`resolve_workers` (the ``REPRO_JOBS`` environment
        variable, else one worker per core).
        """
        normalized = [_normalize_job(j) for j in jobs]
        if not normalized:
            return []
        if granularity not in ("auto", "file", "function"):
            raise ValueError("granularity must be 'auto', 'file', or 'function'")
        cap = resolve_workers(max_workers, 1 << 30)
        if granularity == "auto":
            granularity = "function" if len(normalized) < cap else "file"
        if cap <= 1:
            return [self.compile(*job) for job in normalized]
        if granularity == "function":
            return self._compile_many_functions(normalized, cap)
        workers = min(cap, len(normalized))
        if workers <= 1:
            return [self.compile(*job) for job in normalized]
        from concurrent.futures import ProcessPoolExecutor

        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        with _trace.span("session.compile_many", jobs=len(normalized), workers=workers):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_compile_worker, cache_dir, src, fname, opts)
                    for src, fname, opts in normalized
                ]
                results = [f.result() for f in futures]
        for comp in results:
            if comp.cache_state == "memory":
                self._bump("hits_memory")
            elif comp.cache_state == "disk":
                self._bump("hits_disk")
            else:
                self._bump("misses")
            _metrics.inc("session.cache.fanout", comp.cache_state or "cold")
        return results

    def _compile_many_functions(self, normalized, cap: int) -> list[Compilation]:
        """Function-granularity fan-out: one pool task per invalidated fn."""
        from .compile import compile_source

        preps: list[Optional[_Prepared]] = []
        results: list[Optional[Compilation]] = [None] * len(normalized)
        with _trace.span(
            "session.compile_many",
            jobs=len(normalized),
            workers=cap,
            granularity="function",
        ):
            for idx, (src, fname, options) in enumerate(normalized):
                opts = options or CompileOptions()
                passes = build_pipeline(opts)
                prefix, suffix = split_frontend(passes)
                if not prefix:
                    results[idx] = compile_source(src, fname, opts)
                    preps.append(None)
                    continue
                key = cache_key(src, fname, passes)
                preps.append(self._prepare(key, src, fname, opts, prefix, suffix))
            tasks: list[tuple[int, str]] = []
            payloads: list[bytes] = []
            for idx, prep in enumerate(preps):
                if prep is None:
                    continue
                has_per_fn = any(p.per_function for p in prep.suffix)
                for name in prep.active:
                    if not has_per_fn:
                        continue
                    payloads.append(
                        _encode_fn_task(prep.comp, name, prep.opts)
                    )
                    tasks.append((idx, name))
            if payloads:
                from concurrent.futures import ProcessPoolExecutor

                workers = min(cap, len(payloads))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    blobs = list(pool.map(_backend_fn_worker, payloads))
            else:
                blobs = []
            for (idx, name), blob in zip(tasks, blobs):
                prep = preps[idx]
                self._install_be(prep.comp, name, _decode_fn_be(blob))
                if self.reuse_backend:
                    self._store(
                        _be_key(prep.fe_keys[name], prep.opts,
                                _backend_fp(prep.suffix)),
                        blob,
                        kind="be",
                    )
            for idx, prep in enumerate(preps):
                if prep is None:
                    continue
                worker_fns = [name for (j, name) in tasks if j == idx]
                # Per-function passes already ran in the pool; run the
                # suffix over zero units so file-level passes (lint) and
                # artifact bookkeeping still execute in order.
                ctx = PassContext(comp=prep.comp, opts=prep.opts, active_units=[])
                initial = sorted({a for p in prep.prefix for a in p.provides})
                make_manager(prep.suffix).run(ctx, initial=initial, stats=prep.stats)
                for p in prep.suffix:
                    if p.per_function:
                        prep.stats.function_runs[p.name] = list(worker_fns)
                prep.comp.pipeline_stats = prep.stats
                results[idx] = prep.comp
                _metrics.inc("session.cache.fanout", prep.comp.cache_state or "cold")
        return results


def _normalize_job(job: tuple) -> tuple[str, str, Optional[CompileOptions]]:
    if len(job) == 2:
        return (job[0], job[1], None)
    if len(job) == 3:
        return (job[0], job[1], job[2])
    raise ValueError("compile_many job must be (source, filename[, options])")


def _encode_fn_task(comp: Compilation, name: str, opts: CompileOptions) -> bytes:
    """Self-contained payload for one function's back-end pool task."""
    return pickle.dumps(
        (
            comp.filename,
            name,
            comp.rtl.functions[name],
            encode_entry(comp.hli.entries[name]),
            opts,
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _backend_fn_worker(payload: bytes) -> bytes:
    """Run the per-function back-end passes for one function, standalone.

    The result is a verified back-end blob — the parent both splices it
    into the compilation and stores it in the cache byte-for-byte.
    """
    fname, name, fn_rtl, entry_bytes, opts = pickle.loads(payload)
    entry = decode_entry(entry_bytes)
    entry.filename = fname
    _reserve_foreign_ids([fn_rtl])
    hli = HLIFile(source_filename=fname)
    hli.add(entry)
    comp = Compilation(
        source="",
        filename=fname,
        hli=hli,
        rtl=RTLProgram(functions={name: fn_rtl}),
        options=opts,
    )
    ctx = PassContext(comp=comp, opts=opts, active_units=[name])
    prefix, suffix = split_frontend(build_pipeline(opts))
    per_fn = [p for p in suffix if p.per_function]
    initial = sorted({a for p in prefix for a in p.provides})
    make_manager(per_fn).run(ctx, initial=initial)
    return _encode_fn_be(
        comp.rtl.functions[name],
        entry,
        comp.map_stats.get(name),
        comp.dep_stats.get(name),
        ctx.fn_opt_stats.get(name),
    )


#: Per-worker-process sessions, keyed by cache dir (fork-safe lazily built).
_WORKER_SESSIONS: dict[Optional[str], CompilationSession] = {}


def _worker_session(cache_dir: Optional[str]) -> CompilationSession:
    sess = _WORKER_SESSIONS.get(cache_dir)
    if sess is None:
        sess = _WORKER_SESSIONS[cache_dir] = CompilationSession(cache_dir=cache_dir)
    return sess


def _compile_worker(
    cache_dir: Optional[str],
    source: str,
    filename: str,
    options: Optional[CompileOptions],
) -> Compilation:
    return _worker_session(cache_dir).compile(source, filename, options)


# -- generic fan-out -----------------------------------------------------------


def resolve_workers(requested: Optional[int], n_items: int) -> int:
    """Worker-count policy shared by every fan-out entry point.

    ``requested`` semantics: ``None`` → the ``REPRO_JOBS`` environment
    variable if set, else one per core; ``0`` → one per core; anything
    else is taken literally.  Always capped by ``n_items``.
    """
    if requested is None:
        env = os.environ.get("REPRO_JOBS", "")
        requested = int(env) if env.isdigit() and env != "" else 0
    if requested <= 0:
        requested = os.cpu_count() or 1
    return max(1, min(requested, n_items))


def parallel_map(fn, items: Sequence, max_workers: Optional[int] = None) -> list:
    """Order-preserving process-pool map with a serial single-worker path.

    ``fn`` must be a module-level (picklable) callable.
    """
    items = list(items)
    workers = resolve_workers(max_workers, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]


def compile_many(
    jobs: Sequence[tuple],
    max_workers: Optional[int] = None,
    session: Optional[CompilationSession] = None,
    granularity: str = "auto",
) -> list[Compilation]:
    """Module-level convenience: batch compile via ``session`` (or the default)."""
    sess = session if session is not None else default_session()
    return sess.compile_many(jobs, max_workers=max_workers, granularity=granularity)


# -- the default session -------------------------------------------------------

_DEFAULT: Optional[CompilationSession] = None


def default_session() -> CompilationSession:
    """Process-wide session (in-memory tier; ``REPRO_CACHE_DIR`` adds disk,
    ``REPRO_CACHE_MAX_BYTES`` bounds it)."""
    global _DEFAULT
    if _DEFAULT is None:
        env_max = os.environ.get("REPRO_CACHE_MAX_BYTES", "")
        _DEFAULT = CompilationSession(
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
            max_memory_entries=512,
            max_disk_bytes=int(env_max) if env_max.isdigit() else None,
        )
    return _DEFAULT


def reset_default_session() -> None:
    """Drop the process-wide session (tests use this for isolation)."""
    global _DEFAULT
    _DEFAULT = None
