"""Compilation sessions: function-grained artifact caching + parallel fan-out.

The paper's whole premise is *separate compilation*: the front end
writes each source file's HLI once and the back end re-uses it across
builds (Section 3.2.1).  A :class:`CompilationSession` exercises that
story end-to-end — and, since the HLI is a *per-unit* format (one entry
per function), the cache is keyed at **function granularity**:

* a **manifest** blob per (source, filename, front-end fingerprint) —
  a fixed-layout key table (function name, front-end key, frame layout)
  plus the file-level leftovers (globals layout, init data) and the
  whole-file front-end info as one *lazily decoded* chunk.  The
  manifest holds **no function bodies**: a warm compile restores every
  function straight from its per-function blob, so the manifest decode
  is a few key-table reads, not a whole-program deserialization;
* a **front-end blob** per function, keyed by the chained dependency
  fingerprint of :mod:`repro.driver.incremental` (own span + referenced
  symbol facts + transitive callee REF/MOD), holding the function's HLI
  entry (via :mod:`repro.hli.binio`), its analysis artifacts, and its
  pristine RTL;
* a **back-end blob** per function, keyed by the front-end key plus the
  back-end pass fingerprint and scheduling knobs, holding the
  optimized+scheduled RTL, the maintained HLI entry, the mapping /
  scheduling statistics, **and the function's analysis unit** — so a
  warm function skips the back end *without ever touching the
  front-end tier*.

All payloads beyond the raw binio tables ride the self-describing
:mod:`repro.binfmt` codec — **no pickle anywhere**: a corrupted or
malicious blob can only ever produce registered types or a clean
:class:`CacheCorruption`.  The codec registry's fingerprint is stamped
into every frame header *and* folded into every cache key, so a codec
change retires stale blobs by eviction instead of decode errors.

On a manifest miss the session parses, fingerprints every function, and
splices cached functions around the edited ones — probing the back-end
tier *first* (a function whose fingerprint and knobs both match needs
no front-end restore at all), then the front-end tier, rebuilding only
the invalidated rest.  ``Compilation.cache_state`` reports
``"incremental"`` for such mixed compiles and
``Compilation.fn_cache_states`` breaks the story down per function.

Cache entries are **verified, not trusted**: a checksum guards every
blob, HLI payloads must decode through the real binio reader, and any
failure (truncation, bit-flips, version skew, codec-fingerprint skew)
degrades to a cold build — never a crash, never wrong code.  The disk
tier shards entries git-object style (``ab/cdef….hlic``), migrates
legacy flat files on first touch, and enforces an optional size budget
by least-recently-used eviction (``max_disk_bytes``).

``compile_many`` fans a batch out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  With more files than
workers it parallelizes per file (each worker shares the on-disk tier);
with spare workers it parallelizes per *function* — the front ends run
in-process and every invalidated function's back end becomes one pool
task, so parallelism scales with program size rather than file count.
"""

from __future__ import annotations

import hashlib
import io
import itertools
import os
import struct
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from .. import binfmt as _binfmt
from ..analysis.builder import FrontEndInfo, UnitInfo
from ..backend.ddg import DepStats
from ..backend.lowering import lower_program
from ..backend.mapping import MapStats
from ..backend.pm import (
    Pass,
    PipelineStats,
    frontend_fingerprint,
    pipeline_fingerprint,
    split_frontend,
)
from ..backend.rtl import RTLFunction, RTLProgram
from ..hli.binio import decode_entry, encode_entry
from ..hli.query import HLIQuery
from ..hli.tables import HLIEntry, HLIFile
from ..obs import enabled_scope
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .compile import Compilation, CompileOptions
from .passes import PassContext, build_pipeline, make_manager

__all__ = [
    "CacheCorruption",
    "CompilationSession",
    "CompileJob",
    "SessionStats",
    "cache_key",
    "compile_many",
    "default_session",
    "parallel_map",
    "resolve_workers",
]


@dataclass(frozen=True)
class CompileJob:
    """One ``compile_many`` / ``compile_partitions`` work item.

    The bare-tuple contract ``(source, filename[, options])`` predates
    whole-program mode and cannot carry the linker's ``external_effects``
    or the link-salted ``extra_salt`` — this dataclass is the typed
    replacement (tuples are still accepted for backward compatibility).
    Effect sets contain only :class:`~repro.analysis.refmod.ForeignObject`
    markers and the interned ``TOP`` string by adapter construction, so a
    job crosses process-pool boundaries intact.
    """

    source: str
    filename: str = "<input>"
    options: Optional[CompileOptions] = None
    external_effects: Optional[dict] = None
    extra_salt: str = ""

#: Bumped whenever the blob layout or any serialized artifact changes.
CACHE_MAGIC = b"HLIC"
CACHE_VERSION = 4  # 4: zero-pickle binfmt payloads, key-table manifest

#: First 8 bytes of the binfmt registry fingerprint, stamped into every
#: frame header: a codec change (new field, reordered type) makes every
#: existing blob *evict* instead of mis-decoding.  The full fingerprint
#: is also folded into the cache keys, so skew normally shows up as a
#: clean miss; the header check catches key-less probes and hand-edited
#: stores.
_CODEC_FP = bytes.fromhex(_binfmt.fingerprint()[:16])

#: Blob kind tags (part of the frame, so a key collision across kinds
#: can never deserialize through the wrong decoder).
_TAG_MANIFEST = b"MF"
_TAG_FE = b"FE"
_TAG_BE = b"BE"


class CacheCorruption(Exception):
    """A cache entry failed verification (checksum, decode, or shape)."""


@dataclass
class SessionStats:
    """Cache effectiveness counters for one session.

    The first six counters are **file-level** (manifest tier), keeping
    PR-4 semantics: one compile is one hit or one miss.  The ``fn_*``
    and ``be_*`` counters are **function-level**: ``fn_*`` counts
    front-end entries (HLI + pristine RTL), ``be_*`` counts back-end
    entries (optimized + scheduled RTL).  Function-level counters move
    on *every* compile — a manifest hit restores each function from the
    back-end tier first, so a fully warm compile shows one manifest hit
    plus one ``be_hits_*`` per function (and no ``fn_*`` traffic at
    all).  The ``*_decodes`` counters count successful payload decodes:
    ``frontend_decodes`` in particular stays **zero** on the warm path —
    the manifest's front-end chunk only decodes when a consumer actually
    reads ``Compilation.frontend``.
    """

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    corrupt: int = 0
    evictions: int = 0
    stores: int = 0
    # -- function-level (front-end entries) --
    fn_hits_memory: int = 0
    fn_hits_disk: int = 0
    fn_misses: int = 0
    fn_stores: int = 0
    # -- function-level (back-end entries) --
    be_hits_memory: int = 0
    be_hits_disk: int = 0
    be_misses: int = 0
    be_stores: int = 0
    #: disk-tier entries removed by the ``max_disk_bytes`` LRU budget
    disk_evictions: int = 0
    # -- decode-level (how much deserialization actually happened) --
    fe_decodes: int = 0
    be_decodes: int = 0
    #: lazy manifest front-end chunks materialized on attribute access
    frontend_decodes: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def fn_hits(self) -> int:
        return self.fn_hits_memory + self.fn_hits_disk

    @property
    def be_hits(self) -> int:
        return self.be_hits_memory + self.be_hits_disk


# -- content-addressed keys ----------------------------------------------------


def cache_key(
    source: str, filename: str, passes: Sequence[Pass], salt: str = ""
) -> str:
    """Manifest key = hash of source + filename + front-end fingerprint.

    Back-end knobs (dependence mode, latency table, optimization flags)
    are deliberately absent: the front-end artifacts do not depend on
    them, which is exactly what lets ``timing``'s gcc-vs-hli double
    compile share one parse.  Bumping any front-end pass's ``version``
    changes the fingerprint and retires stale entries automatically —
    and so does any change to the binfmt codec registry, whose
    fingerprint is folded in here.

    ``salt`` folds external state the source cannot express into the
    key — the whole-program driver passes a fingerprint of the linked
    cross-module summaries, so per-file and whole-program artifacts for
    the same source never collide (and relinking retires stale entries).
    """
    h = hashlib.sha256()
    h.update(b"repro-hli-cache\x00")
    h.update(struct.pack("<H", CACHE_VERSION))
    h.update(_binfmt.fingerprint().encode("ascii"))
    h.update(b"\x00")
    h.update(frontend_fingerprint(passes).encode("ascii"))
    h.update(b"\x00")
    h.update(salt.encode("utf-8", "surrogatepass"))
    h.update(b"\x00")
    h.update(filename.encode("utf-8", "surrogatepass"))
    h.update(b"\x00")
    h.update(source.encode("utf-8", "surrogatepass"))
    return h.hexdigest()


def _fe_salt(prefix: Sequence[Pass], filename: str, salt: str = "") -> str:
    """Function-independent part of every per-function front-end key."""
    return (
        f"{CACHE_VERSION}:{_binfmt.fingerprint()}:"
        f"{pipeline_fingerprint(prefix)}:{filename}:{salt}"
    )


def _be_key(fe_key: str, opts: CompileOptions, backend_fp: str) -> str:
    """Back-end key: front-end key + every knob the back end reads.

    ``backend_fp`` fingerprints the per-function suffix passes (file-only
    passes like ``lint`` excluded — they produce no per-function
    artifact, so toggling them must not duplicate entries).
    """
    h = hashlib.sha256()
    h.update(b"repro-fn-be\x00")
    h.update(struct.pack("<H", CACHE_VERSION))
    h.update(_binfmt.fingerprint().encode("ascii"))
    h.update(b"\x00")
    h.update(fe_key.encode("ascii"))
    h.update(b"\x00")
    h.update(backend_fp.encode("ascii"))
    h.update(b"\x00")
    h.update(opts.mode.value.encode("ascii"))
    h.update(b"\x00")
    h.update(str(opts.unroll).encode("ascii"))
    h.update(b"\x00")
    h.update(getattr(opts.latency, "__name__", repr(opts.latency)).encode())
    return h.hexdigest()


def _backend_fp(suffix: Sequence[Pass]) -> str:
    return pipeline_fingerprint([p for p in suffix if p.per_function])


# -- blob framing / verified decode -------------------------------------------
#
# Frame layout (48-byte header, everything little-endian):
#
#   offset  size  field
#        0     4  magic ``HLIC``
#        4     2  CACHE_VERSION (``<H``)
#        6     8  binfmt registry fingerprint (first 8 raw bytes)
#       14     2  kind tag (``MF`` / ``FE`` / ``BE``)
#       16    32  SHA-256 of the payload
#       48     …  payload
#
# The fingerprint sits *outside* the checksum-covered payload: a codec
# mismatch is detected before any payload bytes are interpreted.


def _frame(tag: bytes, payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).digest()
    return (
        CACHE_MAGIC
        + struct.pack("<H", CACHE_VERSION)
        + _CODEC_FP
        + tag
        + digest
        + payload
    )


def _unframe(tag: bytes, data: bytes) -> bytes:
    if data[:4] != CACHE_MAGIC:
        raise CacheCorruption("bad magic")
    (version,) = struct.unpack("<H", data[4:6])
    if version != CACHE_VERSION:
        raise CacheCorruption(f"cache version {version} != {CACHE_VERSION}")
    if data[6:14] != _CODEC_FP:
        raise CacheCorruption("codec fingerprint mismatch")
    if data[14:16] != tag:
        raise CacheCorruption(f"blob kind {data[14:16]!r} != {tag!r}")
    digest, payload = data[16:48], data[48:]
    if hashlib.sha256(payload).digest() != digest:
        raise CacheCorruption("checksum mismatch")
    return payload


def _w_chunk(out: io.BytesIO, chunk: bytes) -> None:
    out.write(struct.pack("<I", len(chunk)))
    out.write(chunk)


def _r_chunk(payload: bytes, pos: int) -> tuple[bytes, int]:
    (n,) = struct.unpack_from("<I", payload, pos)
    pos += 4
    chunk = payload[pos : pos + n]
    if len(chunk) != n:
        raise CacheCorruption("truncated chunk")
    return chunk, pos + n


class _LazyFrontEnd(FrontEndInfo):
    """A :class:`FrontEndInfo` that decodes itself on first field access.

    The manifest carries the whole-file front-end info as one encoded
    chunk; nothing on the warm path reads it (the per-function blobs
    carry everything the back end needs), so the decode cost — the
    single largest deserialization in the old manifest format — is
    deferred until a consumer (the serve wire, reports, whole-program
    linking) actually touches ``program`` / ``table`` / ``units`` / ….
    """

    def __getstate__(self):
        # Compilations cross process-pool boundaries (file-granularity
        # fan-out); the stats callback must not travel — the blob does,
        # so the receiver stays lazy.
        state = dict(self.__dict__)
        state.pop("_lazy_notify", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        blob = self.__dict__.pop("_lazy_blob", None)
        if blob is None:
            raise AttributeError(name)
        notify = self.__dict__.pop("_lazy_notify", None)
        real = _binfmt.decode(blob)
        if not isinstance(real, FrontEndInfo):
            raise CacheCorruption("manifest front-end chunk has the wrong type")
        self.__dict__.update(real.__dict__)
        if notify is not None:
            notify()
        try:
            return self.__dict__[name]
        except KeyError:
            raise AttributeError(name) from None


def _lazy_frontend(blob: bytes, notify) -> FrontEndInfo:
    fe = FrontEndInfo.__new__(_LazyFrontEnd)
    fe.__dict__["_lazy_blob"] = blob
    fe.__dict__["_lazy_notify"] = notify
    return fe


@dataclass
class _Manifest:
    """Decoded file-level cache entry: the per-function key table.

    No function bodies live here — every function restores from its own
    per-function blob.  The manifest contributes what those blobs cannot
    know: the file-level globals layout / init data, each function's
    frame layout *in this file* (per-function blobs are shared across
    files, so their recorded frames may belong to a different program
    order), and the front-end info chunk, kept encoded until someone
    reads it.
    """

    source_filename: str
    #: function name -> its per-function front-end key (hex)
    fe_keys: dict[str, str]
    #: function name -> frame slot name -> (address, raw size)
    frames: dict[str, dict[str, tuple[int, int]]]
    frame_sizes: dict[str, int]
    globals_layout: dict[str, tuple[int, int]]
    init_data: dict[int, object]
    #: encoded :class:`FrontEndInfo`, decoded lazily via :class:`_LazyFrontEnd`
    frontend_blob: bytes


def _encode_manifest(comp: Compilation, fe_keys: dict[str, str]) -> bytes:
    """Serialize the file-level manifest for ``comp``.

    Must be called right after the front end ran, *before* any back-end
    pass mutates the RTL frames.
    """
    kt = io.BytesIO()
    fns = comp.rtl.functions
    kt.write(struct.pack("<I", len(fns)))
    for name, fn in fns.items():
        nb = name.encode("utf-8")
        kt.write(struct.pack("<H", len(nb)))
        kt.write(nb)
        kt.write(bytes.fromhex(fe_keys[name]))
        kt.write(struct.pack("<IH", fn.frame_size, len(fn.frame)))
        for slot, (addr, size) in fn.frame.items():
            sb = slot.encode("utf-8")
            kt.write(struct.pack("<H", len(sb)))
            kt.write(sb)
            kt.write(struct.pack("<qI", addr, size))
    body = io.BytesIO()
    _w_chunk(body, kt.getvalue())
    _w_chunk(
        body,
        _binfmt.encode(
            (comp.hli.source_filename, comp.rtl.globals_layout, comp.rtl.init_data)
        ),
    )
    _w_chunk(body, _binfmt.encode(comp.frontend))
    return _frame(_TAG_MANIFEST, body.getvalue())


def _decode_manifest(data: bytes) -> _Manifest:
    """Verified decode of :func:`_encode_manifest` output.

    Parses the fixed-layout key table and the small file-level chunk;
    the front-end chunk is *not* decoded here — it rides along encoded.
    Raises :class:`CacheCorruption` on any defect.
    """
    try:
        payload = _unframe(_TAG_MANIFEST, data)
        kt, pos = _r_chunk(payload, 0)
        file_chunk, pos = _r_chunk(payload, pos)
        frontend_blob, pos = _r_chunk(payload, pos)
        if pos != len(payload):
            raise CacheCorruption("trailing bytes after manifest chunks")
        fe_keys: dict[str, str] = {}
        frames: dict[str, dict[str, tuple[int, int]]] = {}
        frame_sizes: dict[str, int] = {}
        kpos = 0
        (count,) = struct.unpack_from("<I", kt, kpos)
        kpos += 4
        for _ in range(count):
            (nlen,) = struct.unpack_from("<H", kt, kpos)
            kpos += 2
            name = kt[kpos : kpos + nlen].decode("utf-8")
            kpos += nlen
            raw_key = kt[kpos : kpos + 32]
            if len(raw_key) != 32:
                raise CacheCorruption("truncated key table")
            kpos += 32
            frame_size, nslots = struct.unpack_from("<IH", kt, kpos)
            kpos += 6
            frame: dict[str, tuple[int, int]] = {}
            for _ in range(nslots):
                (slen,) = struct.unpack_from("<H", kt, kpos)
                kpos += 2
                slot = kt[kpos : kpos + slen].decode("utf-8")
                kpos += slen
                addr, size = struct.unpack_from("<qI", kt, kpos)
                kpos += 12
                frame[slot] = (addr, size)
            fe_keys[name] = raw_key.hex()
            frames[name] = frame
            frame_sizes[name] = frame_size
        if kpos != len(kt):
            raise CacheCorruption("trailing bytes after key table")
        source_filename, globals_layout, init_data = _binfmt.decode(bytes(file_chunk))
        if not isinstance(source_filename, str) or not isinstance(
            globals_layout, dict
        ) or not isinstance(init_data, dict):
            raise CacheCorruption("manifest file chunk has the wrong shape")
        return _Manifest(
            source_filename=source_filename,
            fe_keys=fe_keys,
            frames=frames,
            frame_sizes=frame_sizes,
            globals_layout=globals_layout,
            init_data=init_data,
            frontend_blob=bytes(frontend_blob),
        )
    except CacheCorruption:
        raise
    except Exception as exc:  # struct errors, binfmt errors, unicode errors, ...
        raise CacheCorruption(f"{type(exc).__name__}: {exc}") from exc


def _encode_fn_fe(entry: HLIEntry, unit: UnitInfo, fn_rtl: RTLFunction) -> bytes:
    """Serialize one function's pristine front-end artifacts."""
    body = io.BytesIO()
    _w_chunk(body, encode_entry(entry))
    _w_chunk(body, _binfmt.encode((unit, fn_rtl)))
    return _frame(_TAG_FE, body.getvalue())


def _decode_fn_fe(data: bytes) -> tuple[HLIEntry, UnitInfo, RTLFunction]:
    try:
        payload = _unframe(_TAG_FE, data)
        entry_bytes, pos = _r_chunk(payload, 0)
        rest, _ = _r_chunk(payload, pos)
        entry = decode_entry(bytes(entry_bytes))
        unit, fn_rtl = _binfmt.decode(bytes(rest))
        if not isinstance(unit, UnitInfo) or not isinstance(fn_rtl, RTLFunction):
            raise CacheCorruption("decoded unit artifacts have the wrong types")
        if entry.unit_name != fn_rtl.name:
            raise CacheCorruption("entry / RTL unit-name mismatch")
        return entry, unit, fn_rtl
    except CacheCorruption:
        raise
    except Exception as exc:
        raise CacheCorruption(f"{type(exc).__name__}: {exc}") from exc


def _encode_fn_be(
    fn_rtl: RTLFunction,
    entry: HLIEntry,
    map_stats: Optional[MapStats],
    dep_stats: Optional[DepStats],
    opt_frag,
    unit: Optional[UnitInfo] = None,
) -> bytes:
    """Serialize one function's finished back-end artifacts.

    The entry is the *maintained* one (post unroll/cse/licm table
    updates); its generation counter rides alongside so a restored query
    sees exactly the state an in-process compile would have left.  The
    analysis ``unit`` rides in its own chunk: the back end never mutates
    it, so storing it here lets a warm restore skip the front-end tier
    entirely (decoders that do not need it leave the chunk untouched).
    """
    body = io.BytesIO()
    _w_chunk(body, encode_entry(entry))
    _w_chunk(
        body,
        _binfmt.encode((fn_rtl, entry.generation, map_stats, dep_stats, opt_frag)),
    )
    _w_chunk(body, _binfmt.encode(unit))
    return _frame(_TAG_BE, body.getvalue())


def _decode_fn_be(data: bytes, want_unit: bool = False):
    """Verified decode of :func:`_encode_fn_be` output.

    Returns ``(fn_rtl, entry, map_stats, dep_stats, opt_frag, unit)``;
    ``unit`` is ``None`` unless ``want_unit`` — the unit chunk is only
    deserialized when the caller (the manifest-miss path, which may need
    to re-store the function) asks for it.
    """
    try:
        payload = _unframe(_TAG_BE, data)
        entry_bytes, pos = _r_chunk(payload, 0)
        rest, pos = _r_chunk(payload, pos)
        unit_bytes, _ = _r_chunk(payload, pos)
        entry = decode_entry(bytes(entry_bytes))
        fn_rtl, generation, map_stats, dep_stats, opt_frag = _binfmt.decode(
            bytes(rest)
        )
        if not isinstance(fn_rtl, RTLFunction) or entry.unit_name != fn_rtl.name:
            raise CacheCorruption("decoded back-end RTL has the wrong shape")
        if not isinstance(generation, int) or generation < 0:
            raise CacheCorruption("bad entry generation")
        if map_stats is not None and not isinstance(map_stats, MapStats):
            raise CacheCorruption("decoded map stats have the wrong type")
        if dep_stats is not None and not isinstance(dep_stats, DepStats):
            raise CacheCorruption("decoded dep stats have the wrong type")
        if opt_frag is not None:
            from ..backend.passes import OptStats

            if not isinstance(opt_frag, OptStats):
                raise CacheCorruption("decoded opt stats have the wrong type")
        entry.generation = generation
        unit = None
        if want_unit:
            unit = _binfmt.decode(bytes(unit_bytes))
            if unit is not None and not isinstance(unit, UnitInfo):
                raise CacheCorruption("decoded unit has the wrong type")
        return fn_rtl, entry, map_stats, dep_stats, opt_frag, unit
    except CacheCorruption:
        raise
    except Exception as exc:
        raise CacheCorruption(f"{type(exc).__name__}: {exc}") from exc


# -- one prepared compile ------------------------------------------------------


@dataclass
class _Prepared:
    """A compile whose front end is resolved but whose suffix has not run."""

    comp: Compilation
    opts: CompileOptions
    prefix: list[Pass]
    suffix: list[Pass]
    stats: PipelineStats
    fe_keys: dict[str, str]
    #: functions the back-end passes must actually run over
    active: list[str]
    #: analysis units for the active functions (feeds back-end stores)
    units: dict[str, UnitInfo] = field(default_factory=dict)


# -- the session ---------------------------------------------------------------


#: Distinguishes concurrent same-key temp files within one process (the
#: pid alone is not enough once worker *threads* share a session).
_tmp_ids = itertools.count(1)


class CompilationSession:
    """Cached, optionally parallel compilation over a shared artifact store.

    Safe for concurrent use from multiple threads: the in-memory LRU,
    the :class:`SessionStats` counters, and the disk-budget enforcement
    are all guarded by one reentrant lock (``repro-serve`` hammers one
    session from a worker pool).  The lock is *not* held across pipeline
    work — two threads cold-compiling the same key may both compute and
    both store, which is wasteful but correct (stores are idempotent;
    the daemon's request coalescer removes the waste where it matters).
    """

    def __init__(
        self,
        cache_dir: Optional[str | os.PathLike] = None,
        max_memory_entries: int = 1024,
        max_disk_bytes: Optional[int] = None,
        reuse_backend: bool = True,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = max(0, max_memory_entries)
        self.max_disk_bytes = max_disk_bytes
        #: when False the session serves only front-end artifacts (the
        #: PR-4 whole-file warm path) — the escape hatch benchmarks use
        #: to compare against function-grained reuse
        self.reuse_backend = reuse_backend
        self._memory: OrderedDict[str, bytes] = OrderedDict()
        self.stats = SessionStats()
        #: guards ``_memory``, ``stats``, and the disk-budget sweep
        self._lock = threading.RLock()

    def _bump(self, counter: str, n: int = 1) -> None:
        """Thread-safe increment of one :class:`SessionStats` counter."""
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + n)

    # -- tier plumbing ---------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[Path]:
        """Sharded location (``ab/cdef….hlic``), git-object style."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / key[:2] / f"{key[2:]}.hlic"

    def _flat_path(self, key: str) -> Optional[Path]:
        """Legacy unsharded location; migrated on first touch."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.hlic"

    def _lookup(self, key: str) -> tuple[Optional[bytes], str]:
        """Return ``(blob, tier)``; tier is ``"memory"``, ``"disk"``, or ``""``."""
        with self._lock:
            blob = self._memory.get(key)
            if blob is not None:
                self._memory.move_to_end(key)
                return blob, "memory"
        path = self._disk_path(key)
        if path is None:
            return None, ""
        try:
            blob = path.read_bytes()
        except OSError:
            blob = None
        if blob is None:
            flat = self._flat_path(key)
            try:
                blob = flat.read_bytes()
            except OSError:
                return None, ""
            try:  # migrate the flat entry into the sharded layout
                path.parent.mkdir(exist_ok=True)
                os.replace(flat, path)
            except OSError:
                pass
        try:  # LRU recency for the disk budget
            os.utime(path)
        except OSError:
            pass
        return blob, "disk"

    def _remember(self, key: str, blob: bytes) -> None:
        if self.max_memory_entries == 0:
            return
        with self._lock:
            self._memory[key] = blob
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)
                self.stats.evictions += 1
                _metrics.inc("session.cache.evict")

    def _store(self, key: str, blob: bytes, kind: str = "manifest") -> None:
        if kind == "manifest":
            self._bump("stores")
        elif kind == "fe":
            self._bump("fn_stores")
        else:
            self._bump("be_stores")
        self._remember(key, blob)
        path = self._disk_path(key)
        if path is not None:
            tmp = path.parent / (
                path.name + ".tmp%d.%d" % (os.getpid(), next(_tmp_ids))
            )
            try:
                path.parent.mkdir(exist_ok=True)
                tmp.write_bytes(blob)
                os.replace(tmp, path)
            except OSError:
                # a read-only or full cache dir must never fail the compile
                tmp.unlink(missing_ok=True)
                return
            self._enforce_disk_budget(keep=path)

    def _enforce_disk_budget(self, keep: Optional[Path] = None) -> None:
        """Evict least-recently-used disk entries above ``max_disk_bytes``.

        Serialized under the session lock so two threads finishing
        stores at once do not race the scan and double-evict.
        """
        if self.cache_dir is None or self.max_disk_bytes is None:
            return
        with self._lock:
            self._enforce_disk_budget_locked(keep)

    def _enforce_disk_budget_locked(self, keep: Optional[Path] = None) -> None:
        entries = []
        total = 0
        for p in self.cache_dir.rglob("*.hlic"):
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, str(p), p, st.st_size))
            total += st.st_size
        if total <= self.max_disk_bytes:
            return
        for _, _, p, size in sorted(entries, key=lambda e: (e[0], e[1])):
            if keep is not None and p == keep:
                continue
            try:
                p.unlink()
            except OSError:
                continue
            total -= size
            self.stats.disk_evictions += 1
            _metrics.inc("session.cache.disk_evict")
            if total <= self.max_disk_bytes:
                return

    def _evict_corrupt(self, key: str, tier: str, why: str) -> None:
        self._bump("corrupt")
        _metrics.inc("session.cache.corrupt")
        with self._lock:
            self._memory.pop(key, None)
        if tier == "disk":
            for path in (self._disk_path(key), self._flat_path(key)):
                if path is not None:
                    try:
                        path.unlink(missing_ok=True)
                    except OSError:
                        pass

    # -- compilation -----------------------------------------------------------

    def compile(
        self,
        source: str,
        filename: str = "<input>",
        options: Optional[CompileOptions] = None,
        external_effects: Optional[dict] = None,
        extra_salt: str = "",
    ) -> Compilation:
        """Compile through the cache.

        A manifest hit skips the whole front end; per-function back-end
        hits then skip mapping/optimization/scheduling for every
        unchanged function, so an edit recompiles only the invalidated
        set (the edited functions plus their transitive callers).

        ``external_effects``/``extra_salt`` support whole-program mode:
        the effects feed the HLI builder and the salt keys the cached
        artifacts to the link state they were built under (callers must
        derive the salt from the effects — the session only hashes it).
        """
        opts = options or CompileOptions()
        passes = build_pipeline(opts)
        prefix, suffix = split_frontend(passes)
        if not prefix:  # nothing cacheable in this pipeline
            from .compile import compile_source

            return compile_source(source, filename, opts, external_effects)
        key = cache_key(source, filename, passes, salt=extra_salt)
        with enabled_scope(opts.trace):
            with _trace.span(
                "session.compile", file=filename, mode=opts.mode.value
            ) as span:
                prep = self._prepare(
                    key,
                    source,
                    filename,
                    opts,
                    prefix,
                    suffix,
                    external_effects=external_effects,
                    extra_salt=extra_salt,
                )
                self._run_suffix(prep)
                span.set(cache=prep.comp.cache_state)
                return prep.comp

    def _prepare(
        self,
        key,
        source,
        filename,
        opts,
        prefix,
        suffix,
        external_effects=None,
        extra_salt="",
    ) -> _Prepared:
        """Resolve the front end (cache or compile), back-end tier first."""
        blob, tier = self._lookup(key)
        man = None
        if blob is not None:
            try:
                man = _decode_manifest(blob)
            except CacheCorruption as exc:
                self._evict_corrupt(key, tier, str(exc))
        restored = None
        if man is not None:
            restored = self._restore_manifest(
                man,
                key,
                tier,
                blob,
                source,
                filename,
                opts,
                prefix,
                suffix,
                external_effects,
            )
        if restored is not None:
            comp, stats, fe_keys, fn_states, active, units = restored
        else:
            self._bump("misses")
            _metrics.inc("session.cache.miss")
            comp, stats, fe_keys, fn_states, active, units = (
                self._frontend_incremental(
                    key,
                    source,
                    filename,
                    opts,
                    prefix,
                    suffix,
                    external_effects=external_effects,
                    extra_salt=extra_salt,
                )
            )
        comp.fn_cache_states = fn_states
        return _Prepared(
            comp=comp,
            opts=opts,
            prefix=list(prefix),
            suffix=list(suffix),
            stats=stats,
            fe_keys=fe_keys,
            active=active,
            units=units,
        )

    def _restore_manifest(
        self,
        man: _Manifest,
        key: str,
        tier: str,
        blob: bytes,
        source,
        filename,
        opts,
        prefix,
        suffix,
        external_effects,
    ):
        """Rebuild a compilation purely from cached blobs, or ``None``.

        Every function restores from its back-end blob when the knobs
        match (zero front-end traffic), else from its front-end blob.
        A function with *neither* blob (LRU-evicted, corrupted) fails
        the whole restore: the manifest is evicted (counted under
        ``corrupt``) and the caller falls back to the incremental path,
        which re-stores everything.  ``be_*``/``fn_*`` counters bumped
        before such a failure stand — the partial restores did happen.
        """
        comp = Compilation(
            source=source,
            filename=filename,
            hli=HLIFile(source_filename=man.source_filename),
            frontend=_lazy_frontend(
                man.frontend_blob, lambda: self._bump("frontend_decodes")
            ),
            rtl=RTLProgram(
                globals_layout=man.globals_layout, init_data=man.init_data
            ),
            options=opts,
            cache_state=tier,
            external_effects=external_effects,
        )
        use_be = self.reuse_backend and any(p.per_function for p in suffix)
        backend_fp = _backend_fp(suffix) if use_be else ""
        fn_states: dict[str, str] = {}
        active: list[str] = []
        units: dict[str, UnitInfo] = {}
        for name, fe_key in man.fe_keys.items():
            frame = (man.frames[name], man.frame_sizes[name])
            decoded = None
            btier = ""
            if use_be:
                bkey = _be_key(fe_key, opts, backend_fp)
                bblob, btier = self._lookup(bkey)
                if bblob is not None:
                    try:
                        decoded = _decode_fn_be(bblob)
                    except CacheCorruption as exc:
                        self._evict_corrupt(bkey, btier, str(exc))
            if decoded is not None:
                if btier == "memory":
                    self._bump("be_hits_memory")
                else:
                    self._bump("be_hits_disk")
                    self._remember(bkey, bblob)
                self._bump("be_decodes")
                _metrics.inc("session.cache.be_hit", btier)
                self._install_be(comp, name, decoded, frame=frame)
                fn_states[name] = f"be:{btier}"
                continue
            if use_be:
                self._bump("be_misses")
                _metrics.inc("session.cache.be_miss")
            fblob, ftier = self._lookup(fe_key)
            fdec = None
            if fblob is not None:
                try:
                    fdec = _decode_fn_fe(fblob)
                except CacheCorruption as exc:
                    self._evict_corrupt(fe_key, ftier, str(exc))
            if fdec is None:
                self._evict_corrupt(key, tier, f"function blob missing: {name}")
                return None
            entry, unit, fn_rtl = fdec
            if ftier == "memory":
                self._bump("fn_hits_memory")
            else:
                self._bump("fn_hits_disk")
                self._remember(fe_key, fblob)
            self._bump("fe_decodes")
            _metrics.inc("session.cache.fn_hit", ftier)
            fmap, fsize = frame
            fn_rtl.frame = dict(fmap)
            fn_rtl.frame_size = fsize
            entry.filename = man.source_filename or filename
            comp.rtl.functions[name] = fn_rtl
            comp.hli.add(entry)
            units[name] = unit
            fn_states[name] = f"fe:{ftier}"
            active.append(name)
        if tier == "memory":
            self._bump("hits_memory")
        else:
            self._bump("hits_disk")
            self._remember(key, blob)
        _metrics.inc("session.cache.hit", tier)
        stats = PipelineStats(cached_prefix=tuple(p.name for p in prefix))
        return comp, stats, dict(man.fe_keys), fn_states, active, units

    def _frontend_incremental(
        self,
        key,
        source,
        filename,
        opts,
        prefix,
        suffix,
        external_effects=None,
        extra_salt="",
    ):
        """Manifest miss: rebuild only the functions whose keys changed.

        Parses (unavoidable — fingerprints need the checked AST), then
        serves each function from the *back-end* tier first (fingerprint
        and knobs both unchanged: splice the finished RTL, done), else
        from the front-end tier (HLI entry + pristine RTL, back end
        re-runs), building only the invalidated rest.  Pristine
        artifacts are stored *before* the back end runs, so later edits
        can splice around this compile's functions.
        """
        from ..analysis.builder import HLIBuilder
        from ..frontend import parse_and_check
        from .incremental import function_keys

        comp = Compilation(
            source=source,
            filename=filename,
            options=opts,
            external_effects=external_effects,
        )
        stats = PipelineStats()
        program, table = parse_and_check(source, filename)
        stats.passes_run.append("parse")
        builder = HLIBuilder(program, table, external_effects=external_effects)
        keys = function_keys(
            source,
            program,
            table,
            builder.pts,
            builder.refmod,
            salt=_fe_salt(prefix, filename, extra_salt),
        )
        use_be = self.reuse_backend and any(p.per_function for p in suffix)
        backend_fp = _backend_fp(suffix) if use_be else ""
        hli = HLIFile(source_filename=program.filename)
        frontend = builder.frontend_info()
        cached_rtl: dict[str, RTLFunction] = {}
        be_installs: dict[str, tuple] = {}
        units: dict[str, UnitInfo] = {}
        fn_states: dict[str, str] = {}
        fresh: list[str] = []
        any_hit = False
        with _trace.span("analysis.build_hli", file=filename):
            for fn in program.functions:
                fe_key = keys.fe[fn.name]
                if use_be:
                    bkey = _be_key(fe_key, opts, backend_fp)
                    bblob, btier = self._lookup(bkey)
                    bdec = None
                    if bblob is not None:
                        try:
                            bdec = _decode_fn_be(bblob, want_unit=True)
                        except CacheCorruption as exc:
                            self._evict_corrupt(bkey, btier, str(exc))
                    if bdec is not None:
                        entry = bdec[1]
                        entry.filename = program.filename
                        if btier == "memory":
                            self._bump("be_hits_memory")
                        else:
                            self._bump("be_hits_disk")
                            self._remember(bkey, bblob)
                        self._bump("be_decodes")
                        _metrics.inc("session.cache.be_hit", btier)
                        # The be-final RTL splices like a pristine one:
                        # frames re-lay in program order either way.
                        cached_rtl[fn.name] = bdec[0]
                        be_installs[fn.name] = bdec
                        hli.add(entry)
                        if bdec[5] is not None:
                            frontend.units[fn.name] = bdec[5]
                        fn_states[fn.name] = f"be:{btier}"
                        any_hit = True
                        continue
                    self._bump("be_misses")
                    _metrics.inc("session.cache.be_miss")
                blob, tier = self._lookup(fe_key)
                decoded = None
                if blob is not None:
                    try:
                        decoded = _decode_fn_fe(blob)
                    except CacheCorruption as exc:
                        self._evict_corrupt(fe_key, tier, str(exc))
                if decoded is not None:
                    entry, unit, fn_rtl = decoded
                    entry.filename = program.filename
                    if tier == "memory":
                        self._bump("fn_hits_memory")
                    else:
                        self._bump("fn_hits_disk")
                        self._remember(fe_key, blob)
                    self._bump("fe_decodes")
                    _metrics.inc("session.cache.fn_hit", tier)
                    cached_rtl[fn.name] = fn_rtl
                    fn_states[fn.name] = f"fe:{tier}"
                    any_hit = True
                else:
                    self._bump("fn_misses")
                    _metrics.inc("session.cache.fn_miss")
                    entry, unit = builder.build_unit(fn)
                    fn_states[fn.name] = "cold"
                    fresh.append(fn.name)
                hli.add(entry)
                frontend.units[fn.name] = unit
                units[fn.name] = unit
        stats.passes_run.append("hli-build")
        rtl = lower_program(program, table, cached=cached_rtl)
        stats.passes_run.append("lower")
        comp.hli, comp.frontend, comp.rtl = hli, frontend, rtl
        for name, bdec in be_installs.items():
            # Lowering already replayed the frame on the spliced RTL.
            self._install_be(comp, name, bdec, frame=None)
        comp.cache_state = "incremental" if any_hit else "cold"
        active = [n for n in rtl.functions if n not in be_installs]
        # Store pristine artifacts before any back-end pass mutates them.
        with _trace.span("session.cache.store", fresh=len(fresh)):
            for name in fresh:
                self._store(
                    keys.fe[name],
                    _encode_fn_fe(hli.entries[name], frontend.units[name],
                                  rtl.functions[name]),
                    kind="fe",
                )
            self._store(key, _encode_manifest(comp, keys.fe), kind="manifest")
        return comp, stats, dict(keys.fe), fn_states, active, units

    def _install_be(
        self, comp: Compilation, name: str, decoded, frame=None
    ) -> None:
        """Splice one function's finished back-end artifacts into ``comp``.

        ``frame`` carries the manifest's recorded ``(slots, size)`` for
        this function *in this file* — per-function blobs are shared
        across files, so their stored frames may reflect a different
        program order.  ``None`` means the frame is already correct
        (the lowering splice replayed it, or the blob was produced by
        this very compile).
        """
        fn_rtl, entry, map_stats, dep_stats, opt_frag, _unit = decoded
        if frame is not None:
            fmap, fsize = frame
            fn_rtl.frame = dict(fmap)
            fn_rtl.frame_size = fsize
        comp.rtl.functions[name] = fn_rtl
        entry.filename = comp.hli.source_filename or comp.filename
        comp.hli.entries[name] = entry
        comp.queries[name] = HLIQuery(entry)
        if map_stats is not None:
            comp.map_stats[name] = map_stats
        if dep_stats is not None:
            comp.dep_stats[name] = dep_stats
        if opt_frag is not None:
            if comp.opt_stats is None:
                from ..backend.passes import OptStats

                comp.opt_stats = OptStats()
            comp.opt_stats.cse.merge(opt_frag.cse)
            comp.opt_stats.licm.merge(opt_frag.licm)
            comp.opt_stats.unroll.merge(opt_frag.unroll)

    def _run_suffix(self, prep: _Prepared) -> None:
        """Run the back-end suffix over the active units, then store them."""
        ctx = PassContext(comp=prep.comp, opts=prep.opts, active_units=prep.active)
        initial = sorted({a for p in prep.prefix for a in p.provides})
        make_manager(prep.suffix).run(ctx, initial=initial, stats=prep.stats)
        prep.comp.pipeline_stats = prep.stats
        self._store_backend(prep, ctx)

    def _store_backend(self, prep: _Prepared, ctx: PassContext) -> None:
        if not self.reuse_backend or not prep.active:
            return
        if not any(p.per_function for p in prep.suffix):
            return
        comp = prep.comp
        backend_fp = _backend_fp(prep.suffix)
        for name in prep.active:
            entry = comp.hli.entries.get(name)
            fn = comp.rtl.functions.get(name)
            fe_key = prep.fe_keys.get(name)
            if entry is None or fn is None or fe_key is None:
                continue
            blob = _encode_fn_be(
                fn,
                entry,
                comp.map_stats.get(name),
                comp.dep_stats.get(name),
                ctx.fn_opt_stats.get(name),
                unit=prep.units.get(name),
            )
            self._store(_be_key(fe_key, prep.opts, backend_fp), blob, kind="be")

    # -- batch / parallel ------------------------------------------------------

    def compile_many(
        self,
        jobs: Sequence[tuple],
        max_workers: Optional[int] = None,
        granularity: str = "auto",
    ) -> list[Compilation]:
        """Compile a batch of ``(source, filename[, options])`` jobs.

        Fan-out happens at one of two granularities:

        * ``"file"`` — one pool task per job; every worker process runs
          the whole pipeline and shares this session's on-disk tier (the
          in-memory tier is per-process).
        * ``"function"`` — the front ends run in this process (through
          the cache) and every *invalidated function's* back end becomes
          one pool task, so a single large file still saturates the pool.

        ``"auto"`` picks per-function when there are spare workers
        (fewer jobs than workers), per-file otherwise.  Results come
        back in job order.  ``max_workers=None`` uses
        :func:`resolve_workers` (the ``REPRO_JOBS`` environment
        variable, else one worker per core).
        """
        normalized = [_normalize_job(j) for j in jobs]
        if not normalized:
            return []
        if granularity not in ("auto", "file", "function"):
            raise ValueError("granularity must be 'auto', 'file', or 'function'")
        cap = resolve_workers(max_workers, 1 << 30)
        if granularity == "auto":
            granularity = "function" if len(normalized) < cap else "file"
        if cap <= 1:
            return [self._compile_job(job) for job in normalized]
        if granularity == "function":
            return self._compile_many_functions(normalized, cap)
        workers = min(cap, len(normalized))
        if workers <= 1:
            return [self._compile_job(job) for job in normalized]
        from concurrent.futures import ProcessPoolExecutor

        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        with _trace.span("session.compile_many", jobs=len(normalized), workers=workers):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_compile_worker, cache_dir, job)
                    for job in normalized
                ]
                results = [f.result() for f in futures]
        for comp in results:
            self._absorb_remote(comp)
        return results

    def _compile_job(self, job: CompileJob) -> Compilation:
        """Compile one normalized job through this session's cache."""
        return self.compile(
            job.source,
            job.filename,
            job.options,
            external_effects=job.external_effects,
            extra_salt=job.extra_salt,
        )

    def _absorb_remote(self, comp: Compilation) -> None:
        """Fold a worker-process compilation into this session's counters."""
        if comp.cache_state == "memory":
            self._bump("hits_memory")
        elif comp.cache_state == "disk":
            self._bump("hits_disk")
        else:
            self._bump("misses")
        _metrics.inc("session.cache.fanout", comp.cache_state or "cold")

    def _probe_warm(self, job: CompileJob) -> bool:
        """True if ``job``'s manifest is already in this session's cache.

        Used by :meth:`compile_partitions` to keep warm jobs in the
        parent process: the front-end decode then happens once against
        the shared tiers instead of once per worker process.
        """
        opts = job.options or CompileOptions()
        passes = build_pipeline(opts)
        prefix, _ = split_frontend(passes)
        if not prefix:
            return False
        blob, _tier = self._lookup(
            cache_key(job.source, job.filename, passes, salt=job.extra_salt)
        )
        return blob is not None

    def compile_partitions(
        self,
        partitions: Sequence[Sequence],
        max_workers: Optional[int] = None,
    ) -> list[list[Compilation]]:
        """Compile partitions of jobs: one pool task per partition.

        Each partition's jobs compile serially *inside* one worker
        process (they share that worker's in-memory tier and the
        session-wide disk tier), while distinct partitions run
        concurrently — the LTO "ltrans" shape.  Results come back in
        partition order, job order within each partition.

        Two resilience properties:

        * **warm short-circuit** — jobs whose manifest already sits in
          this session's cache compile in the parent process, so a warm
          run decodes shared artifacts once instead of once per worker;
        * **in-process fallback** — if a worker dies (OOM kill, crash),
          the affected partitions recompile in the parent; the batch
          always completes.
        """
        norm = [[_normalize_job(j) for j in part] for part in partitions]
        results: list[list[Optional[Compilation]]] = [
            [None] * len(part) for part in norm
        ]
        live = [pi for pi, part in enumerate(norm) if part]
        if not live:
            return [list(part) for part in results]
        workers = resolve_workers(max_workers, len(live))
        if workers <= 1 or len(live) <= 1:
            for pi in live:
                for ji, job in enumerate(norm[pi]):
                    results[pi][ji] = self._compile_job(job)
            return results
        remote: list[tuple[int, list[tuple[int, CompileJob]]]] = []
        for pi in live:
            pending: list[tuple[int, CompileJob]] = []
            for ji, job in enumerate(norm[pi]):
                if self._probe_warm(job):
                    results[pi][ji] = self._compile_job(job)
                else:
                    pending.append((ji, job))
            if pending:
                remote.append((pi, pending))
        if remote:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool

            cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
            workers = min(workers, len(remote))
            fallback: list[tuple[int, list[tuple[int, CompileJob]]]] = []
            with _trace.span(
                "session.compile_partitions",
                partitions=len(remote),
                workers=workers,
            ):
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        (
                            pool.submit(
                                _compile_partition_worker,
                                cache_dir,
                                [job for _, job in pending],
                            ),
                            pi,
                            pending,
                        )
                        for pi, pending in remote
                    ]
                    for fut, pi, pending in futures:
                        try:
                            comps = fut.result()
                        except (BrokenProcessPool, OSError):
                            fallback.append((pi, pending))
                            continue
                        for (ji, _job), comp in zip(pending, comps):
                            results[pi][ji] = comp
                            self._absorb_remote(comp)
            for pi, pending in fallback:
                _metrics.inc("session.partition.fallback")
                for ji, job in pending:
                    results[pi][ji] = self._compile_job(job)
        return results

    def _compile_many_functions(self, normalized, cap: int) -> list[Compilation]:
        """Function-granularity fan-out: one pool task per invalidated fn."""
        from .compile import compile_source

        preps: list[Optional[_Prepared]] = []
        results: list[Optional[Compilation]] = [None] * len(normalized)
        with _trace.span(
            "session.compile_many",
            jobs=len(normalized),
            workers=cap,
            granularity="function",
        ):
            for idx, job in enumerate(normalized):
                opts = job.options or CompileOptions()
                passes = build_pipeline(opts)
                prefix, suffix = split_frontend(passes)
                if not prefix:
                    results[idx] = compile_source(
                        job.source, job.filename, opts, job.external_effects
                    )
                    preps.append(None)
                    continue
                key = cache_key(job.source, job.filename, passes, salt=job.extra_salt)
                preps.append(
                    self._prepare(
                        key,
                        job.source,
                        job.filename,
                        opts,
                        prefix,
                        suffix,
                        external_effects=job.external_effects,
                        extra_salt=job.extra_salt,
                    )
                )
            tasks: list[tuple[int, str]] = []
            payloads: list[bytes] = []
            for idx, prep in enumerate(preps):
                if prep is None:
                    continue
                has_per_fn = any(p.per_function for p in prep.suffix)
                for name in prep.active:
                    if not has_per_fn:
                        continue
                    payloads.append(
                        _encode_fn_task(prep.comp, name, prep.opts)
                    )
                    tasks.append((idx, name))
            if payloads:
                from concurrent.futures import ProcessPoolExecutor

                workers = min(cap, len(payloads))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    blobs = list(pool.map(_backend_fn_worker, payloads))
            else:
                blobs = []
            for (idx, name), blob in zip(tasks, blobs):
                prep = preps[idx]
                decoded = _decode_fn_be(blob)
                self._install_be(prep.comp, name, decoded)
                if self.reuse_backend:
                    # Workers do not carry analysis units; re-encode with
                    # ours so the stored blob can serve the want_unit path.
                    fn_rtl, entry, ms, ds, of, _ = decoded
                    self._store(
                        _be_key(prep.fe_keys[name], prep.opts,
                                _backend_fp(prep.suffix)),
                        _encode_fn_be(fn_rtl, entry, ms, ds, of,
                                      unit=prep.units.get(name)),
                        kind="be",
                    )
            for idx, prep in enumerate(preps):
                if prep is None:
                    continue
                worker_fns = [name for (j, name) in tasks if j == idx]
                # Per-function passes already ran in the pool; run the
                # suffix over zero units so file-level passes (lint) and
                # artifact bookkeeping still execute in order.
                ctx = PassContext(comp=prep.comp, opts=prep.opts, active_units=[])
                initial = sorted({a for p in prep.prefix for a in p.provides})
                make_manager(prep.suffix).run(ctx, initial=initial, stats=prep.stats)
                for p in prep.suffix:
                    if p.per_function:
                        prep.stats.function_runs[p.name] = list(worker_fns)
                prep.comp.pipeline_stats = prep.stats
                results[idx] = prep.comp
                _metrics.inc("session.cache.fanout", prep.comp.cache_state or "cold")
        return results


def _normalize_job(job) -> CompileJob:
    if isinstance(job, CompileJob):
        return job
    if isinstance(job, (tuple, list)):
        if len(job) == 2:
            return CompileJob(source=job[0], filename=job[1])
        if len(job) == 3:
            return CompileJob(source=job[0], filename=job[1], options=job[2])
        raise ValueError(
            "compile_many job tuple must be (source, filename[, options]); "
            f"got {len(job)} elements — use CompileJob to carry "
            "external_effects/extra_salt"
        )
    raise ValueError(
        f"compile_many job must be a CompileJob or a tuple, got {type(job).__name__}"
    )


def _encode_fn_task(comp: Compilation, name: str, opts: CompileOptions) -> bytes:
    """Self-contained payload for one function's back-end pool task."""
    return _binfmt.encode(
        (
            comp.filename,
            name,
            comp.rtl.functions[name],
            comp.hli.entries[name],
            opts,
        )
    )


def _backend_fn_worker(payload: bytes) -> bytes:
    """Run the per-function back-end passes for one function, standalone.

    The result is a verified back-end blob — the parent both splices it
    into the compilation and stores it in the cache (after re-attaching
    the analysis unit, which never crosses the pool boundary).
    """
    fname, name, fn_rtl, entry, opts = _binfmt.decode(payload)
    entry.filename = fname
    hli = HLIFile(source_filename=fname)
    hli.add(entry)
    comp = Compilation(
        source="",
        filename=fname,
        hli=hli,
        rtl=RTLProgram(functions={name: fn_rtl}),
        options=opts,
    )
    ctx = PassContext(comp=comp, opts=opts, active_units=[name])
    prefix, suffix = split_frontend(build_pipeline(opts))
    per_fn = [p for p in suffix if p.per_function]
    initial = sorted({a for p in prefix for a in p.provides})
    make_manager(per_fn).run(ctx, initial=initial)
    return _encode_fn_be(
        comp.rtl.functions[name],
        entry,
        comp.map_stats.get(name),
        comp.dep_stats.get(name),
        ctx.fn_opt_stats.get(name),
    )


#: Per-worker-process sessions, keyed by cache dir (fork-safe lazily built).
_WORKER_SESSIONS: dict[Optional[str], CompilationSession] = {}


def _worker_session(cache_dir: Optional[str]) -> CompilationSession:
    sess = _WORKER_SESSIONS.get(cache_dir)
    if sess is None:
        sess = _WORKER_SESSIONS[cache_dir] = CompilationSession(cache_dir=cache_dir)
    return sess


def _compile_worker(cache_dir: Optional[str], job: CompileJob) -> Compilation:
    return _worker_session(cache_dir)._compile_job(job)


def _compile_partition_worker(
    cache_dir: Optional[str], jobs: Sequence[CompileJob]
) -> list[Compilation]:
    """Compile one partition's jobs serially inside a worker process."""
    if os.environ.get("REPRO_TEST_KILL_WORKER"):
        # Deterministic crash hook for the worker-death fallback test:
        # die without unwinding, like an OOM kill would.
        os._exit(17)
    sess = _worker_session(cache_dir)
    return [sess._compile_job(job) for job in jobs]


# -- generic fan-out -----------------------------------------------------------


def resolve_workers(requested: Optional[int], n_items: int) -> int:
    """Worker-count policy shared by every fan-out entry point.

    ``requested`` semantics: ``None`` → the ``REPRO_JOBS`` environment
    variable if set, else one per core; ``0`` → one per core; anything
    else is taken literally.  Always capped by ``n_items``.
    """
    if requested is None:
        env = os.environ.get("REPRO_JOBS", "")
        requested = int(env) if env.isdigit() and env != "" else 0
    if requested <= 0:
        requested = os.cpu_count() or 1
    return max(1, min(requested, n_items))


def parallel_map(fn, items: Sequence, max_workers: Optional[int] = None) -> list:
    """Order-preserving process-pool map with a serial single-worker path.

    ``fn`` must be a module-level (picklable) callable.
    """
    items = list(items)
    workers = resolve_workers(max_workers, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]


def compile_many(
    jobs: Sequence[tuple],
    max_workers: Optional[int] = None,
    session: Optional[CompilationSession] = None,
    granularity: str = "auto",
) -> list[Compilation]:
    """Module-level convenience: batch compile via ``session`` (or the default)."""
    sess = session if session is not None else default_session()
    return sess.compile_many(jobs, max_workers=max_workers, granularity=granularity)


# -- the default session -------------------------------------------------------

_DEFAULT: Optional[CompilationSession] = None


def default_session() -> CompilationSession:
    """Process-wide session (in-memory tier; ``REPRO_CACHE_DIR`` adds disk,
    ``REPRO_CACHE_MAX_BYTES`` bounds it)."""
    global _DEFAULT
    if _DEFAULT is None:
        env_max = os.environ.get("REPRO_CACHE_MAX_BYTES", "")
        _DEFAULT = CompilationSession(
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
            max_memory_entries=512,
            max_disk_bytes=int(env_max) if env_max.isdigit() else None,
        )
    return _DEFAULT


def reset_default_session() -> None:
    """Drop the process-wide session (tests use this for isolation)."""
    global _DEFAULT
    _DEFAULT = None
