"""Compilation sessions: artifact caching + parallel fan-out.

The paper's whole premise is *separate compilation*: the front end
writes each source file's HLI once and the back end re-uses it across
builds (Section 3.2.1).  A :class:`CompilationSession` finally exercises
that story end-to-end: the front-end prefix of the pipeline (parse → HLI
construction → lowering) is keyed by a **content-addressed cache key**
(hash of source + filename + the front-end pass fingerprint) and its
artifacts are persisted as serialized bytes — the HLI through the
paper's own binary format (:mod:`repro.hli.binio`), the RTL and
front-end info through pickle — in two tiers:

* an in-memory LRU of encoded blobs (per session);
* an optional on-disk directory shared between sessions and processes.

Cache entries are **verified, not trusted**: a checksum guards the whole
blob, the HLI payload must decode through the real binio reader, and any
failure (truncation, bit-flips, version skew) degrades to a cold compile
— never a crash, never wrong code.  Hits, misses, corruption, and
evictions are visible both in :attr:`CompilationSession.stats` and, when
:mod:`repro.obs` is enabled, as ``session.cache.*`` counters.

``compile_many`` adds **parallel fan-out**: a
:class:`~concurrent.futures.ProcessPoolExecutor` spreads a batch of
compilations across cores, with every worker sharing the session's
on-disk tier.  ``driver.validate``, ``driver.timing``,
``benchmarks/bench_pipeline.py``, and ``repro-fuzz`` batch mode all run
on top of it.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..analysis.builder import FrontEndInfo
from ..backend import rtl as _rtl
from ..backend.pm import Pass, PipelineStats, frontend_fingerprint, split_frontend
from ..backend.rtl import Reg, RTLProgram
from ..hli.binio import decode_hli, encode_hli
from ..hli.tables import HLIFile
from ..obs import enabled_scope
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .compile import Compilation, CompileOptions
from .passes import PassContext, build_pipeline, make_manager

__all__ = [
    "CacheCorruption",
    "CompilationSession",
    "SessionStats",
    "cache_key",
    "compile_many",
    "default_session",
    "parallel_map",
    "resolve_workers",
]

#: Bumped whenever the blob layout or any serialized artifact changes.
CACHE_MAGIC = b"HLIC"
CACHE_VERSION = 1


class CacheCorruption(Exception):
    """A cache entry failed verification (checksum, decode, or shape)."""


@dataclass
class SessionStats:
    """Cache effectiveness counters for one session."""

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    corrupt: int = 0
    evictions: int = 0
    stores: int = 0

    def to_dict(self) -> dict:
        return asdict(self)

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk


# -- content-addressed keys ----------------------------------------------------


def cache_key(source: str, filename: str, passes: Sequence[Pass]) -> str:
    """Key = hash of source + filename + front-end pipeline fingerprint.

    Back-end knobs (dependence mode, latency table, optimization flags)
    are deliberately absent: the front-end artifacts do not depend on
    them, which is exactly what lets ``timing``'s gcc-vs-hli double
    compile share one parse.  Bumping any front-end pass's ``version``
    changes the fingerprint and retires stale entries automatically.
    """
    h = hashlib.sha256()
    h.update(b"repro-hli-cache\x00")
    h.update(struct.pack("<H", CACHE_VERSION))
    h.update(frontend_fingerprint(passes).encode("ascii"))
    h.update(b"\x00")
    h.update(filename.encode("utf-8", "surrogatepass"))
    h.update(b"\x00")
    h.update(source.encode("utf-8", "surrogatepass"))
    return h.hexdigest()


# -- blob encode / verified decode --------------------------------------------


def _encode_blob(comp: Compilation) -> bytes:
    """Serialize the pristine front-end artifacts of ``comp``.

    Must be called right after the front-end prefix ran, *before* any
    back-end pass mutates the HLI tables or the RTL.
    """
    hli_bytes = encode_hli(comp.hli)
    # One pickle for (frontend, rtl) so Symbol/AST objects shared between
    # them keep their identity on reload.
    fe_rtl = pickle.dumps((comp.frontend, comp.rtl), protocol=pickle.HIGHEST_PROTOCOL)
    body = io.BytesIO()
    body.write(struct.pack("<I", len(hli_bytes)))
    body.write(hli_bytes)
    body.write(struct.pack("<I", len(fe_rtl)))
    body.write(fe_rtl)
    payload = body.getvalue()
    digest = hashlib.sha256(payload).digest()
    return CACHE_MAGIC + struct.pack("<H", CACHE_VERSION) + digest + payload


def _decode_blob(data: bytes) -> tuple[HLIFile, FrontEndInfo, RTLProgram]:
    """Verified decode of :func:`_encode_blob` output.

    Raises :class:`CacheCorruption` on *any* defect; never returns a
    partially valid artifact.
    """
    try:
        if data[:4] != CACHE_MAGIC:
            raise CacheCorruption("bad magic")
        (version,) = struct.unpack("<H", data[4:6])
        if version != CACHE_VERSION:
            raise CacheCorruption(f"cache version {version} != {CACHE_VERSION}")
        digest, payload = data[6:38], data[38:]
        if hashlib.sha256(payload).digest() != digest:
            raise CacheCorruption("checksum mismatch")
        pos = 0
        (n,) = struct.unpack_from("<I", payload, pos)
        pos += 4
        hli_bytes = payload[pos : pos + n]
        if len(hli_bytes) != n:
            raise CacheCorruption("truncated HLI payload")
        pos += n
        (n,) = struct.unpack_from("<I", payload, pos)
        pos += 4
        fe_rtl = payload[pos : pos + n]
        if len(fe_rtl) != n:
            raise CacheCorruption("truncated RTL payload")
        hli = decode_hli(bytes(hli_bytes))
        frontend, rtl = pickle.loads(bytes(fe_rtl))
        if not isinstance(hli, HLIFile) or not isinstance(rtl, RTLProgram):
            raise CacheCorruption("decoded artifacts have the wrong types")
        if not isinstance(frontend, FrontEndInfo):
            raise CacheCorruption("decoded front-end info has the wrong type")
        _reserve_foreign_ids(rtl)
        return hli, frontend, rtl
    except CacheCorruption:
        raise
    except Exception as exc:  # struct errors, pickle errors, binio errors, ...
        raise CacheCorruption(f"{type(exc).__name__}: {exc}") from exc


def _reserve_foreign_ids(rtl: RTLProgram) -> None:
    """Keep fresh reg/insn IDs from colliding with deserialized ones."""
    max_reg = 0
    max_uid = 0
    for fn in rtl.functions.values():
        for reg in fn.param_regs:
            max_reg = max(max_reg, reg.rid)
        if fn.ret_reg is not None:
            max_reg = max(max_reg, fn.ret_reg.rid)
        for insn in fn.insns:
            max_uid = max(max_uid, insn.uid)
            if insn.dst is not None:
                max_reg = max(max_reg, insn.dst.rid)
            for src in insn.srcs:
                if isinstance(src, Reg):
                    max_reg = max(max_reg, src.rid)
            if insn.mem is not None:
                max_reg = max(max_reg, insn.mem.addr.rid)
    _rtl.reserve_ids(max_reg, max_uid)


# -- the session ---------------------------------------------------------------


class CompilationSession:
    """Cached, optionally parallel compilation over a shared artifact store."""

    def __init__(
        self,
        cache_dir: Optional[str | os.PathLike] = None,
        max_memory_entries: int = 128,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_memory_entries = max(0, max_memory_entries)
        self._memory: OrderedDict[str, bytes] = OrderedDict()
        self.stats = SessionStats()

    # -- tier plumbing ---------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.hlic"

    def _lookup(self, key: str) -> tuple[Optional[bytes], str]:
        """Return ``(blob, tier)``; tier is ``"memory"``, ``"disk"``, or ``""``."""
        blob = self._memory.get(key)
        if blob is not None:
            self._memory.move_to_end(key)
            return blob, "memory"
        path = self._disk_path(key)
        if path is not None:
            try:
                blob = path.read_bytes()
            except OSError:
                blob = None
            if blob is not None:
                return blob, "disk"
        return None, ""

    def _remember(self, key: str, blob: bytes) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = blob
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            _metrics.inc("session.cache.evict")

    def _store(self, key: str, blob: bytes) -> None:
        self.stats.stores += 1
        self._remember(key, blob)
        path = self._disk_path(key)
        if path is not None:
            tmp = path.with_suffix(".tmp%d" % os.getpid())
            try:
                tmp.write_bytes(blob)
                os.replace(tmp, path)
            except OSError:
                # a read-only or full cache dir must never fail the compile
                tmp.unlink(missing_ok=True)

    def _evict_corrupt(self, key: str, tier: str, why: str) -> None:
        self.stats.corrupt += 1
        _metrics.inc("session.cache.corrupt")
        self._memory.pop(key, None)
        if tier == "disk":
            path = self._disk_path(key)
            if path is not None:
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass

    # -- compilation -----------------------------------------------------------

    def compile(
        self,
        source: str,
        filename: str = "<input>",
        options: Optional[CompileOptions] = None,
    ) -> Compilation:
        """Compile through the cache: warm hits skip parse/HLI-build/lower."""
        opts = options or CompileOptions()
        passes = build_pipeline(opts)
        prefix, suffix = split_frontend(passes)
        if not prefix:  # nothing cacheable in this pipeline
            from .compile import compile_source

            return compile_source(source, filename, opts)
        key = cache_key(source, filename, passes)
        with enabled_scope(opts.trace):
            with _trace.span(
                "session.compile", file=filename, mode=opts.mode.value
            ) as span:
                comp = self._compile_keyed(key, source, filename, opts, prefix, suffix)
                span.set(cache=comp.cache_state)
                return comp

    def _compile_keyed(self, key, source, filename, opts, prefix, suffix):
        blob, tier = self._lookup(key)
        if blob is not None:
            try:
                hli, frontend, rtl = _decode_blob(blob)
            except CacheCorruption as exc:
                self._evict_corrupt(key, tier, str(exc))
            else:
                if tier == "memory":
                    self.stats.hits_memory += 1
                else:
                    self.stats.hits_disk += 1
                    self._remember(key, blob)
                _metrics.inc("session.cache.hit", tier)
                return self._finish_warm(
                    hli, frontend, rtl, source, filename, opts, prefix, suffix, tier
                )
        self.stats.misses += 1
        _metrics.inc("session.cache.miss")
        return self._compile_cold(key, source, filename, opts, prefix, suffix)

    def _compile_cold(self, key, source, filename, opts, prefix, suffix):
        comp = Compilation(source=source, filename=filename, options=opts)
        ctx = PassContext(comp=comp, opts=opts)
        stats = PipelineStats()
        make_manager(prefix).run(ctx, stats=stats)
        with _trace.span("session.cache.store"):
            self._store(key, _encode_blob(comp))
        available = {a for p in prefix for a in p.provides}
        make_manager(suffix).run(ctx, initial=sorted(available), stats=stats)
        comp.pipeline_stats = stats
        return comp

    def _finish_warm(
        self, hli, frontend, rtl, source, filename, opts, prefix, suffix, tier
    ):
        comp = Compilation(
            source=source,
            filename=filename,
            hli=hli,
            frontend=frontend,
            rtl=rtl,
            options=opts,
            cache_state=tier,
        )
        ctx = PassContext(comp=comp, opts=opts)
        stats = PipelineStats(cached_prefix=tuple(p.name for p in prefix))
        available = {a for p in prefix for a in p.provides}
        make_manager(suffix).run(ctx, initial=sorted(available), stats=stats)
        comp.pipeline_stats = stats
        return comp

    # -- batch / parallel ------------------------------------------------------

    def compile_many(
        self,
        jobs: Sequence[tuple],
        max_workers: Optional[int] = None,
    ) -> list[Compilation]:
        """Compile a batch of ``(source, filename[, options])`` jobs.

        With more than one worker the batch fans out over a
        ``ProcessPoolExecutor``; every worker shares this session's
        on-disk cache tier (the in-memory tier is per-process).  Results
        come back in job order.  ``max_workers=None`` uses
        :func:`resolve_workers` (the ``REPRO_JOBS`` environment variable,
        else one worker per core, capped by the job count).
        """
        normalized = [_normalize_job(j) for j in jobs]
        workers = resolve_workers(max_workers, len(normalized))
        if workers <= 1:
            return [self.compile(*job) for job in normalized]
        from concurrent.futures import ProcessPoolExecutor

        cache_dir = str(self.cache_dir) if self.cache_dir is not None else None
        with _trace.span("session.compile_many", jobs=len(normalized), workers=workers):
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_compile_worker, cache_dir, src, fname, opts)
                    for src, fname, opts in normalized
                ]
                results = [f.result() for f in futures]
        for comp in results:
            if comp.cache_state == "memory":
                self.stats.hits_memory += 1
            elif comp.cache_state == "disk":
                self.stats.hits_disk += 1
            else:
                self.stats.misses += 1
            _metrics.inc("session.cache.fanout", comp.cache_state or "cold")
        return results


def _normalize_job(job: tuple) -> tuple[str, str, Optional[CompileOptions]]:
    if len(job) == 2:
        return (job[0], job[1], None)
    if len(job) == 3:
        return (job[0], job[1], job[2])
    raise ValueError("compile_many job must be (source, filename[, options])")


#: Per-worker-process sessions, keyed by cache dir (fork-safe lazily built).
_WORKER_SESSIONS: dict[Optional[str], CompilationSession] = {}


def _worker_session(cache_dir: Optional[str]) -> CompilationSession:
    sess = _WORKER_SESSIONS.get(cache_dir)
    if sess is None:
        sess = _WORKER_SESSIONS[cache_dir] = CompilationSession(cache_dir=cache_dir)
    return sess


def _compile_worker(
    cache_dir: Optional[str],
    source: str,
    filename: str,
    options: Optional[CompileOptions],
) -> Compilation:
    return _worker_session(cache_dir).compile(source, filename, options)


# -- generic fan-out -----------------------------------------------------------


def resolve_workers(requested: Optional[int], n_items: int) -> int:
    """Worker-count policy shared by every fan-out entry point.

    ``requested`` semantics: ``None`` → the ``REPRO_JOBS`` environment
    variable if set, else one per core; ``0`` → one per core; anything
    else is taken literally.  Always capped by ``n_items``.
    """
    if requested is None:
        env = os.environ.get("REPRO_JOBS", "")
        requested = int(env) if env.isdigit() and env != "" else 0
    if requested <= 0:
        requested = os.cpu_count() or 1
    return max(1, min(requested, n_items))


def parallel_map(fn, items: Sequence, max_workers: Optional[int] = None) -> list:
    """Order-preserving process-pool map with a serial single-worker path.

    ``fn`` must be a module-level (picklable) callable.
    """
    items = list(items)
    workers = resolve_workers(max_workers, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]


def compile_many(
    jobs: Sequence[tuple],
    max_workers: Optional[int] = None,
    session: Optional[CompilationSession] = None,
) -> list[Compilation]:
    """Module-level convenience: batch compile via ``session`` (or the default)."""
    sess = session if session is not None else default_session()
    return sess.compile_many(jobs, max_workers=max_workers)


# -- the default session -------------------------------------------------------

_DEFAULT: Optional[CompilationSession] = None


def default_session() -> CompilationSession:
    """Process-wide session (in-memory tier; ``REPRO_CACHE_DIR`` adds disk)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = CompilationSession(
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
            max_memory_entries=64,
        )
    return _DEFAULT


def reset_default_session() -> None:
    """Drop the process-wide session (tests use this for isolation)."""
    global _DEFAULT
    _DEFAULT = None
