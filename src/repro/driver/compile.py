"""End-to-end compilation driver (the pipeline of paper Figure 3).

``compile_source`` runs: parse → semantic analysis → HLI construction
(front-end) → lowering → HLI import/mapping → per-function basic-block
scheduling under a chosen dependence mode.  The result object carries
every intermediate artifact so tests, examples, and benchmark harnesses
can inspect any stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # avoid a load-time cycle with repro.checker
    from ..checker.rules import LintReport

from ..analysis.builder import FrontEndInfo, build_hli
from ..backend.ddg import DDGMode, DepStats
from ..backend.lowering import lower_program
from ..backend.mapping import MapStats, map_function
from ..backend.rtl import RTLProgram
from ..backend.scheduler import schedule_function
from ..frontend import parse_and_check
from ..hli.query import HLIQuery
from ..hli.tables import HLIFile
from ..machine.latencies import r4600_latency
from ..obs import enabled_scope
from ..obs import trace as _trace


@dataclass
class CompileOptions:
    """Knobs for one compilation."""

    #: dependence mode for the scheduler's DDG (paper Figure 5)
    mode: DDGMode = DDGMode.COMBINED
    #: run the basic-block list scheduler
    schedule: bool = True
    #: latency function driving scheduling priorities
    latency: Callable = r4600_latency
    #: run local CSE before scheduling
    cse: bool = False
    #: run loop-invariant code motion before scheduling
    licm: bool = False
    #: unroll innermost counted loops by this factor (1 = off)
    unroll: int = 1
    #: run the ``hli-lint`` soundness auditor after all passes; the
    #: report lands in :attr:`Compilation.lint_report`
    lint: bool = False
    #: enable the :mod:`repro.obs` tracing/metrics subsystem for the
    #: duration of this compile (no-op if it is already enabled)
    trace: bool = False


@dataclass
class Compilation:
    """Everything produced by one compilation."""

    source: str
    filename: str
    hli: HLIFile
    frontend: FrontEndInfo
    rtl: RTLProgram
    queries: dict[str, HLIQuery] = field(default_factory=dict)
    map_stats: dict[str, MapStats] = field(default_factory=dict)
    dep_stats: dict[str, DepStats] = field(default_factory=dict)
    options: Optional[CompileOptions] = None
    #: populated when :attr:`CompileOptions.lint` is set
    lint_report: Optional["LintReport"] = None

    def total_dep_stats(self) -> DepStats:
        total = DepStats()
        for s in self.dep_stats.values():
            total.merge(s)
        return total


def compile_source(
    source: str,
    filename: str = "<input>",
    options: Optional[CompileOptions] = None,
) -> Compilation:
    """Compile MiniC source through the full HLI pipeline."""
    opts = options or CompileOptions()
    with enabled_scope(opts.trace):
        with _trace.span("driver.compile", file=filename, mode=opts.mode.value):
            return _compile(source, filename, opts)


def _compile(source: str, filename: str, opts: CompileOptions) -> Compilation:
    program, table = parse_and_check(source, filename)
    hli, fe = build_hli(program, table)
    rtl = lower_program(program, table)

    result = Compilation(
        source=source,
        filename=filename,
        hli=hli,
        frontend=fe,
        rtl=rtl,
        options=opts,
    )

    with _trace.span("backend.mapping", file=filename):
        for name, fn in rtl.functions.items():
            entry = hli.entries.get(name)
            if entry is None:
                continue
            result.map_stats[name] = map_function(fn, entry)
            result.queries[name] = HLIQuery(entry)

    if opts.cse or opts.licm or opts.unroll > 1:
        from ..backend.passes import run_optimizations

        with _trace.span("backend.optimize", file=filename):
            run_optimizations(result, opts)

    if opts.schedule:
        for name, fn in rtl.functions.items():
            query = result.queries.get(name)
            sched = schedule_function(
                fn, mode=opts.mode, query=query, latency=opts.latency
            )
            result.dep_stats[name] = sched.stats

    if opts.lint:
        from ..checker.lint import lint_compilation

        result.lint_report = lint_compilation(result)
    return result
