"""End-to-end compilation driver (the pipeline of paper Figure 3).

``compile_source`` is a thin wrapper over the pass manager: it assembles
a pipeline — ``CompileOptions.pipeline`` when given, otherwise derived
from the option flags — and runs it via
:class:`repro.backend.pm.PassManager`, which enforces each pass's
declared inputs/outputs/invalidations (see
:mod:`repro.driver.passes`).  The result object carries every
intermediate artifact so tests, examples, and benchmark harnesses can
inspect any stage.

For cached, batched, or parallel compilation use
:class:`repro.driver.session.CompilationSession`, which reuses the
front-end artifacts (parse → HLI build → lowering) across compiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # avoid load-time cycles with repro.checker / backend.passes
    from ..backend.passes import OptStats
    from ..checker.rules import LintReport

from ..analysis.builder import FrontEndInfo
from ..backend.ddg import DDGMode, DepStats
from ..backend.mapping import MapStats
from ..backend.pm import PipelineStats
from ..backend.rtl import RTLProgram
from ..hli.query import HLIQuery
from ..hli.tables import HLIFile
from ..machine.latencies import r4600_latency
from ..obs import enabled_scope
from ..obs import trace as _trace


@dataclass
class CompileOptions:
    """Knobs for one compilation."""

    #: dependence mode for the scheduler's DDG (paper Figure 5)
    mode: DDGMode = DDGMode.COMBINED
    #: run the basic-block list scheduler
    schedule: bool = True
    #: latency function driving scheduling priorities
    latency: Callable = r4600_latency
    #: run local CSE before scheduling
    cse: bool = False
    #: run loop-invariant code motion before scheduling
    licm: bool = False
    #: unroll innermost counted loops by this factor (1 = off)
    unroll: int = 1
    #: run the ``hli-lint`` soundness auditor after all passes; the
    #: report lands in :attr:`Compilation.lint_report`
    lint: bool = False
    #: enable the :mod:`repro.obs` tracing/metrics subsystem for the
    #: duration of this compile (no-op if it is already enabled)
    trace: bool = False
    #: explicit pass sequence (see ``repro.driver.passes.KNOWN_PASSES``);
    #: ``None`` derives the pipeline from the flags above.  When set, the
    #: listed passes run unconditionally — the pipeline is data, the
    #: boolean flags above are just sugar for the default pipeline.
    pipeline: Optional[tuple[str, ...]] = None


@dataclass
class Compilation:
    """Everything produced by one compilation."""

    source: str
    filename: str
    hli: Optional[HLIFile] = None
    frontend: Optional[FrontEndInfo] = None
    rtl: Optional[RTLProgram] = None
    queries: dict[str, HLIQuery] = field(default_factory=dict)
    map_stats: dict[str, MapStats] = field(default_factory=dict)
    dep_stats: dict[str, DepStats] = field(default_factory=dict)
    options: Optional[CompileOptions] = None
    #: populated when the ``unroll``/``cse``/``licm`` passes run
    opt_stats: Optional["OptStats"] = None
    #: populated when :attr:`CompileOptions.lint` is set
    lint_report: Optional["LintReport"] = None
    #: what the pass manager actually ran (pass order, query rebuilds)
    pipeline_stats: Optional[PipelineStats] = None
    #: how the cache served this compile: ``"cold"`` (fully compiled),
    #: ``"memory"``/``"disk"`` (whole-file manifest hit from that tier),
    #: or ``"incremental"`` (manifest miss, but at least one function
    #: was served from the per-function tier)
    cache_state: str = "cold"
    #: per-function cache provenance (sessions only): ``"cold"``,
    #: ``"fe:<tier>"`` (front-end entry reused, back end re-ran), or
    #: ``"be:<tier>"`` (finished back-end artifacts spliced in)
    fn_cache_states: dict[str, str] = field(default_factory=dict)
    #: linked cross-module effects for extern functions (whole-program
    #: mode): function name -> :class:`~repro.analysis.refmod.EffectSet`.
    #: Consumed by the ``hli-build`` pass and by the lint reference
    #: rebuild, so both see the same external world.
    external_effects: Optional[dict] = None

    def total_dep_stats(self) -> DepStats:
        total = DepStats()
        for s in self.dep_stats.values():
            total.merge(s)
        return total


def compile_source(
    source: str,
    filename: str = "<input>",
    options: Optional[CompileOptions] = None,
    external_effects: Optional[dict] = None,
) -> Compilation:
    """Compile MiniC source through the full HLI pipeline (cold, uncached).

    ``external_effects`` (whole-program mode) maps extern function names
    to linked :class:`~repro.analysis.refmod.EffectSet` summaries; the
    HLI builder uses them instead of the conservative TOP/TOP default.
    """
    from .passes import PassContext, run_pipeline

    opts = options or CompileOptions()
    with enabled_scope(opts.trace):
        with _trace.span("driver.compile", file=filename, mode=opts.mode.value):
            ctx = PassContext(
                comp=Compilation(
                    source=source,
                    filename=filename,
                    options=opts,
                    external_effects=external_effects,
                ),
                opts=opts,
            )
            run_pipeline(ctx)
            return ctx.comp
