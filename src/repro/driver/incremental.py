"""Per-function dependency fingerprints for incremental recompilation.

The per-function artifact cache (:mod:`repro.driver.session`) must answer
one question soundly: *is this function's cached HLI entry / RTL still
valid for the current source?*  Hashing the function's own text is not
enough — its HLI observables also depend on facts *outside* its span:

* the **program shape**: global/struct/function declarations (a struct
  field reorder changes offsets in every function that uses it);
* the **facts of referenced symbols**: storage class, type, whether the
  address is taken (register-promotion flips), and — for pointers — the
  whole-program points-to set (the alias table is built from it);
* the **REF/MOD summaries of callees**: the call REF/MOD table embeds
  each callee's transitive effect set (paper Section 2.2.4);
* the function's **start line**: HLI line tables and region spans use
  absolute source lines, so a function that moved cannot reuse its entry
  (an edit that shifts lines invalidates everything below it — the
  price of the paper's line-number join key).

The fingerprint therefore *chains*: each function gets a ``local`` hash
over its span + referenced-symbol facts + direct-callee effect sets, and
its cache key folds in the local hashes of every function reachable
through calls.  Editing one function changes its local hash and with it
the key of the function itself **and every transitive caller** — exactly
the invalidation set the back end needs, with no global generation
counter and no false sharing between unrelated functions.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..analysis.alias import TOP, PointsToResult
from ..analysis.refmod import EffectSet
from ..frontend import ast_nodes as ast
from ..frontend.symbols import Symbol, SymbolTable

__all__ = [
    "FunctionKeys",
    "function_keys",
    "function_spans",
    "transitive_callers",
]


@dataclass
class FunctionKeys:
    """Fingerprints + call-graph structure for one translation unit."""

    #: function names in program order
    order: list[str] = field(default_factory=list)
    #: name -> front-end cache key (hex)
    fe: dict[str, str] = field(default_factory=dict)
    #: name -> hash of the function's own span + direct dependencies
    local: dict[str, str] = field(default_factory=dict)
    #: name -> defined functions it calls directly
    callees: dict[str, set[str]] = field(default_factory=dict)
    #: reverse edges of ``callees``
    callers: dict[str, set[str]] = field(default_factory=dict)
    #: name -> (start_line, end_line) of the source span
    spans: dict[str, tuple[int, int]] = field(default_factory=dict)


def function_spans(source: str, program: ast.Program) -> dict[str, tuple[int, int]]:
    """Partition the source's lines among its top-level definitions.

    A function's span runs from its declaration line to the line before
    the next top-level declaration (or EOF).  Trailing comments between
    functions land in the preceding span — a spurious invalidation at
    worst, never a stale hit.
    """
    starts: list[tuple[int, str]] = []
    for fn in program.functions:
        starts.append((fn.line, fn.name))
    for decl in program.globals:
        starts.append((decl.line, ""))
    for st in program.structs:
        starts.append((st.line, ""))
    starts.sort(key=lambda t: t[0])
    n_lines = source.count("\n") + 1
    spans: dict[str, tuple[int, int]] = {}
    for i, (line, name) in enumerate(starts):
        if not name:
            continue
        end = starts[i + 1][0] - 1 if i + 1 < len(starts) else n_lines
        spans[name] = (line, max(line, end))
    return spans


# -- serialization of facts ----------------------------------------------------


def _obj_name(obj) -> str:
    """Stable name for an abstract memory object (Symbol/HeapObject/TOP)."""
    if obj is TOP:
        return "<top>"
    if isinstance(obj, Symbol):
        return f"{obj.name}/{obj.storage.value}/{obj.ty}/{obj.line}"
    return getattr(obj, "name", repr(obj))


def _effects_text(eff: EffectSet) -> str:
    ref = ",".join(sorted(_obj_name(o) for o in eff.ref))
    mod = ",".join(sorted(_obj_name(o) for o in eff.mod))
    return f"ref[{ref}]mod[{mod}]"


def _symbol_facts(sym: Symbol, pts: PointsToResult) -> str:
    parts = [
        sym.name,
        sym.storage.value,
        str(sym.ty),
        "addr" if sym.address_taken else "reg",
        "mem" if sym.in_memory else "promoted",
    ]
    if sym.ty.is_pointer:
        targets = ",".join(sorted(_obj_name(o) for o in pts.targets(sym)))
        parts.append(f"pts[{targets}]")
    return "/".join(parts)


def _function_refs(fn: ast.FuncDef) -> tuple[set[Symbol], set[str]]:
    """Symbols referenced and functions called directly by ``fn``."""
    syms: set[Symbol] = set()
    callees: set[str] = set()
    for p in fn.params:
        if isinstance(p.symbol, Symbol):
            syms.add(p.symbol)
    assert fn.body is not None
    for stmt in ast.walk_stmts(fn.body):
        if isinstance(stmt, ast.VarDecl) and isinstance(stmt.symbol, Symbol):
            syms.add(stmt.symbol)
        for e in ast.stmt_exprs(stmt):
            for x in ast.walk_exprs(e):
                if isinstance(x, ast.Name) and isinstance(x.symbol, Symbol):
                    syms.add(x.symbol)
                elif isinstance(x, ast.Call):
                    callees.add(x.callee)
    return syms, callees


def _shape_hash(program: ast.Program, table: SymbolTable) -> str:
    """Hash of every top-level declaration *signature* (not bodies).

    Changing any global's type, any struct layout, or any function
    prototype retires every per-function entry in the file — these facts
    feed size/offset/ABI decisions that the per-symbol slices cannot
    always localize (a struct's field offsets, for one).
    """
    h = hashlib.sha256()
    h.update(b"shape\x00")
    for decl in program.globals:
        sym = decl.symbol
        if isinstance(sym, Symbol):
            h.update(f"g:{sym.name}:{sym.ty}:{sym.storage.value}\n".encode())
    for st in program.structs:
        fields = ",".join(f"{n}:{t}" for n, t in st.fields)
        h.update(f"s:{st.name}:{fields}\n".encode())
    for name, fsym in sorted(table.functions.items()):
        params = ",".join(str(t) for t in fsym.ty.params)
        h.update(
            f"f:{name}:{fsym.ty.ret}({params}):"
            f"{int(fsym.defined)}{int(fsym.external)}\n".encode()
        )
    return h.hexdigest()


# -- key construction ----------------------------------------------------------


def function_keys(
    source: str,
    program: ast.Program,
    table: SymbolTable,
    pts: PointsToResult,
    refmod: dict[str, EffectSet],
    salt: str = "",
) -> FunctionKeys:
    """Compute chained per-function cache keys for a checked program.

    ``salt`` folds in everything function-independent that the caller
    wants in the key (cache format version, front-end pass fingerprints,
    filename).  ``refmod`` must be the solved transitive effect map —
    direct callees' entries then carry their whole downstream story.
    """
    keys = FunctionKeys(order=[fn.name for fn in program.functions])
    keys.spans = function_spans(source, program)
    lines = source.split("\n")
    shape = _shape_hash(program, table)
    defined = set(keys.order)

    top_effects = _effects_text(EffectSet(ref={TOP}, mod={TOP}))
    for fn in program.functions:
        start, end = keys.spans[fn.name]
        span_text = "\n".join(lines[start - 1 : end])
        syms, called = _function_refs(fn)
        h = hashlib.sha256()
        h.update(b"fn-local\x00")
        h.update(f"{fn.name}@{start}\n".encode())
        h.update(span_text.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
        for fact in sorted(_symbol_facts(s, pts) for s in syms):
            h.update(fact.encode())
            h.update(b"\n")
        for callee in sorted(called):
            eff = refmod.get(callee)
            h.update(f"call:{callee}:".encode())
            h.update((_effects_text(eff) if eff is not None else top_effects).encode())
            h.update(b"\n")
        keys.local[fn.name] = h.hexdigest()
        keys.callees[fn.name] = {c for c in called if c in defined}

    for name in keys.order:
        keys.callers.setdefault(name, set())
    for name, called in keys.callees.items():
        for c in called:
            keys.callers.setdefault(c, set()).add(name)

    # Chain: fold the local hash of every function reachable through
    # calls into the key.  Reachability (not SCC topological order)
    # handles recursion cycles with no special casing.
    for name in keys.order:
        reachable = _reachable(keys.callees, name)
        h = hashlib.sha256()
        h.update(b"fn-key\x00")
        h.update(salt.encode())
        h.update(b"\x00")
        h.update(shape.encode())
        h.update(b"\x00")
        h.update(keys.local[name].encode())
        for dep in sorted(reachable - {name}):
            h.update(f"\x00{dep}={keys.local[dep]}".encode())
        keys.fe[name] = h.hexdigest()
    return keys


def _reachable(edges: dict[str, set[str]], root: str) -> set[str]:
    seen = {root}
    work = [root]
    while work:
        for nxt in edges.get(work.pop(), ()):
            if nxt not in seen:
                seen.add(nxt)
                work.append(nxt)
    return seen


def transitive_callers(keys: FunctionKeys, names: set[str]) -> set[str]:
    """Every function whose key depends on any of ``names`` (excl. them).

    This is the invalidation set an edit to ``names`` adds on top of the
    edited functions themselves: all transitive callers, because their
    chained fingerprints fold in the editees' local hashes.
    """
    out: set[str] = set()
    work = list(names)
    while work:
        for caller in keys.callers.get(work.pop(), ()):
            if caller not in out and caller not in names:
                out.add(caller)
                work.append(caller)
    return out
