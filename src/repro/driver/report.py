"""Command-line report generator: regenerates the paper's tables.

Usage::

    hli-report table1     # Table 1: program characteristics / HLI sizes
    hli-report table2     # Table 2: dependence-test statistics
    hli-report speedups   # Table 2 (last two columns): machine-model speedups
    hli-report all        # everything

Each report prints the measured values side by side with the numbers
published in the paper, so shape agreement is visible at a glance.
"""

from __future__ import annotations

import argparse
import sys

from ..backend.ddg import DDGMode
from ..bench.stats import geomean
from ..hli.sizes import size_report
from ..workloads.suite import BENCHMARKS, BenchmarkSpec
from .compile import CompileOptions, compile_source
from .timing import time_benchmark


def _geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    return geomean(max(v, 1e-12) for v in values)


def report_table1(out=None) -> None:
    """Table 1: code size, HLI size, HLI bytes per line."""
    out = out if out is not None else sys.stdout
    out.write("Table 1 — Benchmark program characteristics\n")
    out.write(
        f"{'Benchmark':14s} {'Suite':7s} {'lines':>6s} {'HLI(B)':>7s} "
        f"{'B/line':>7s} {'paper B/line':>13s}\n"
    )
    int_ratios: list[float] = []
    fp_ratios: list[float] = []
    for b in BENCHMARKS:
        comp = compile_source(b.source, b.name, CompileOptions(schedule=False))
        rep = size_report(comp.hli, b.source)
        (fp_ratios if b.is_float else int_ratios).append(rep.bytes_per_line)
        out.write(
            f"{b.name:14s} {b.suite:7s} {rep.code_lines:6d} {rep.hli_bytes:7d} "
            f"{rep.bytes_per_line:7.1f} {b.paper.hli_per_line:13d}\n"
        )
    out.write(
        f"{'int mean':14s} {'':7s} {'':6s} {'':7s} "
        f"{sum(int_ratios)/len(int_ratios):7.1f} {13:13d}\n"
    )
    out.write(
        f"{'fp mean':14s} {'':7s} {'':6s} {'':7s} "
        f"{sum(fp_ratios)/len(fp_ratios):7.1f} {27:13d}\n"
    )


def report_table2(out=None) -> None:
    """Table 2 (columns 1-6): dependence query statistics per benchmark."""
    out = out if out is not None else sys.stdout
    out.write("Table 2 — Dependence tests in the first scheduling pass\n")
    out.write(
        f"{'Benchmark':14s} {'tests':>6s} {'t/line':>7s} {'GCC%':>6s} {'HLI%':>6s} "
        f"{'comb%':>6s} {'red%':>6s} {'paper red%':>11s}\n"
    )
    int_red: list[float] = []
    fp_red: list[float] = []
    for b in BENCHMARKS:
        comp = compile_source(b.source, b.name, CompileOptions(mode=DDGMode.COMBINED))
        s = comp.total_dep_stats()
        rep = size_report(comp.hli, b.source)
        per_line = s.total_tests / rep.code_lines if rep.code_lines else 0.0
        pct = lambda n: 100.0 * n / s.total_tests if s.total_tests else 0.0  # noqa: E731
        (fp_red if b.is_float else int_red).append(s.reduction * 100)
        out.write(
            f"{b.name:14s} {s.total_tests:6d} {per_line:7.2f} {pct(s.gcc_yes):6.1f} "
            f"{pct(s.hli_yes):6.1f} {pct(s.combined_yes):6.1f} "
            f"{s.reduction*100:6.1f} {b.paper.reduction_pct:11d}\n"
        )
    out.write(
        f"{'int mean':14s} {'':6s} {'':7s} {'':6s} {'':6s} {'':6s} "
        f"{sum(int_red)/len(int_red):6.1f} {48:11d}\n"
    )
    out.write(
        f"{'fp mean':14s} {'':6s} {'':7s} {'':6s} {'':6s} {'':6s} "
        f"{sum(fp_red)/len(fp_red):6.1f} {54:11d}\n"
    )


def report_speedups(out=None, benches: list[BenchmarkSpec] | None = None) -> None:
    """Table 2 (columns 7-8): R4600 / R10000 speedups from HLI scheduling."""
    out = out if out is not None else sys.stdout
    out.write("Table 2 — Execution speedups (GCC-only schedule vs HLI schedule)\n")
    out.write(
        f"{'Benchmark':14s} {'R4600':>7s} {'paper':>6s} {'R10000':>7s} {'paper':>6s}"
        f" {'results':>8s}\n"
    )
    sp4600: list[float] = []
    sp10000: list[float] = []
    for b in benches if benches is not None else BENCHMARKS:
        t = time_benchmark(b)
        sp4600.append(t.speedup_r4600)
        sp10000.append(t.speedup_r10000)
        out.write(
            f"{b.name:14s} {t.speedup_r4600:7.3f} {b.paper.speedup_r4600:6.2f} "
            f"{t.speedup_r10000:7.3f} {b.paper.speedup_r10000:6.2f} "
            f"{'match' if t.results_match else 'DIFFER':>8s}\n"
        )
    out.write(
        f"{'geomean':14s} {_geomean(sp4600):7.3f} {'':6s} {_geomean(sp10000):7.3f}\n"
    )


def report_swp(out=None) -> None:
    """Extension: LCDD-driven software-pipelining MII headroom."""
    out = out if out is not None else sys.stdout
    from ..backend.swp import analyze_loop_pipelining
    from ..hli.query import HLIQuery

    out.write("Software pipelining — MII bounds (conservative vs LCDD)\n")
    out.write(
        f"{'Benchmark':14s} {'loops':>6s} {'gcc MII sum':>12s} {'hli MII sum':>12s}"
        f" {'headroom':>9s}\n"
    )
    for b in BENCHMARKS:
        if not b.is_float:
            continue
        comp = compile_source(b.source, b.name, CompileOptions(schedule=False))
        rows = []
        for fname, fn in comp.rtl.functions.items():
            entry = comp.hli.entries.get(fname)
            if entry is None:
                continue
            rows.extend(analyze_loop_pipelining(fn, HLIQuery(entry)))
        if not rows:
            continue
        gcc_sum = sum(r.gcc.mii for r in rows)
        hli_sum = sum(r.hli.mii for r in rows)
        out.write(
            f"{b.name:14s} {len(rows):6d} {gcc_sum:12d} {hli_sum:12d}"
            f" {gcc_sum / max(hli_sum, 1):9.2f}\n"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hli-report", description="Regenerate the paper's tables."
    )
    parser.add_argument(
        "report",
        choices=["table1", "table2", "speedups", "swp", "all"],
        help="which table to regenerate",
    )
    args = parser.parse_args(argv)
    if args.report in ("table1", "all"):
        report_table1()
        print()
    if args.report in ("table2", "all"):
        report_table2()
        print()
    if args.report in ("swp", "all"):
        report_swp()
        print()
    if args.report in ("speedups", "all"):
        report_speedups()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
