"""``repro-stats`` — compile a workload with instrumentation on and dump
traces/metrics.

Usage::

    repro-stats --suite --format chrome --out trace.json
    repro-stats --benchmark wc --benchmark 101.tomcatv --format stats
    repro-stats file.c --execute --format text
    python -m repro.obs.cli --suite --format stats   # equivalent module form

Formats:

* ``chrome`` — Chrome ``trace_event`` JSON (open in ``chrome://tracing``
  or https://ui.perfetto.dev);
* ``stats``  — flat JSON: every counter/gauge/histogram plus per-span
  wall-time aggregates;
* ``text``   — human-readable span tree (default).

Exit codes: ``0`` success; ``2`` bad arguments or front-end compile
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .. import obs
from ..backend.ddg import DDGMode
from ..frontend.errors import CompileError
from ..workloads.suite import BENCHMARKS, BenchmarkSpec, by_name
from . import export, trace

_MODES = {"gcc": DDGMode.GCC, "hli": DDGMode.HLI, "combined": DDGMode.COMBINED}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-stats",
        description="Compile a workload with tracing/metrics enabled and "
        "dump the recorded spans and counters.",
    )
    p.add_argument("files", nargs="*", help="MiniC source files to compile")
    p.add_argument(
        "--suite",
        action="store_true",
        help="compile every built-in benchmark (the paper's Tables 1/2 suite)",
    )
    p.add_argument(
        "--benchmark",
        action="append",
        default=[],
        metavar="NAME",
        help="compile one built-in benchmark by name (repeatable)",
    )
    p.add_argument(
        "--mode",
        choices=sorted(_MODES),
        default="combined",
        help="dependence mode for the scheduler's DDG (default: %(default)s)",
    )
    p.add_argument("--cse", action="store_true", help="run local CSE")
    p.add_argument("--licm", action="store_true", help="run LICM")
    p.add_argument(
        "--unroll",
        type=int,
        default=1,
        metavar="N",
        help="unroll innermost counted loops by N (default: off)",
    )
    p.add_argument("--lint", action="store_true", help="run hli-lint after compiling")
    p.add_argument(
        "--execute",
        action="store_true",
        help="also execute each workload and time it on both machine models",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="route compiles through a disk-backed CompilationSession; "
        "the session.cache.* counters (file/function/back-end tiers) "
        "then appear in --format stats",
    )
    p.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict the disk cache above N bytes (default: unbounded; "
        "requires --cache-dir)",
    )
    p.add_argument(
        "--format",
        choices=("chrome", "stats", "text"),
        default="text",
        help="output format (default: %(default)s)",
    )
    p.add_argument(
        "--out",
        default="-",
        metavar="PATH",
        help="output file, '-' for stdout (default: stdout)",
    )
    return p


def _workloads(args: argparse.Namespace) -> list[BenchmarkSpec]:
    specs: list[BenchmarkSpec] = []
    if args.suite:
        specs.extend(BENCHMARKS)
    for name in args.benchmark:
        specs.append(by_name(name))
    for path in args.files:
        with open(path) as f:
            source = f.read()
        specs.append(
            BenchmarkSpec(name=path, suite="file", source=source, is_float=False)
        )
    return specs


def run_workloads(specs: list[BenchmarkSpec], args: argparse.Namespace) -> None:
    """Compile (and optionally execute/time) each spec with obs enabled."""
    from ..driver.compile import CompileOptions, compile_source

    options = CompileOptions(
        mode=_MODES[args.mode],
        cse=args.cse,
        licm=args.licm,
        unroll=args.unroll,
        lint=args.lint,
        trace=True,
    )
    if args.cache_dir:
        from ..driver.session import CompilationSession

        session = CompilationSession(
            cache_dir=args.cache_dir, max_disk_bytes=args.cache_max_bytes
        )
        compile_fn = session.compile
    else:
        compile_fn = lambda src, name, opts: compile_source(src, name, opts)  # noqa: E731
    for spec in specs:
        comp = compile_fn(spec.source, spec.name, options)
        if args.execute:
            from ..machine.executor import execute
            from ..machine.pipeline import R4600Model
            from ..machine.superscalar import R10000Model

            with trace.span("machine.run", benchmark=spec.name):
                res = execute(comp.rtl, spec.entry, input_text=spec.input_text)
                for model in (R4600Model(), R10000Model()):
                    model.time(res.trace)


def render(fmt: str) -> str:
    if fmt == "chrome":
        return json.dumps(export.chrome_trace(), indent=2)
    if fmt == "stats":
        return json.dumps(export.stats_snapshot(), indent=2)
    return export.text_tree()


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.unroll < 1:
        parser.error("--unroll must be >= 1")
    if args.cache_max_bytes is not None and not args.cache_dir:
        parser.error("--cache-max-bytes requires --cache-dir")
    obs.reset()
    try:
        specs = _workloads(args)
        if not specs:
            parser.error("nothing to compile: pass files, --suite, or --benchmark")
        with obs.enabled_scope():
            run_workloads(specs, args)
    except (OSError, KeyError, CompileError) as exc:
        print(f"repro-stats: error: {exc}", file=sys.stderr)
        return 2

    text = render(args.format)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(
            f"repro-stats: wrote {args.format} output for {len(specs)} "
            f"workload(s) to {args.out}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
