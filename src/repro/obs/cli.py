"""``repro-stats`` — compile a workload with instrumentation on and dump
traces/metrics.

Usage::

    repro-stats --suite --format chrome --out trace.json
    repro-stats --benchmark wc --benchmark 101.tomcatv --format stats
    repro-stats file.c --execute --format text
    python -m repro.obs.cli --suite --format stats   # equivalent module form

Formats:

* ``chrome`` — Chrome ``trace_event`` JSON (open in ``chrome://tracing``
  or https://ui.perfetto.dev);
* ``stats``  — flat JSON: every counter/gauge/histogram plus per-span
  wall-time aggregates;
* ``text``   — human-readable span tree (default).

Exit codes: ``0`` success; ``2`` bad arguments or front-end compile
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .. import obs
from ..backend.ddg import DDGMode
from ..frontend.errors import CompileError
from ..workloads.suite import BENCHMARKS, BenchmarkSpec, by_name
from . import export, trace

_MODES = {"gcc": DDGMode.GCC, "hli": DDGMode.HLI, "combined": DDGMode.COMBINED}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-stats",
        description="Compile a workload with tracing/metrics enabled and "
        "dump the recorded spans and counters.",
    )
    p.add_argument("files", nargs="*", help="MiniC source files to compile")
    p.add_argument(
        "--suite",
        action="store_true",
        help="compile every built-in benchmark (the paper's Tables 1/2 suite)",
    )
    p.add_argument(
        "--benchmark",
        action="append",
        default=[],
        metavar="NAME",
        help="compile one built-in benchmark by name (repeatable)",
    )
    p.add_argument(
        "--mode",
        choices=sorted(_MODES),
        default="combined",
        help="dependence mode for the scheduler's DDG (default: %(default)s)",
    )
    p.add_argument("--cse", action="store_true", help="run local CSE")
    p.add_argument("--licm", action="store_true", help="run LICM")
    p.add_argument(
        "--unroll",
        type=int,
        default=1,
        metavar="N",
        help="unroll innermost counted loops by N (default: off)",
    )
    p.add_argument("--lint", action="store_true", help="run hli-lint after compiling")
    p.add_argument(
        "--execute",
        action="store_true",
        help="also execute each workload and time it on both machine models",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="route compiles through a disk-backed CompilationSession; "
        "the session.cache.* counters (file/function/back-end tiers) "
        "then appear in --format stats",
    )
    p.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict the disk cache above N bytes (default: unbounded; "
        "requires --cache-dir)",
    )
    p.add_argument(
        "--server",
        default=None,
        metavar="HOST:PORT",
        help="also query a running repro-serve daemon's stats endpoint and "
        "fold its serving counters (queue depth, rejections, coalesced "
        "hits, cache tiers) into the output; workloads become optional",
    )
    p.add_argument(
        "--format",
        choices=("chrome", "stats", "text"),
        default="text",
        help="output format (default: %(default)s)",
    )
    p.add_argument(
        "--out",
        default="-",
        metavar="PATH",
        help="output file, '-' for stdout (default: stdout)",
    )
    return p


def _workloads(args: argparse.Namespace) -> list[BenchmarkSpec]:
    specs: list[BenchmarkSpec] = []
    if args.suite:
        specs.extend(BENCHMARKS)
    for name in args.benchmark:
        specs.append(by_name(name))
    for path in args.files:
        with open(path) as f:
            source = f.read()
        specs.append(
            BenchmarkSpec(name=path, suite="file", source=source, is_float=False)
        )
    return specs


def run_workloads(specs: list[BenchmarkSpec], args: argparse.Namespace) -> None:
    """Compile (and optionally execute/time) each spec with obs enabled."""
    from ..driver.compile import CompileOptions, compile_source

    options = CompileOptions(
        mode=_MODES[args.mode],
        cse=args.cse,
        licm=args.licm,
        unroll=args.unroll,
        lint=args.lint,
        trace=True,
    )
    if args.cache_dir:
        from ..driver.session import CompilationSession

        session = CompilationSession(
            cache_dir=args.cache_dir, max_disk_bytes=args.cache_max_bytes
        )
        compile_fn = session.compile
    else:
        compile_fn = lambda src, name, opts: compile_source(src, name, opts)  # noqa: E731
    for spec in specs:
        comp = compile_fn(spec.source, spec.name, options)
        if args.execute:
            from ..machine.executor import execute
            from ..machine.pipeline import R4600Model
            from ..machine.superscalar import R10000Model

            with trace.span("machine.run", benchmark=spec.name):
                res = execute(comp.rtl, spec.entry, input_text=spec.input_text)
                for model in (R4600Model(), R10000Model()):
                    model.time(res.trace)


def fetch_server_stats(spec: str) -> dict:
    """One ``stats`` round-trip against a running repro-serve daemon."""
    from ..serve.client import ServeClient, parse_server_spec

    host, port = parse_server_spec(spec)
    with ServeClient(host, port, timeout=10.0) as client:
        return client.stats()


def ingest_server_stats(stats: dict) -> None:
    """Fold a daemon stats payload into the local metrics registry.

    Counters land under ``serve.*`` / ``serve.session.*`` and latency
    summaries become gauges, so every ``--format`` sees them through the
    normal exporters (requires the registry to be enabled).
    """
    from . import metrics

    for key in ("queue_depth", "inflight", "uptime_seconds"):
        metrics.gauge(f"serve.{key}", float(stats.get(key, 0)))
    metrics.gauge("serve.draining", 1.0 if stats.get("draining") else 0.0)
    for name, value in stats.get("counters", {}).items():
        if isinstance(value, dict):  # per-op breakdowns, e.g. "requests"
            for op, n in value.items():
                metrics.add(f"serve.{name}.{op}", int(n))
        else:
            metrics.add(f"serve.{name}", int(value))
    for name, value in stats.get("session_cache", {}).items():
        metrics.add(f"serve.session.{name}", int(value))
    for op, summary in stats.get("latency_ms", {}).items():
        for stat in ("mean", "p50", "p95", "max"):
            if summary.get(stat) is not None:
                metrics.gauge(f"serve.latency_ms.{op}.{stat}", float(summary[stat]))
        metrics.add(f"serve.latency_ms.{op}.count", int(summary.get("count", 0)))


def _server_counter_events(stats: dict) -> list[dict]:
    """Chrome ``"C"`` (counter) events for the daemon's live load state."""
    return [
        {
            "name": f"serve.{key}",
            "ph": "C",
            "ts": 0,
            "pid": 2,
            "tid": 1,
            "args": {key: stats.get(key, 0)},
        }
        for key in ("queue_depth", "inflight")
    ] + [
        {
            "name": f"serve.counters.{name}",
            "ph": "C",
            "ts": 0,
            "pid": 2,
            "tid": 1,
            "args": {name: value},
        }
        for name, value in stats.get("counters", {}).items()
        if not isinstance(value, dict)
    ]


def _server_text_section(spec: str, stats: dict) -> str:
    lines = [f"repro-serve @ {spec}"]
    lines.append(f"  uptime      {stats.get('uptime_seconds', 0):.1f}s"
                 f"  draining={stats.get('draining', False)}")
    lines.append(f"  load        queue_depth={stats.get('queue_depth', 0)}"
                 f" inflight={stats.get('inflight', 0)}")
    c = stats.get("counters", {})
    reqs = c.get("requests", {})
    total = sum(reqs.values()) if isinstance(reqs, dict) else reqs
    lines.append(f"  requests    total={total} ok={c.get('ok', 0)}"
                 f" errors={c.get('errors', 0)} rejected={c.get('rejected', 0)}"
                 f" timeouts={c.get('timeouts', 0)}")
    lines.append(f"  coalescing  pipeline_runs={c.get('pipeline_runs', 0)}"
                 f" coalesced_hits={c.get('coalesced_hits', 0)}")
    sc = stats.get("session_cache", {})
    lines.append(f"  cache       hits_memory={sc.get('hits_memory', 0)}"
                 f" hits_disk={sc.get('hits_disk', 0)}"
                 f" misses={sc.get('misses', 0)}")
    for op, h in stats.get("latency_ms", {}).items():
        lines.append(f"  latency     {op}: n={h.get('count', 0)}"
                     f" p50={h.get('p50', 0):.1f}ms p95={h.get('p95', 0):.1f}ms")
    return "\n".join(lines)


def render(fmt: str, server_spec: str | None = None,
           server_stats: dict | None = None) -> str:
    if fmt == "chrome":
        doc = export.chrome_trace()
        if server_stats is not None:
            doc["traceEvents"].extend(_server_counter_events(server_stats))
        return json.dumps(doc, indent=2)
    if fmt == "stats":
        doc = export.stats_snapshot()
        if server_stats is not None:
            doc["server"] = server_stats
        return json.dumps(doc, indent=2)
    text = export.text_tree()
    if server_stats is not None:
        section = _server_text_section(server_spec or "?", server_stats)
        text = f"{text}\n\n{section}" if text else section
    return text


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.unroll < 1:
        parser.error("--unroll must be >= 1")
    if args.cache_max_bytes is not None and not args.cache_dir:
        parser.error("--cache-max-bytes requires --cache-dir")
    obs.reset()
    server_stats = None
    try:
        specs = _workloads(args)
        if not specs and not args.server:
            parser.error("nothing to compile: pass files, --suite, "
                         "--benchmark, or --server")
        with obs.enabled_scope():
            run_workloads(specs, args)
            if args.server:
                from ..serve.client import ServerError, ServerUnavailable

                try:
                    server_stats = fetch_server_stats(args.server)
                except (ServerError, ServerUnavailable) as exc:
                    print(f"repro-stats: error: {exc}", file=sys.stderr)
                    return 2
                ingest_server_stats(server_stats)
    except (OSError, KeyError, CompileError) as exc:
        print(f"repro-stats: error: {exc}", file=sys.stderr)
        return 2

    text = render(args.format, args.server, server_stats)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(
            f"repro-stats: wrote {args.format} output for {len(specs)} "
            f"workload(s) to {args.out}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
