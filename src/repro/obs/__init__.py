"""repro.obs — pipeline-wide tracing, metrics, and profiling.

The reproduction's whole argument is quantitative (HLI sizes, deleted
DDG edges, speedups), so this package makes the pipeline *observable*:

* :mod:`repro.obs.trace`   — hierarchical wall-time spans over every
  stage (``driver.compile`` → ``frontend.parse`` → … →
  ``backend.schedule``), nested like the paper's Figure 3;
* :mod:`repro.obs.metrics` — process-wide counters, gauges, and
  histograms (HLI query verdicts, DDG edges kept/deleted per mode,
  scheduler ready-list lengths, maintenance mutations, lint findings,
  dynamic instruction/cycle counts);
* :mod:`repro.obs.export`  — Chrome ``trace_event`` JSON, flat JSON
  stats, and a human text tree;
* :mod:`repro.obs.cli`     — the ``repro-stats`` command: compile a
  workload (or the whole suite) with instrumentation on and dump
  traces/metrics.

Everything is **off by default** with a no-op fast path (one boolean
check per call site); turn it on with :func:`enable`, the
``REPRO_TRACE=1`` environment variable, or
``CompileOptions(trace=True)``.  See ``docs/OBSERVABILITY.md`` for the
span taxonomy and counter catalogue.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from . import export, metrics, trace

__all__ = [
    "trace",
    "metrics",
    "export",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "enabled_scope",
]


def enable() -> None:
    """Turn on both tracing and metrics."""
    trace.enable()
    metrics.enable()


def disable() -> None:
    """Turn off both tracing and metrics (recorded data stays readable)."""
    trace.disable()
    metrics.disable()


def is_enabled() -> bool:
    """True when either half of the subsystem is recording."""
    return trace.is_enabled() or metrics.is_enabled()


def reset() -> None:
    """Drop all recorded spans and metrics (keeps the on/off switches)."""
    trace.reset()
    metrics.reset()


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Enable the subsystem inside the ``with`` body, restoring on exit.

    Already-enabled instrumentation is left untouched, so scopes nest
    (``validate --trace-out`` enables globally; each inner
    ``compile_source`` scope is then a pass-through).
    """
    if not on or is_enabled():
        yield
        return
    enable()
    try:
        yield
    finally:
        disable()


if os.environ.get("REPRO_TRACE", "") not in ("", "0"):
    enable()
