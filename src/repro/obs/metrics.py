"""Process-wide counter / gauge / histogram registry.

Names are dotted paths (``hli.query.get_equiv_acc.none``); hot call
sites pass the varying suffix as a separate ``label`` argument so the
disabled fast path returns **before** any string concatenation::

    metrics.inc("hli.query.get_equiv_acc", result.value)

Like :mod:`repro.obs.trace`, the registry is off by default: every
mutator checks one module-level boolean and returns immediately, and the
no-op tests assert that a disabled compile leaves the registry
bit-for-bit empty.

Metric kinds
------------
* **counter** — monotonically increasing int (:func:`inc` / :func:`add`);
* **gauge**   — last-written value (:func:`gauge`);
* **histogram** — distribution summary (:func:`observe`): count, sum,
  min, max, and a bounded sample reservoir for percentile estimates.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = [
    "inc",
    "add",
    "gauge",
    "observe",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "counters",
    "gauges",
    "histograms",
    "snapshot",
    "mutations",
    "Histogram",
]

_enabled: bool = False

#: Serializes registry mutations.  Acquired only *after* the enabled
#: check, so the disabled fast path stays a single boolean test; the
#: read-modify-write updates below are not atomic under free-threaded
#: access, and the repro-serve worker pool mutates from many threads.
_lock = threading.Lock()

_counters: dict[str, int] = {}
_gauges: dict[str, float] = {}
_hists: dict[str, "Histogram"] = {}

#: Total registry mutations ever applied (diagnostic for the no-op tests).
_mutations: int = 0

#: Samples kept per histogram for percentile estimation.
RESERVOIR = 4096


class Histogram:
    """Running distribution summary with a bounded sample reservoir."""

    __slots__ = ("count", "total", "min", "max", "samples", "_stride", "_skip")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: list[float] = []
        # Once the reservoir is full, keep every _stride-th observation
        # (deterministic decimation; no RNG so runs are reproducible).
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._skip += 1
        if self._skip >= self._stride:
            self._skip = 0
            self.samples.append(value)
            if len(self.samples) >= RESERVOIR:
                self.samples = self.samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0..100) from the reservoir."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


# -- mutators (all carry the disabled fast path first) ------------------------


def inc(name: str, label: Optional[str] = None, n: int = 1) -> None:
    """Increment counter ``name`` (or ``name.label``) by ``n``."""
    if not _enabled:
        return
    global _mutations
    if label is not None:
        name = name + "." + label
    with _lock:
        _mutations += 1
        _counters[name] = _counters.get(name, 0) + n


def add(name: str, n: int) -> None:
    """Add ``n`` to counter ``name`` (skips zero so exports stay tidy)."""
    if not _enabled or n == 0:
        return
    global _mutations
    with _lock:
        _mutations += 1
        _counters[name] = _counters.get(name, 0) + n


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value``."""
    if not _enabled:
        return
    global _mutations
    with _lock:
        _mutations += 1
        _gauges[name] = value


def observe(name: str, value: float) -> None:
    """Record one observation into histogram ``name``."""
    if not _enabled:
        return
    global _mutations
    with _lock:
        _mutations += 1
        h = _hists.get(name)
        if h is None:
            h = _hists[name] = Histogram()
        h.observe(value)


# -- switches -----------------------------------------------------------------


def enable() -> None:
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def reset() -> None:
    """Clear every recorded metric (keeps the switch)."""
    _counters.clear()
    _gauges.clear()
    _hists.clear()


# -- introspection ------------------------------------------------------------


def counters() -> dict[str, int]:
    return dict(_counters)


def gauges() -> dict[str, float]:
    return dict(_gauges)


def histograms() -> dict[str, Histogram]:
    return dict(_hists)


def mutations() -> int:
    """Total registry mutations ever applied in this process."""
    return _mutations


def snapshot() -> dict:
    """JSON-ready view of the whole registry, keys sorted."""
    return {
        "counters": {k: _counters[k] for k in sorted(_counters)},
        "gauges": {k: _gauges[k] for k in sorted(_gauges)},
        "histograms": {k: _hists[k].to_dict() for k in sorted(_hists)},
    }
