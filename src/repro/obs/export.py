"""Exporters for recorded spans and metrics.

Three formats, one per consumer:

* :func:`chrome_trace` — Chrome ``trace_event`` JSON (complete ``"X"``
  events), loadable in ``chrome://tracing`` and https://ui.perfetto.dev;
* :func:`stats_snapshot` — flat JSON: the metric registry plus per-name
  span aggregates (count / total / mean seconds) and per-stage wall
  times, for dashboards and the perf-trajectory benchmarks;
* :func:`text_tree` — indented human-readable span tree with durations,
  for terminals.
"""

from __future__ import annotations

from typing import Optional

from . import metrics, trace

__all__ = ["chrome_trace", "stats_snapshot", "text_tree", "span_aggregates"]


def _flatten(spans: list[trace.Span]) -> list[trace.Span]:
    out: list[trace.Span] = []
    stack = list(reversed(spans))
    while stack:
        s = stack.pop()
        out.append(s)
        stack.extend(reversed(s.children))
    return out


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace(spans: Optional[list[trace.Span]] = None) -> dict:
    """Chrome ``trace_event`` document for the recorded spans.

    Timestamps are microseconds relative to the tracer epoch; still-open
    spans are exported with their elapsed-so-far duration.
    """
    from time import perf_counter

    epoch = trace.epoch()
    events = []
    for s in _flatten(trace.roots() if spans is None else spans):
        dur = s.dur if s.dur is not None else perf_counter() - s.ts
        events.append(
            {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((s.ts - epoch) * 1e6, 3),
                "dur": round(dur * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": {k: _json_safe(v) for k, v in s.attrs.items()},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_aggregates(spans: Optional[list[trace.Span]] = None) -> dict:
    """Per-span-name aggregates: count, total seconds, mean seconds."""
    agg: dict[str, dict] = {}
    for s in _flatten(trace.roots() if spans is None else spans):
        if s.dur is None:
            continue
        a = agg.setdefault(s.name, {"count": 0, "total_s": 0.0})
        a["count"] += 1
        a["total_s"] += s.dur
    for a in agg.values():
        a["total_s"] = round(a["total_s"], 6)
        a["mean_s"] = round(a["total_s"] / a["count"], 6)
    return {k: agg[k] for k in sorted(agg)}


def stats_snapshot(spans: Optional[list[trace.Span]] = None) -> dict:
    """Flat JSON stats: metric registry + span aggregates."""
    doc = metrics.snapshot()
    doc["spans"] = span_aggregates(spans)
    return doc


def _fmt_dur(dur: Optional[float]) -> str:
    if dur is None:
        return "(open)"
    if dur >= 1.0:
        return f"{dur:.3f}s"
    return f"{dur * 1e3:.3f}ms"


def text_tree(spans: Optional[list[trace.Span]] = None) -> str:
    """Indented span tree with durations and attributes."""
    lines: list[str] = []

    def rec(s: trace.Span, depth: int) -> None:
        attrs = ""
        if s.attrs:
            attrs = "  [" + ", ".join(f"{k}={v}" for k, v in s.attrs.items()) + "]"
        lines.append(f"{'  ' * depth}{s.name:<{max(1, 40 - 2 * depth)}s} {_fmt_dur(s.dur):>10s}{attrs}")
        for c in s.children:
            rec(c, depth + 1)

    for root in trace.roots() if spans is None else spans:
        rec(root, 0)
    return "\n".join(lines)
