"""Hierarchical tracing spans (the ``trace`` half of :mod:`repro.obs`).

A *span* is one timed region of the pipeline — ``driver.compile``,
``frontend.parse``, ``backend.schedule`` — with wall time measured via
:func:`time.perf_counter`, arbitrary key/value attributes, and proper
nesting: spans opened while another span is active become its children,
so one compilation yields a tree mirroring the paper's Figure 3
pipeline.

Overhead contract
-----------------
Tracing is **off by default** and the disabled path is a no-op fast
path: :func:`span` checks one module-level boolean and returns a shared
singleton whose ``__enter__``/``__exit__`` do nothing — no ``Span``
object is ever allocated, no clock is read, nothing is appended.  Tests
in ``tests/obs/test_noop_fastpath.py`` pin this down.

Usage::

    from repro.obs import trace

    trace.enable()
    with trace.span("frontend.parse", file=name):
        ...
    trace.disable()

Enable globally with the ``REPRO_TRACE=1`` environment variable, per
compilation with ``CompileOptions(trace=True)``, or programmatically
with :func:`enable` / :func:`enabled_scope`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Optional

__all__ = [
    "Span",
    "span",
    "enable",
    "disable",
    "is_enabled",
    "enabled_scope",
    "reset",
    "roots",
    "iter_spans",
    "allocated_spans",
    "epoch",
]

#: Module-level fast-path switch.  Checked by :func:`span` before doing
#: any work; everything else in this module is off that path.
_enabled: bool = False

#: perf_counter value when tracing was last enabled/reset; Chrome export
#: timestamps are relative to this.
_epoch: float = 0.0

#: Completed + in-flight top-level spans, in start order.  Appends are
#: atomic under the GIL, so threads may share this list; their root
#: spans interleave in global start order.
_roots: list["Span"] = []

#: Currently open spans, innermost last — **per thread**, so concurrent
#: compiles (the repro-serve worker pool) nest their own spans correctly
#: instead of parenting under whichever span another thread has open.
_tls = threading.local()


def _span_stack() -> list["Span"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack

#: Total Span objects ever allocated (diagnostic for the no-op tests).
_allocations: int = 0


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class Span:
    """One timed, attributed, nestable region."""

    __slots__ = ("name", "attrs", "ts", "dur", "children")

    def __init__(self, name: str, attrs: dict) -> None:
        global _allocations
        _allocations += 1
        self.name = name
        self.attrs = attrs
        self.ts: float = 0.0  # perf_counter at __enter__
        self.dur: Optional[float] = None  # seconds; None while open
        self.children: list["Span"] = []

    def set(self, **attrs: object) -> "Span":
        """Attach attributes after the span was opened."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _span_stack()
        if stack:
            stack[-1].children.append(self)
        else:
            _roots.append(self)
        stack.append(self)
        self.ts = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.dur = perf_counter() - self.ts
        # Tolerate mispaired exits (e.g. disabled mid-span): unwind to self.
        stack = _span_stack()
        while stack:
            if stack.pop() is self:
                break
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.dur * 1e3:.3f}ms" if self.dur is not None else "open"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"


def span(name: str, **attrs: object):
    """Open a span (context manager).  No-op singleton while disabled."""
    if not _enabled:
        return _NOOP
    return Span(name, attrs)


# -- switches -----------------------------------------------------------------


def enable() -> None:
    """Turn tracing on (idempotent; keeps already-recorded spans)."""
    global _enabled, _epoch
    if not _enabled:
        _enabled = True
        if not _roots:
            _epoch = perf_counter()


def disable() -> None:
    """Turn tracing off; recorded spans stay readable until :func:`reset`."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Enable tracing inside the ``with`` body, restoring the prior state.

    Already-enabled tracing is left untouched (so a ``validate`` run that
    enabled tracing globally is not turned off by a nested compile).
    """
    if not on or _enabled:
        yield
        return
    enable()
    try:
        yield
    finally:
        disable()


def reset() -> None:
    """Drop all recorded spans and re-zero the epoch (keeps the switch).

    Clears the *calling* thread's open-span stack; a span still open on
    another thread simply unwinds into its own (cleared) stack on exit.
    """
    global _epoch
    _roots.clear()
    _span_stack().clear()
    _epoch = perf_counter()


# -- introspection ------------------------------------------------------------


def roots() -> list[Span]:
    """Top-level spans recorded so far, in start order."""
    return list(_roots)


def iter_spans() -> Iterator[Span]:
    """Every recorded span, depth-first in start order."""

    def rec(s: Span) -> Iterator[Span]:
        yield s
        for c in s.children:
            yield from rec(c)

    for r in _roots:
        yield from rec(r)


def allocated_spans() -> int:
    """Total :class:`Span` objects ever constructed in this process."""
    return _allocations


def epoch() -> float:
    """perf_counter origin for exported timestamps."""
    return _epoch
