"""Query adapter: cross-module summaries → unit-local REF/MOD effects.

The per-unit HLI pipeline (builder → :class:`repro.hli.query.HLIQuery` →
DDG) reasons in terms of :class:`~repro.analysis.refmod.EffectSet`
values over the unit's own abstract objects.  This module converts the
linker's name-based :class:`~repro.linker.summary.FnSummary` records
into that vocabulary, so rebuilding a unit's HLI with the converted
``external_effects`` makes every downstream consumer — call-acc queries,
dependence tests, the DDG builder, lint replay — transparently
whole-program aware.  No query or back-end code changes: the adapter
*is* the cross-unit query path.

Conversion rules:

* every summary name is carried as a
  :class:`~repro.analysis.refmod.ForeignObject` keyed by its canonical
  link-space spelling; symbol binding is deliberately *deferred* — the
  consuming :class:`~repro.analysis.refmod.RefModAnalysis` rebinds names
  that denote the unit's own storage (bare globals, own-unit qualified
  names, heap sites) to the abstract objects of **its** parse.  Effect
  sets cross a process/parse boundary (the driver re-parses each unit in
  phase 2, and the session cache restores binfmt-decoded tables), and
  :class:`~repro.frontend.symbols.Symbol` identity does not survive
  that — a summary resolved against the link-time parse would silently
  match nothing downstream;
* ``ref_any``/``mod_any`` flags and (conservatively) parameter effects
  fold to :data:`~repro.analysis.alias.TOP`, which is never worse than
  the per-file default of TOP on both sets.
"""

from __future__ import annotations

from ..analysis.alias import TOP
from ..analysis.refmod import EffectSet, ForeignObject
from .summary import FnSummary
from .unit import UnitAnalysis

__all__ = ["effects_for_unit", "effects_fingerprint"]


def _convert(summary: FnSummary) -> EffectSet:
    eff = EffectSet()
    if summary.ref_any or summary.param_ref:
        eff.ref.add(TOP)
    else:
        for name in summary.ref_names:
            eff.ref.add(ForeignObject(name))
    if summary.mod_any or summary.param_mod:
        eff.mod.add(TOP)
    else:
        for name in summary.mod_names:
            eff.mod.add(ForeignObject(name))
    return eff


def effects_for_unit(
    unit: UnitAnalysis, summaries: dict[str, FnSummary]
) -> dict[str, EffectSet]:
    """External-function effects for rebuilding one unit's HLI.

    Covers every function the unit declares but does not define whose
    definition the linker found in another unit.
    """
    defined = set(unit.defined_functions())
    out: dict[str, EffectSet] = {}
    for name, fsym in unit.table.functions.items():
        if name in defined or not fsym.external:
            continue
        summary = summaries.get(name)
        if summary is None or summary.unit == unit.filename:
            continue
        out[name] = _convert(summary)
    return out


def effects_fingerprint(effects: dict[str, EffectSet]) -> str:
    """Stable text form of converted effects (session cache salt)."""

    def obj_name(obj: object) -> str:
        if obj is TOP or obj == TOP:
            return "<top>"
        name = getattr(obj, "name", None)
        return str(name) if name is not None else repr(obj)

    lines = []
    for fn in sorted(effects):
        eff = effects[fn]
        ref = ",".join(sorted(obj_name(o) for o in eff.ref))
        mod = ",".join(sorted(obj_name(o) for o in eff.mod))
        lines.append(f"{fn} ref={ref} mod={mod}")
    return "\n".join(lines)
