"""Query adapter: cross-module summaries → unit-local REF/MOD effects.

The per-unit HLI pipeline (builder → :class:`repro.hli.query.HLIQuery` →
DDG) reasons in terms of :class:`~repro.analysis.refmod.EffectSet`
values over the unit's own abstract objects.  This module converts the
linker's name-based :class:`~repro.linker.summary.FnSummary` records
into that vocabulary, so rebuilding a unit's HLI with the converted
``external_effects`` makes every downstream consumer — call-acc queries,
dependence tests, the DDG builder, lint replay — transparently
whole-program aware.  No query or back-end code changes: the adapter
*is* the cross-unit query path.

Conversion rules:

* every summary name is carried as a
  :class:`~repro.analysis.refmod.ForeignObject` keyed by its canonical
  link-space spelling; symbol binding is deliberately *deferred* — the
  consuming :class:`~repro.analysis.refmod.RefModAnalysis` rebinds names
  that denote the unit's own storage (bare globals, own-unit qualified
  names, heap sites) to the abstract objects of **its** parse.  Effect
  sets cross a process/parse boundary (the driver re-parses each unit in
  phase 2, and the session cache restores binfmt-decoded tables), and
  :class:`~repro.frontend.symbols.Symbol` identity does not survive
  that — a summary resolved against the link-time parse would silently
  match nothing downstream;
* ``ref_any``/``mod_any`` flags fold to
  :data:`~repro.analysis.alias.TOP`, which is never worse than the
  per-file default of TOP on both sets;
* **parameter effects** (``param_ref``/``param_mod`` — the callee reads
  or writes through parameter ``i``) instantiate over the consuming
  unit's own direct call sites, mirroring the linker's
  :func:`~repro.linker.summary.transfer` step: a frozenset argument
  binding yields one ForeignObject per bound name, while an
  unanalyzable binding (``ANY``/``None``) or a caller-parameter
  indirection — which a per-name :class:`EffectSet` cannot express —
  folds that side to TOP.  A unit with no call site for the function
  keeps the conservative TOP (its effect set is never consulted).
  Because the effect set is keyed per callee *name*, bindings union
  over every call site in the unit.
"""

from __future__ import annotations

from ..analysis.alias import TOP
from ..analysis.refmod import EffectSet, ForeignObject
from .summary import FnSummary
from .unit import ANY, CallSite, UnitAnalysis

__all__ = ["effects_for_unit", "effects_fingerprint"]


def _instantiate_params(
    eff_side: set, indices: set[int], calls: list[CallSite]
) -> None:
    """Bind parameter effect indices through the unit's call sites.

    The binding forms and their meanings are exactly those of
    ``summary.transfer``'s ``instantiate``; the only divergence is that
    a ``("param", j)`` binding — an effect flowing through the *caller's*
    parameter — degrades to TOP here, because the unit-local effect
    vocabulary has no symbol for "whatever my caller passed".
    """
    if not calls:
        eff_side.add(TOP)
        return
    for call in calls:
        for i in sorted(indices):
            bind = call.bindings[i] if i < len(call.bindings) else ANY
            if isinstance(bind, frozenset):
                for name in bind:
                    eff_side.add(ForeignObject(name))
            else:  # ANY, None, ("param", j), future variants
                eff_side.add(TOP)


def _convert(summary: FnSummary, calls: list[CallSite]) -> EffectSet:
    eff = EffectSet()
    if summary.ref_any:
        eff.ref.add(TOP)
    else:
        for name in summary.ref_names:
            eff.ref.add(ForeignObject(name))
        if summary.param_ref:
            _instantiate_params(eff.ref, summary.param_ref, calls)
    if summary.mod_any:
        eff.mod.add(TOP)
    else:
        for name in summary.mod_names:
            eff.mod.add(ForeignObject(name))
        if summary.param_mod:
            _instantiate_params(eff.mod, summary.param_mod, calls)
    return eff


def effects_for_unit(
    unit: UnitAnalysis, summaries: dict[str, FnSummary]
) -> dict[str, EffectSet]:
    """External-function effects for rebuilding one unit's HLI.

    Covers every function the unit declares but does not define whose
    definition the linker found in another unit.  Parameter effects are
    bound at the unit's direct call sites (see module docstring), so
    the converted sets carry argument-position precision instead of the
    old fold-to-TOP default.
    """
    defined = set(unit.defined_functions())
    sites: dict[str, list[CallSite]] = {}
    for local in unit.locals.values():
        for call in local.calls:
            sites.setdefault(call.callee, []).append(call)
    out: dict[str, EffectSet] = {}
    for name, fsym in unit.table.functions.items():
        if name in defined or not fsym.external:
            continue
        summary = summaries.get(name)
        if summary is None or summary.unit == unit.filename:
            continue
        out[name] = _convert(summary, sites.get(name, []))
    return out


def effects_fingerprint(effects: dict[str, EffectSet]) -> str:
    """Stable text form of converted effects (session cache salt)."""

    def obj_name(obj: object) -> str:
        if obj is TOP or obj == TOP:
            return "<top>"
        name = getattr(obj, "name", None)
        return str(name) if name is not None else repr(obj)

    lines = []
    for fn in sorted(effects):
        eff = effects[fn]
        ref = ",".join(sorted(obj_name(o) for o in eff.ref))
        mod = ",".join(sorted(obj_name(o) for o in eff.mod))
        lines.append(f"{fn} ref={ref} mod={mod}")
    return "\n".join(lines)
