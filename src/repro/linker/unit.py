"""Per-unit analysis artifacts consumed by the whole-program linker.

:func:`analyze_unit` runs the unit-local front-end analyses (Andersen
points-to plus intraprocedural REF/MOD) and extracts, per function, a
:class:`LocalSummary` in the linker's *name space*:

* true globals keep their bare name (they are unified across units);
* unit-private storage (statics, address-taken locals, heap sites) gets a
  qualified ``{unit}::{name}@{line}`` spelling that can never collide
  with another unit's names;
* storage reachable only through a parameter becomes a *parameter
  effect* (``param_ref``/``param_mod`` index sets) that the link-time
  fixpoint instantiates per call site;
* anything unresolvable degrades to the ``ref_any``/``mod_any`` flags.

Call sites are recorded with per-argument bindings so parameter effects
propagate through call chains (the "points-to facts through call chains"
half of the summary computation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..analysis.alias import TOP, HeapObject, PointsToResult, analyze_points_to
from ..analysis.items import (
    Access,
    AccessKind,
    AccessRole,
    ref_for_access,
    walk_stmt_accesses,
)
from ..frontend import ast_nodes as ast
from ..frontend.symbols import StorageClass, Symbol, SymbolTable
from ..analysis.refmod import RefModAnalysis

__all__ = [
    "ANY",
    "Binding",
    "CallSite",
    "LocalSummary",
    "UnitAnalysis",
    "analyze_unit",
]

#: Call-argument binding marker: the argument may point anywhere.
ANY = "<any>"

#: One call-argument binding: a set of canonical object names, a caller
#: parameter index the argument forwards (``("param", j)``), the
#: :data:`ANY` marker, or ``None`` for non-pointer arguments.
Binding = Union[frozenset, tuple, str, None]


@dataclass(frozen=True)
class CallSite:
    """One call with per-argument pointer bindings."""

    callee: str
    line: int
    bindings: tuple[Binding, ...]


@dataclass
class LocalSummary:
    """Intraprocedural effects of one function, in link name space."""

    name: str
    unit: str
    ref_names: set[str] = field(default_factory=set)
    mod_names: set[str] = field(default_factory=set)
    ref_any: bool = False
    mod_any: bool = False
    param_ref: set[int] = field(default_factory=set)
    param_mod: set[int] = field(default_factory=set)
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class UnitAnalysis:
    """One translation unit plus its link-relevant analysis artifacts."""

    filename: str
    program: ast.Program
    table: SymbolTable
    pts: PointsToResult
    refmod: RefModAnalysis
    locals: dict[str, LocalSummary] = field(default_factory=dict)
    #: canonical name -> unit-local abstract object (Symbol or HeapObject)
    naming: dict[str, object] = field(default_factory=dict)

    def defined_functions(self) -> list[str]:
        return [fn.name for fn in self.program.functions]


class _SummaryExtractor:
    """Extract :class:`LocalSummary` values for every function of a unit."""

    def __init__(self, unit: UnitAnalysis) -> None:
        self.unit = unit
        self.pts = unit.pts

    # -- canonical naming --------------------------------------------------

    def canon(self, obj: object) -> Optional[str]:
        """Canonical link-space name for an abstract object.

        Returns ``None`` for storage invisible outside its function
        (register-promoted locals).
        """
        u = self.unit
        if isinstance(obj, HeapObject):
            name = f"{u.filename}::{obj.name}"
            u.naming[name] = obj
            return name
        if not isinstance(obj, Symbol):
            return None
        if obj.storage is StorageClass.GLOBAL:
            if obj.name.startswith("__argslot"):
                return None  # call-sequence private arg area
            u.naming[obj.name] = obj
            return obj.name
        if obj.storage is StorageClass.STATIC or obj.address_taken or obj.ty.is_array:
            name = f"{u.filename}::{obj.name}@{obj.line}"
            u.naming[name] = obj
            return name
        return None

    # -- per-access classification ----------------------------------------

    def _record(
        self, acc: Access, summary: LocalSummary, param_index: dict[int, int]
    ) -> None:
        if acc.kind is AccessKind.CALL:
            return
        if acc.role in (AccessRole.STACK_ARG, AccessRole.ENTRY_PARAM):
            return
        ref = ref_for_access(acc)
        names: set[str] = set()
        params: set[int] = set()
        any_flag = False
        if ref is None or ref.base is None:
            any_flag = True
        elif ref.is_deref:
            base = ref.base
            raw = self.pts.points_to.get(base) or {TOP}
            for target in raw:
                if target is TOP or target == TOP:
                    idx = param_index.get(id(base))
                    if idx is not None:
                        params.add(idx)
                    else:
                        any_flag = True
                else:
                    n = self.canon(target)
                    if n is not None:
                        names.add(n)
            # A dereferenced parameter always names caller storage, no
            # matter what the unit-local solver resolved it to.
            idx = param_index.get(id(base))
            if idx is not None:
                params.add(idx)
        else:
            n = self.canon(ref.base)
            if n is not None:
                names.add(n)
        if acc.kind is AccessKind.LOAD:
            summary.ref_names |= names
            summary.param_ref |= params
            summary.ref_any = summary.ref_any or any_flag
        else:
            summary.mod_names |= names
            summary.param_mod |= params
            summary.mod_any = summary.mod_any or any_flag

    # -- call-argument bindings --------------------------------------------

    def _binding(self, arg: ast.Expr, param_index: dict[int, int]) -> Binding:
        ty = arg.ty
        pointer_like = ty is not None and (ty.is_pointer or ty.is_array)
        if isinstance(arg, ast.Name) and isinstance(arg.symbol, Symbol):
            sym = arg.symbol
            if sym.ty.is_array:
                n = self.canon(sym)
                return frozenset((n,)) if n else ANY
            if sym.ty.is_pointer:
                raw = self.pts.points_to.get(sym) or {TOP}
                names: set[str] = set()
                for target in raw:
                    if target is TOP or target == TOP:
                        idx = param_index.get(id(sym))
                        if idx is not None:
                            return ("param", idx)
                        return ANY
                    n = self.canon(target)
                    if n is None:
                        return ANY
                    names.add(n)
                return frozenset(names) if names else ANY
        if isinstance(arg, ast.Unary) and arg.op is ast.UnaryOp.ADDR:
            base: Optional[ast.Expr] = arg.operand
            while isinstance(base, (ast.Index, ast.FieldAccess)):
                base = base.base
            if isinstance(base, ast.Name) and isinstance(base.symbol, Symbol):
                n = self.canon(base.symbol)
                return frozenset((n,)) if n else ANY
            return ANY
        if (
            isinstance(arg, ast.Binary)
            and isinstance(arg.lhs, ast.Name)
            and isinstance(arg.lhs.symbol, Symbol)
            and arg.lhs.symbol.ty.is_array
        ):
            n = self.canon(arg.lhs.symbol)
            return frozenset((n,)) if n else ANY
        if pointer_like:
            return ANY
        return None

    # -- driver ------------------------------------------------------------

    def extract(self, fn: ast.FuncDef) -> LocalSummary:
        summary = LocalSummary(name=fn.name, unit=self.unit.filename)
        param_index = {
            id(p.symbol): i
            for i, p in enumerate(fn.params)
            if isinstance(p.symbol, Symbol)
        }
        assert fn.body is not None
        for stmt in ast.walk_stmts(fn.body):
            for acc in walk_stmt_accesses(stmt):
                self._record(acc, summary, param_index)
                if acc.role is AccessRole.CALLSITE and isinstance(acc.node, ast.Call):
                    call = acc.node
                    summary.calls.append(
                        CallSite(
                            callee=call.callee,
                            line=call.line,
                            bindings=tuple(
                                self._binding(a, param_index) for a in call.args
                            ),
                        )
                    )
        return summary


def analyze_unit(
    program: ast.Program, table: SymbolTable, filename: Optional[str] = None
) -> UnitAnalysis:
    """Run unit-local analyses and extract link-space local summaries."""
    pts = analyze_points_to(program, table)
    refmod = RefModAnalysis(program, table, pts)
    refmod.run()
    unit = UnitAnalysis(
        filename=filename or program.filename,
        program=program,
        table=table,
        pts=pts,
        refmod=refmod,
    )
    extractor = _SummaryExtractor(unit)
    for fn in program.functions:
        unit.locals[fn.name] = extractor.extract(fn)
    return unit
