"""repro.linker — whole-program HLI linking (separate compilation, linked).

The paper's HLI format is explicitly per translation unit; calls into
other files degrade to conservative REF/MOD verdicts.  This package adds
the missing link step, in the spirit of LTO summaries:

* :mod:`repro.linker.table`   — global symbol reconciliation (the link
  table) with duplicate/type/undefined diagnostics;
* :mod:`repro.linker.unit`    — per-unit local summaries in a
  link-global name space, with call-site argument bindings;
* :mod:`repro.linker.summary` — whole-program call graph, Tarjan SCCs,
  and the bottom-up REF/MOD + points-to fixpoint;
* :mod:`repro.linker.adapter` — converts summaries back into unit-local
  :class:`~repro.analysis.refmod.EffectSet` values so the unchanged HLI
  query/DDG machinery answers cross-unit questions;
* :mod:`repro.linker.image`   — merges per-unit RTL into one executable
  image (re-layouted globals, remapped init data).

:func:`link_units` is the front door; the whole-program driver
(:mod:`repro.driver.wpa`) orchestrates it with per-unit compilation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Union

from ..hli import faults
from ..obs import metrics, trace
from .adapter import effects_fingerprint, effects_for_unit
from .image import link_image
from .partition import PARTITION_MODES, PartitionPlan, partition_program, unit_weight
from .summary import (
    FnSummary,
    SummaryResult,
    build_call_graph,
    compute_summaries,
    tarjan_sccs,
    transfer,
)
from .table import LinkDiagnostic, LinkSymbol, LinkTable, build_link_table
from .unit import ANY, CallSite, LocalSummary, UnitAnalysis, analyze_unit

__all__ = [
    "ANY",
    "CallSite",
    "FnSummary",
    "LinkDiagnostic",
    "LinkResult",
    "LinkSymbol",
    "LinkTable",
    "LocalSummary",
    "PARTITION_MODES",
    "PartitionPlan",
    "SummaryResult",
    "UnitAnalysis",
    "analyze_unit",
    "build_call_graph",
    "build_link_table",
    "compute_summaries",
    "effects_fingerprint",
    "effects_for_unit",
    "link_image",
    "link_units",
    "partition_program",
    "tarjan_sccs",
    "transfer",
    "unit_weight",
]


@dataclass
class LinkResult:
    """Everything the link step produced for a multi-unit program."""

    units: list[UnitAnalysis] = field(default_factory=list)
    table: LinkTable = field(default_factory=LinkTable)
    summary: SummaryResult = field(default_factory=SummaryResult)

    @property
    def summaries(self) -> dict[str, FnSummary]:
        return self.summary.summaries

    @property
    def diagnostics(self) -> list[LinkDiagnostic]:
        return self.table.diagnostics

    def fingerprint(self) -> str:
        """Stable text form of table + summaries (session cache salt)."""
        parts = [self.table.fingerprint()]
        for name in sorted(self.summaries):
            parts.append(self.summaries[name].fingerprint())
        return "\n".join(parts)


def _apply_link_faults(result: LinkResult) -> None:
    """Deterministic link-time corruptions for lint property tests."""
    if faults.is_active(faults.DROP_SUMMARY):
        for name in sorted(result.summaries):
            if name == "main":
                continue
            s = result.summaries[name]
            if s.ref_names or s.mod_names or s.ref_any or s.mod_any:
                s.ref_names.clear()
                s.mod_names.clear()
                s.param_ref.clear()
                s.param_mod.clear()
                s.ref_any = False
                s.mod_any = False
                break
    if faults.is_active(faults.SWAP_LINK_ENTRIES):
        names = sorted(
            n for n, s in result.table.symbols.items() if s.defined_in is not None
        )
        if len(names) >= 2:
            a, b = names[0], names[1]
            sa, sb = result.table.symbols[a], result.table.symbols[b]
            result.table.symbols[a] = LinkSymbol(
                name=sa.name,
                kind=sa.kind,
                defined_in=sb.defined_in,
                declared_in=sa.declared_in,
                type_repr=sa.type_repr,
                size=sa.size,
            )
            result.table.symbols[b] = LinkSymbol(
                name=sb.name,
                kind=sb.kind,
                defined_in=sa.defined_in,
                declared_in=sb.declared_in,
                type_repr=sb.type_repr,
                size=sb.size,
            )


def link_units(
    units: list[UnitAnalysis],
    summary_cache: Optional[Union[str, os.PathLike[str]]] = None,
) -> LinkResult:
    """Reconcile symbols and compute cross-module summaries for ``units``.

    ``summary_cache`` names a file persisting the cross-module summary
    table (:mod:`repro.linker.persist`).  The table is keyed by a
    fingerprint of every unit's *local* summaries — the fixpoint's
    complete input — so an unchanged program restores the linked
    summaries instead of re-running the SCC fixpoint, and any edit (or
    a corrupt/stale file) recomputes and overwrites.
    """
    with trace.span("linker.link", units=len(units)):
        with trace.span("linker.reconcile"):
            table = build_link_table(units)
        summary: Optional[SummaryResult] = None
        key = ""
        if summary_cache is not None:
            from .persist import load_summaries, local_fingerprint

            key = local_fingerprint(units)
            summary = load_summaries(summary_cache, key)
            if summary is not None:
                metrics.inc("linker.summaries_restored")
        if summary is None:
            with trace.span("linker.summaries"):
                summary = compute_summaries(units)
            if summary_cache is not None:
                from .persist import save_summaries

                save_summaries(summary_cache, summary, key)
        result = LinkResult(units=units, table=table, summary=summary)
        _apply_link_faults(result)
        if metrics.is_enabled():
            metrics.add("linker.units", len(units))
            metrics.add("linker.symbols_reconciled", len(table.symbols))
            metrics.add("linker.diagnostics", len(table.diagnostics))
            metrics.add("linker.summaries_computed", len(summary.summaries))
            metrics.add("linker.scc_count", len(summary.sccs))
            metrics.add("linker.scc_iterations", summary.total_iterations)
        return result
