"""Whole-program call graph and bottom-up interprocedural summaries.

The linker builds the cross-unit call graph from the per-unit
:class:`~repro.linker.unit.LocalSummary` records, decomposes it into
strongly connected components (Tarjan), and runs a Kleene fixpoint
bottom-up over the SCC condensation: each function's summary is its
local effects joined with the *instantiated* summaries of its callees,
where instantiation substitutes call-site argument bindings into the
callee's parameter effects.

Because SCCs are processed callees-first, a non-recursive program
converges in one transfer application per function; recursive SCCs
iterate until stable (the iteration counts are recorded for the HLI011
convergence lint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.semantic import PURE_EXTERNALS
from .unit import ANY, CallSite, LocalSummary, UnitAnalysis

__all__ = [
    "FnSummary",
    "SummaryResult",
    "build_call_graph",
    "from_local",
    "tarjan_sccs",
    "compute_summaries",
    "transfer",
]


@dataclass
class FnSummary:
    """Cross-module REF/MOD summary of one defined function."""

    name: str
    unit: str
    ref_names: set[str] = field(default_factory=set)
    mod_names: set[str] = field(default_factory=set)
    ref_any: bool = False
    mod_any: bool = False
    param_ref: set[int] = field(default_factory=set)
    param_mod: set[int] = field(default_factory=set)
    scc_id: int = -1

    def copy(self) -> "FnSummary":
        return FnSummary(
            name=self.name,
            unit=self.unit,
            ref_names=set(self.ref_names),
            mod_names=set(self.mod_names),
            ref_any=self.ref_any,
            mod_any=self.mod_any,
            param_ref=set(self.param_ref),
            param_mod=set(self.param_mod),
            scc_id=self.scc_id,
        )

    def covers(self, other: "FnSummary") -> bool:
        """Is this summary at least as conservative as ``other``?"""
        if other.ref_any and not self.ref_any:
            return False
        if other.mod_any and not self.mod_any:
            return False
        if not self.ref_any and not other.ref_names <= self.ref_names:
            return False
        if not self.mod_any and not other.mod_names <= self.mod_names:
            return False
        if not self.ref_any and not other.param_ref <= self.param_ref:
            return False
        if not self.mod_any and not other.param_mod <= self.param_mod:
            return False
        return True

    def fingerprint(self) -> str:
        """Stable text form for cache keys and lint comparison."""
        return (
            f"{self.name}@{self.unit}"
            f" ref={'*' if self.ref_any else ','.join(sorted(self.ref_names))}"
            f" mod={'*' if self.mod_any else ','.join(sorted(self.mod_names))}"
            f" pref={','.join(map(str, sorted(self.param_ref)))}"
            f" pmod={','.join(map(str, sorted(self.param_mod)))}"
        )


@dataclass
class SummaryResult:
    """Everything the SCC fixpoint produced."""

    summaries: dict[str, FnSummary] = field(default_factory=dict)
    #: SCC id -> member function names (bottom-up order)
    sccs: list[list[str]] = field(default_factory=list)
    #: SCC id -> fixpoint iterations it took to stabilize
    iterations: list[int] = field(default_factory=list)
    #: function -> defined callee names (the whole-program call graph)
    call_graph: dict[str, set[str]] = field(default_factory=dict)

    @property
    def total_iterations(self) -> int:
        return sum(self.iterations)


def from_local(local: LocalSummary) -> FnSummary:
    """Seed a cross-module summary from a function's local effects."""
    return FnSummary(
        name=local.name,
        unit=local.unit,
        ref_names=set(local.ref_names),
        mod_names=set(local.mod_names),
        ref_any=local.ref_any,
        mod_any=local.mod_any,
        param_ref=set(local.param_ref),
        param_mod=set(local.param_mod),
    )


def build_call_graph(units: list[UnitAnalysis]) -> dict[str, set[str]]:
    """Whole-program call graph over *defined* functions."""
    defined = {name for u in units for name in u.defined_functions()}
    graph: dict[str, set[str]] = {}
    for u in units:
        for name, local in u.locals.items():
            graph[name] = {c.callee for c in local.calls if c.callee in defined}
    return graph


def tarjan_sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Strongly connected components, emitted callees-first (bottom-up).

    Iterative Tarjan so deep call chains cannot overflow Python's stack.
    Node order is name-sorted for determinism.
    """
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: list[tuple[str, list[str], int]] = [(root, sorted(graph.get(root, ())), 0)]
        while work:
            node, succs, pos = work.pop()
            if pos == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            while pos < len(succs):
                succ = succs[pos]
                pos += 1
                if succ not in index:
                    work.append((node, succs, pos))
                    work.append((succ, sorted(graph.get(succ, ())), 0))
                    recurse = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if recurse:
                continue
            if low[node] == index[node]:
                comp: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(sorted(comp))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return sccs


def transfer(
    summary: FnSummary,
    local: LocalSummary,
    summaries: dict[str, FnSummary],
) -> bool:
    """Apply one transfer step: join instantiated callee summaries in.

    Returns True when ``summary`` changed.
    """
    changed = False

    def set_ref_any() -> None:
        nonlocal changed
        if not summary.ref_any:
            summary.ref_any = True
            changed = True

    def set_mod_any() -> None:
        nonlocal changed
        if not summary.mod_any:
            summary.mod_any = True
            changed = True

    def add(names_attr: str, names: set[str]) -> None:
        nonlocal changed
        target: set[str] = getattr(summary, names_attr)
        before = len(target)
        target |= names
        if len(target) != before:
            changed = True

    def add_params(attr: str, indices: set[int]) -> None:
        nonlocal changed
        target: set[int] = getattr(summary, attr)
        before = len(target)
        target |= indices
        if len(target) != before:
            changed = True

    def instantiate(call: CallSite, indices: set[int], is_ref: bool) -> None:
        for i in sorted(indices):
            bind = call.bindings[i] if i < len(call.bindings) else ANY
            if bind is None or bind == ANY:
                set_ref_any() if is_ref else set_mod_any()
            elif isinstance(bind, frozenset):
                add("ref_names" if is_ref else "mod_names", set(bind))
            elif isinstance(bind, tuple) and bind and bind[0] == "param":
                add_params("param_ref" if is_ref else "param_mod", {bind[1]})
            else:  # pragma: no cover - exhaustive Binding variants
                set_ref_any() if is_ref else set_mod_any()

    for call in local.calls:
        callee = summaries.get(call.callee)
        if callee is not None:
            if callee.ref_any:
                set_ref_any()
            else:
                add("ref_names", callee.ref_names)
                instantiate(call, callee.param_ref, is_ref=True)
            if callee.mod_any:
                set_mod_any()
            else:
                add("mod_names", callee.mod_names)
                instantiate(call, callee.param_mod, is_ref=False)
            continue
        if call.callee in PURE_EXTERNALS:
            continue
        # Unknown external: may touch anything.
        set_ref_any()
        set_mod_any()
    return changed


def compute_summaries(units: list[UnitAnalysis]) -> SummaryResult:
    """Bottom-up SCC fixpoint over the whole-program call graph."""
    result = SummaryResult()
    locals_by_name: dict[str, LocalSummary] = {}
    for u in units:
        for name, local in u.locals.items():
            locals_by_name[name] = local
    graph = build_call_graph(units)
    result.call_graph = graph
    result.sccs = tarjan_sccs(graph)
    for name, local in locals_by_name.items():
        result.summaries[name] = from_local(local)
    for scc_id, comp in enumerate(result.sccs):
        for name in comp:
            result.summaries[name].scc_id = scc_id
        iterations = 0
        changed = True
        while changed:
            iterations += 1
            changed = False
            for name in comp:
                if transfer(result.summaries[name], locals_by_name[name], result.summaries):
                    changed = True
        result.iterations.append(iterations)
    return result
