"""Whole-program partitioning for the parallel back end.

After the serial WPA step (parse + analyze + link), phase 2 — per-unit
code generation under the linked summaries — is embarrassingly parallel:
PR 6's link-salted cache keys make every per-unit artifact independent
of *where* it is compiled.  This module groups the linked units into
**partitions** that the driver fans out over a process pool, the shape
GCC's LTO calls "ltrans" (Glek & Hubička; see PAPERS.md).

Three modes:

* ``"1to1"`` — one unit per partition (maximum parallelism, maximum
  per-task overhead);
* ``"balanced"`` — greedy longest-processing-time bin packing of units
  into at most ``jobs`` partitions, weighted by an RTL-size estimate
  over each unit's functions (statement and call-site counts);
* ``"none"`` — a single partition holding every unit: today's serial
  path, used as the parity baseline.

Partitioning is a pure scheduling decision: the compiled output must be
identical across modes (the driver's parity oracle enforces
alpha-equivalent RTL, equal DepStats, equal lint verdicts, and a
byte-identical merged image versus ``jobs=1``).

Observability: every plan records ``wpa.partitions`` (counter) and
``wpa.partition_skew`` (gauge; max/mean partition weight, 1.0 =
perfectly balanced).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import ast_nodes as ast
from ..obs import metrics as _metrics
from .unit import UnitAnalysis

__all__ = [
    "PARTITION_MODES",
    "PartitionPlan",
    "partition_program",
    "unit_weight",
]

PARTITION_MODES = ("none", "1to1", "balanced")


def unit_weight(unit: UnitAnalysis) -> int:
    """Back-end cost estimate for one unit.

    Statements dominate RTL size (each lowers to a handful of insns) and
    call sites add scheduling/REF-MOD work, so the estimate is
    ``Σ_fn (4 + 2·stmts + calls)`` — cheap to compute from the AST and
    monotone in the real phase-2 cost.
    """
    total = 0
    for fn in unit.program.functions:
        stmts = 0
        calls = 0
        if fn.body is not None:
            for stmt in ast.walk_stmts(fn.body):
                stmts += 1
        summary = unit.locals.get(fn.name)
        if summary is not None:
            calls = len(summary.calls)
        total += 4 + 2 * stmts + calls
    return total


@dataclass
class PartitionPlan:
    """A grouping of linked units into back-end partitions."""

    mode: str
    partitions: list[list[str]]  # unit filenames, source order within each
    weights: dict[str, int] = field(default_factory=dict)
    cross_edges: int = 0  # direct call edges crossing a partition boundary

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def skew(self) -> float:
        """Max/mean partition weight.  1.0 = perfectly balanced."""
        if len(self.partitions) <= 1:
            return 1.0
        loads = [
            sum(self.weights.get(f, 1) for f in part) for part in self.partitions
        ]
        mean = sum(loads) / len(loads)
        if mean <= 0:
            return 1.0
        return max(loads) / mean

    def to_dict(self) -> dict:
        """JSON-ready summary (RESULTS.json, bench reports)."""
        return {
            "mode": self.mode,
            "partitions": self.n_partitions,
            "units": sum(len(p) for p in self.partitions),
            "skew": round(self.skew, 4),
            "cross_edges": self.cross_edges,
        }


def _cross_edges(units: list[UnitAnalysis], assign: dict[str, int]) -> int:
    """Count direct call edges whose caller and callee land in
    different partitions."""
    owner: dict[str, str] = {}
    for u in units:
        for name in u.locals:
            owner[name] = u.filename
    crossing = 0
    for u in units:
        for summary in u.locals.values():
            for call in summary.calls:
                target = owner.get(call.callee)
                if target is None or target == u.filename:
                    continue
                if assign[u.filename] != assign[target]:
                    crossing += 1
    return crossing


def partition_program(
    units: list[UnitAnalysis],
    mode: str = "balanced",
    jobs: int = 0,
) -> PartitionPlan:
    """Group ``units`` into partitions for the parallel back end.

    ``jobs`` caps the partition count in ``balanced`` mode (``<= 0``
    means one partition per unit).  Deterministic: ties break on the
    unit's position in ``units``, and each partition preserves source
    order so merged outputs are stable.
    """
    if mode not in PARTITION_MODES:
        raise ValueError(
            f"partition mode must be one of {PARTITION_MODES}, got {mode!r}"
        )
    weights = {u.filename: unit_weight(u) for u in units}
    order = {u.filename: i for i, u in enumerate(units)}
    if mode == "none" or len(units) <= 1:
        partitions = [[u.filename for u in units]] if units else []
    elif mode == "1to1":
        partitions = [[u.filename] for u in units]
    else:  # balanced: greedy LPT over unit weights
        n_bins = len(units) if jobs <= 0 else max(1, min(jobs, len(units)))
        bins: list[list[str]] = [[] for _ in range(n_bins)]
        loads = [0] * n_bins
        ranked = sorted(
            units, key=lambda u: (-weights[u.filename], order[u.filename])
        )
        for u in ranked:
            lightest = min(range(n_bins), key=lambda i: (loads[i], i))
            bins[lightest].append(u.filename)
            loads[lightest] += weights[u.filename]
        partitions = [sorted(b, key=order.__getitem__) for b in bins if b]
    assign = {f: pi for pi, part in enumerate(partitions) for f in part}
    plan = PartitionPlan(
        mode=mode,
        partitions=partitions,
        weights=weights,
        cross_edges=_cross_edges(units, assign) if len(partitions) > 1 else 0,
    )
    _metrics.add("wpa.partitions", plan.n_partitions)
    _metrics.gauge("wpa.partition_skew", plan.skew)
    return plan
