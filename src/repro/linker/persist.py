"""Persisted cross-module summaries: the linker's on-disk artifact.

The bottom-up SCC fixpoint (:func:`repro.linker.summary.compute_summaries`)
is the only whole-program-sized computation in the link step, and its
input is fully captured by the units' *local* summaries — so its result
can be cached across builds: if no function's local effects or call
sites changed, the linked program's cross-module summaries are
byte-for-byte the same.

The format is a hand-packed, self-contained binary table — the same
zero-pickle discipline as the session cache: length-prefixed strings,
fixed-width counts, a SHA-256 checksum over the payload, and a version
byte pair that retires old layouts.  A corrupt, truncated, or stale
file yields ``None`` from :func:`load_summaries` (and is unlinked), so
the caller recomputes — never crashes, never links stale facts.

Layout (little-endian)::

    offset  size  field
         0     4  magic ``HLIS``
         4     2  FORMAT_VERSION (``<H``)
         6    32  SHA-256 of the payload
        38     …  payload

    payload := key
               <I count, FnSummary...
               <I count, scc (<I count, name...)...
               <I count, iterations (<I)...
               <I count, (name, <I count, callee...)...  # call graph

    FnSummary := name unit flags:<B(ref_any|mod_any<<1) scc_id:<i
                 names(ref) names(mod) ints(param_ref) ints(param_mod)
    key/name   := <H len + utf-8 bytes
    names      := <I count + name...
    ints       := <I count + <I...

``key`` is the caller's link-state fingerprint (derived from the local
summaries via :func:`local_fingerprint`); :func:`load_summaries` treats
a key mismatch exactly like corruption — evict and recompute.
"""

from __future__ import annotations

import hashlib
import os
import struct
from pathlib import Path
from typing import Optional, Union

from .summary import FnSummary, SummaryResult
from .unit import UnitAnalysis

__all__ = [
    "SummaryFormatError",
    "decode_summaries",
    "encode_summaries",
    "load_summaries",
    "local_fingerprint",
    "save_summaries",
]

_MAGIC = b"HLIS"
FORMAT_VERSION = 1


class SummaryFormatError(Exception):
    """A persisted summary table failed verification."""


def local_fingerprint(units: list[UnitAnalysis]) -> str:
    """Fingerprint of every unit's local summaries and call sites.

    This is the complete input of the cross-module fixpoint: two builds
    with equal fingerprints are guaranteed equal linked summaries.
    """
    h = hashlib.sha256()
    h.update(b"repro-link-locals\x00")
    for unit in units:
        h.update(unit.filename.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
        for name in sorted(unit.locals):
            loc = unit.locals[name]
            h.update(
                (
                    f"{loc.name}@{loc.unit}"
                    f" ref={'*' if loc.ref_any else ','.join(sorted(loc.ref_names))}"
                    f" mod={'*' if loc.mod_any else ','.join(sorted(loc.mod_names))}"
                    f" pref={','.join(map(str, sorted(loc.param_ref)))}"
                    f" pmod={','.join(map(str, sorted(loc.param_mod)))}"
                ).encode("utf-8", "surrogatepass")
            )
            for call in loc.calls:
                h.update(
                    f"|{call.callee}@{call.line}:{call.bindings!r}".encode(
                        "utf-8", "surrogatepass"
                    )
                )
            h.update(b"\n")
    return h.hexdigest()


# -- primitive writers/readers -------------------------------------------------


def _w_str(out: bytearray, s: str) -> None:
    b = s.encode("utf-8", "surrogatepass")
    out += struct.pack("<H", len(b))
    out += b


def _w_names(out: bytearray, names: set[str]) -> None:
    out += struct.pack("<I", len(names))
    for n in sorted(names):
        _w_str(out, n)


def _w_ints(out: bytearray, ints: set[int]) -> None:
    out += struct.pack("<I", len(ints))
    for i in sorted(ints):
        out += struct.pack("<I", i)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        chunk = self.data[self.pos : self.pos + n]
        if len(chunk) != n:
            raise SummaryFormatError("truncated summary table")
        self.pos += n
        return chunk

    def u16(self) -> int:
        return int(struct.unpack("<H", self._take(2))[0])

    def u32(self) -> int:
        n = int(struct.unpack("<I", self._take(4))[0])
        if n > len(self.data) - self.pos:
            raise SummaryFormatError("count exceeds remaining bytes")
        return n

    def i32(self) -> int:
        return int(struct.unpack("<i", self._take(4))[0])

    def u8(self) -> int:
        return self._take(1)[0]

    def string(self) -> str:
        try:
            return self._take(self.u16()).decode("utf-8", "surrogatepass")
        except UnicodeDecodeError as exc:
            raise SummaryFormatError(f"bad string: {exc}") from exc

    def names(self) -> set[str]:
        return {self.string() for _ in range(self.u32())}

    def ints(self) -> set[int]:
        return {int(struct.unpack("<I", self._take(4))[0]) for _ in range(self.u32())}

    def done(self) -> bool:
        return self.pos == len(self.data)


# -- encode / decode -----------------------------------------------------------


def encode_summaries(result: SummaryResult, key: str) -> bytes:
    """Serialize ``result`` under link-state fingerprint ``key``."""
    out = bytearray()
    _w_str(out, key)
    out += struct.pack("<I", len(result.summaries))
    for name in sorted(result.summaries):
        s = result.summaries[name]
        _w_str(out, s.name)
        _w_str(out, s.unit)
        out += struct.pack("<Bi", int(s.ref_any) | int(s.mod_any) << 1, s.scc_id)
        _w_names(out, s.ref_names)
        _w_names(out, s.mod_names)
        _w_ints(out, s.param_ref)
        _w_ints(out, s.param_mod)
    out += struct.pack("<I", len(result.sccs))
    for scc in result.sccs:
        out += struct.pack("<I", len(scc))
        for member in scc:
            _w_str(out, member)
    out += struct.pack("<I", len(result.iterations))
    for it in result.iterations:
        out += struct.pack("<I", it)
    out += struct.pack("<I", len(result.call_graph))
    for name in sorted(result.call_graph):
        _w_str(out, name)
        _w_names(out, result.call_graph[name])
    payload = bytes(out)
    digest = hashlib.sha256(payload).digest()
    return _MAGIC + struct.pack("<H", FORMAT_VERSION) + digest + payload


def decode_summaries(data: bytes) -> tuple[str, SummaryResult]:
    """Verified decode: returns ``(key, result)`` or raises
    :class:`SummaryFormatError` — never a partially valid table."""
    try:
        if data[:4] != _MAGIC:
            raise SummaryFormatError("bad magic")
        (version,) = struct.unpack("<H", data[4:6])
        if version != FORMAT_VERSION:
            raise SummaryFormatError(
                f"summary format {version} != {FORMAT_VERSION}"
            )
        digest, payload = data[6:38], data[38:]
        if hashlib.sha256(payload).digest() != digest:
            raise SummaryFormatError("checksum mismatch")
        r = _Reader(payload)
        key = r.string()
        result = SummaryResult()
        for _ in range(r.u32()):
            name = r.string()
            unit = r.string()
            flags = r.u8()
            scc_id = r.i32()
            result.summaries[name] = FnSummary(
                name=name,
                unit=unit,
                ref_any=bool(flags & 1),
                mod_any=bool(flags & 2),
                scc_id=scc_id,
                ref_names=r.names(),
                mod_names=r.names(),
                param_ref=r.ints(),
                param_mod=r.ints(),
            )
        result.sccs = [
            [r.string() for _ in range(r.u32())] for _ in range(r.u32())
        ]
        result.iterations = [
            int(struct.unpack("<I", r._take(4))[0]) for _ in range(r.u32())
        ]
        for _ in range(r.u32()):
            name = r.string()
            result.call_graph[name] = r.names()
        if not r.done():
            raise SummaryFormatError("trailing bytes")
        if len(result.sccs) != len(result.iterations):
            raise SummaryFormatError("scc / iteration table length mismatch")
        return key, result
    except SummaryFormatError:
        raise
    except Exception as exc:  # struct errors, slicing, ...
        raise SummaryFormatError(f"{type(exc).__name__}: {exc}") from exc


# -- file-level API ------------------------------------------------------------


def save_summaries(
    path: Union[str, os.PathLike[str]], result: SummaryResult, key: str
) -> None:
    """Atomically persist ``result``; I/O failures are swallowed (a
    read-only cache location must never fail the link)."""
    p = Path(path)
    blob = encode_summaries(result, key)
    tmp = p.with_name(p.name + f".tmp{os.getpid()}")
    try:
        p.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(blob)
        os.replace(tmp, p)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass


def load_summaries(
    path: Union[str, os.PathLike[str]], key: str
) -> Optional[SummaryResult]:
    """Load a persisted table if it exists, verifies, and matches ``key``.

    Any defect — missing file, corruption, version skew, or a key from a
    different link state — returns ``None`` and removes the file so the
    recomputed table can take its place.
    """
    p = Path(path)
    try:
        data = p.read_bytes()
    except OSError:
        return None
    try:
        stored_key, result = decode_summaries(data)
    except SummaryFormatError:
        try:
            p.unlink(missing_ok=True)
        except OSError:
            pass
        return None
    if stored_key != key:
        try:
            p.unlink(missing_ok=True)
        except OSError:
            pass
        return None
    return result
