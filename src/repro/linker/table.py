"""Global symbol reconciliation — the whole-program link table.

The link table unifies extern declarations with definitions across
translation units, exactly like a (static) linker's global symbol table:
every global variable and function name maps to one :class:`LinkSymbol`
recording where it is defined and where it is referenced.  Mismatches
(duplicate definitions, conflicting types or sizes, unresolved externs)
become :class:`LinkDiagnostic` records instead of silent misbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend.semantic import EXTERNAL_SIGNATURES
from ..frontend.symbols import StorageClass
from .unit import UnitAnalysis

__all__ = ["LinkSymbol", "LinkDiagnostic", "LinkTable", "build_link_table"]


@dataclass(frozen=True)
class LinkSymbol:
    """One reconciled global name (variable or function)."""

    name: str
    kind: str  # "var" | "func"
    defined_in: str | None  # unit filename, None for unresolved externs
    declared_in: tuple[str, ...]  # units referencing the name (sorted)
    type_repr: str  # rendered type of the defining declaration
    size: int  # byte size for variables, 0 for functions


@dataclass(frozen=True)
class LinkDiagnostic:
    """One reconciliation problem found while building the link table."""

    code: str  # duplicate-definition | type-mismatch | undefined-symbol
    name: str
    units: tuple[str, ...]
    message: str


@dataclass
class LinkTable:
    """The reconciled global namespace of a multi-unit program."""

    symbols: dict[str, LinkSymbol] = field(default_factory=dict)
    diagnostics: list[LinkDiagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def fingerprint(self) -> str:
        """Stable text form used by session cache keys and lint replay."""
        lines = []
        for name in sorted(self.symbols):
            s = self.symbols[name]
            lines.append(
                f"{s.kind} {name} def={s.defined_in} decl={','.join(s.declared_in)} "
                f"ty={s.type_repr} size={s.size}"
            )
        return "\n".join(lines)


def _var_size(ty: object) -> int:
    size = getattr(ty, "size", None)
    if callable(size):
        try:
            return max(int(size()), 1)
        except Exception:  # pragma: no cover - defensive
            return 1
    return 1


def build_link_table(units: list[UnitAnalysis]) -> LinkTable:
    """Reconcile the global namespaces of ``units`` into one link table."""
    table = LinkTable()
    # name -> (kind, defining unit, type repr, size)
    defs: dict[str, tuple[str, str, str, int]] = {}
    decls: dict[str, set[str]] = {}
    kinds: dict[str, str] = {}
    type_reprs: dict[str, dict[str, str]] = {}

    def diag(code: str, name: str, unit_names: tuple[str, ...], message: str) -> None:
        table.diagnostics.append(
            LinkDiagnostic(code=code, name=name, units=unit_names, message=message)
        )

    for unit in units:
        # Global variables (externs and definitions alike live in the
        # global scope; statics are unit-private and never reconciled).
        for name, sym in unit.table.global_scope.names.items():
            if sym.storage is not StorageClass.GLOBAL or name.startswith("__argslot"):
                continue
            kinds.setdefault(name, "var")
            decls.setdefault(name, set()).add(unit.filename)
            type_reprs.setdefault(name, {})[unit.filename] = str(sym.ty)
            if not sym.is_extern:
                prior = defs.get(name)
                if prior is not None and kinds[name] == "var":
                    diag(
                        "duplicate-definition",
                        name,
                        tuple(sorted((prior[1], unit.filename))),
                        f"global '{name}' defined in both {prior[1]} and {unit.filename}",
                    )
                else:
                    defs[name] = ("var", unit.filename, str(sym.ty), _var_size(sym.ty))
        # Functions: definitions and prototypes.
        for name, fsym in unit.table.functions.items():
            if name in EXTERNAL_SIGNATURES and not fsym.defined:
                continue  # library builtins are not link-table material
            kinds.setdefault(name, "func")
            decls.setdefault(name, set()).add(unit.filename)
            type_reprs.setdefault(name, {})[unit.filename] = str(fsym.ty)
            if fsym.defined:
                prior = defs.get(name)
                if prior is not None:
                    diag(
                        "duplicate-definition",
                        name,
                        tuple(sorted((prior[1], unit.filename))),
                        f"function '{name}' defined in both {prior[1]} and {unit.filename}",
                    )
                else:
                    defs[name] = ("func", unit.filename, str(fsym.ty), 0)

    for name in sorted(kinds):
        d = defs.get(name)
        declared = tuple(sorted(decls.get(name, set())))
        reprs = type_reprs.get(name, {})
        if d is None:
            diag(
                "undefined-symbol",
                name,
                declared,
                f"'{name}' is declared extern but defined in no unit",
            )
            any_repr = reprs[declared[0]] if declared else ""
            table.symbols[name] = LinkSymbol(
                name=name,
                kind=kinds[name],
                defined_in=None,
                declared_in=declared,
                type_repr=any_repr,
                size=0,
            )
            continue
        kind, def_unit, def_repr, size = d
        mismatched = sorted(u for u, r in reprs.items() if r != def_repr)
        if mismatched:
            diag(
                "type-mismatch",
                name,
                tuple(sorted(set(mismatched) | {def_unit})),
                f"'{name}' declared as {sorted(set(reprs.values()))} across units",
            )
        table.symbols[name] = LinkSymbol(
            name=name,
            kind=kind,
            defined_in=def_unit,
            declared_in=declared,
            type_repr=def_repr,
            size=size,
        )
    return table
