"""Merge per-unit RTL programs into one linked, executable image.

Each unit was lowered in isolation, so every unit laid out its own copy
of the global data segment (extern declarations included).  The linker
re-layouts the union of all global names deterministically, remaps each
unit's ``init_data`` through the owning symbol, and merges the function
dictionaries.  The result runs on the unmodified
:mod:`repro.machine.executor` — all addressing is symbolic through
``globals_layout`` and calls dispatch by name.
"""

from __future__ import annotations

from ..backend.lowering import ProgramLowering
from ..backend.rtl import RTLProgram
from .table import LinkDiagnostic

__all__ = ["link_image"]


def _align8(n: int) -> int:
    return (n + 7) & ~7


def link_image(
    unit_rtls: list[tuple[str, RTLProgram]],
) -> tuple[RTLProgram, list[LinkDiagnostic]]:
    """Merge ``(unit filename, rtl)`` pairs into one linked image."""
    diagnostics: list[LinkDiagnostic] = []
    image = RTLProgram()

    # Pass 1: reconcile global sizes; remember where each function came from.
    sizes: dict[str, int] = {}
    order: list[str] = []
    sym_units: dict[str, str] = {}
    fn_units: dict[str, str] = {}
    for unit_name, rtl in unit_rtls:
        for sym, (_addr, size) in rtl.globals_layout.items():
            prior = sizes.get(sym)
            if prior is None:
                sizes[sym] = size
                sym_units[sym] = unit_name
                order.append(sym)
            else:
                if prior != size and not sym.startswith("__argslot"):
                    diagnostics.append(
                        LinkDiagnostic(
                            code="size-mismatch",
                            name=sym,
                            units=(sym_units[sym], unit_name),
                            message=(
                                f"'{sym}' laid out with {prior} bytes in "
                                f"{sym_units[sym]} and {size} in {unit_name}"
                            ),
                        )
                    )
                sizes[sym] = max(prior, size)
        for name, fn in rtl.functions.items():
            if name in image.functions:
                diagnostics.append(
                    LinkDiagnostic(
                        code="duplicate-definition",
                        name=name,
                        units=(fn_units[name], unit_name),
                        message=f"function '{name}' lowered in both "
                        f"{fn_units[name]} and {unit_name}",
                    )
                )
                continue
            image.functions[name] = fn
            fn_units[name] = unit_name

    # Pass 2: deterministic re-layout from the base address.
    addr = ProgramLowering.BASE_ADDRESS
    for sym in order:
        size = _align8(max(sizes[sym], 1))
        image.globals_layout[sym] = (addr, size)
        addr += size

    # Pass 3: remap each unit's initial data through the owning symbol.
    for unit_name, rtl in unit_rtls:
        for old_addr, value in rtl.init_data.items():
            owner = None
            for sym, (base, size) in rtl.globals_layout.items():
                if base <= old_addr < base + size:
                    owner = (sym, old_addr - base)
                    break
            if owner is None:
                diagnostics.append(
                    LinkDiagnostic(
                        code="orphan-init",
                        name=hex(old_addr),
                        units=(unit_name,),
                        message=f"initial datum at {old_addr:#x} in {unit_name} "
                        "belongs to no global",
                    )
                )
                continue
            sym, offset = owner
            new_base, _ = image.globals_layout[sym]
            image.init_data[new_base + offset] = value
    return image, diagnostics
