"""Diagnostic and error types shared across the front-end.

Every front-end failure is reported through :class:`CompileError` (or a
subclass) carrying the source position, so drivers can render uniform
``file:line:col`` diagnostics regardless of which phase failed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourcePos:
    """A position in a source file (1-based line and column)."""

    line: int
    col: int
    filename: str = "<input>"

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        return f"{self.filename}:{self.line}:{self.col}"


class CompileError(Exception):
    """Base class for all front-end errors.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    pos:
        Source position the error is anchored to, if known.
    """

    def __init__(self, message: str, pos: SourcePos | None = None) -> None:
        self.message = message
        self.pos = pos
        super().__init__(str(self))

    def __str__(self) -> str:
        if self.pos is not None:
            return f"{self.pos}: {self.message}"
        return self.message


class LexError(CompileError):
    """Raised by the lexer on malformed input (bad character, unterminated literal)."""


class ParseError(CompileError):
    """Raised by the parser on a grammar violation."""


class SemanticError(CompileError):
    """Raised by the semantic analyzer (type errors, undeclared names, ...)."""


class LoweringError(CompileError):
    """Raised by the back-end lowering phase on constructs it cannot translate."""
