"""MiniC front-end: lexer, parser, type system, and semantic analysis.

This package is the reproduction's stand-in for the SUIF parser: it turns
C-subset source text into a typed, line-annotated AST that the analysis
package (:mod:`repro.analysis`) consumes to build HLI.
"""

from __future__ import annotations

from . import ast_nodes
from .errors import (
    CompileError,
    LexError,
    LoweringError,
    ParseError,
    SemanticError,
    SourcePos,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .semantic import SemanticAnalyzer, analyze
from .source import SourceFile
from .symbols import FunctionSymbol, Scope, StorageClass, Symbol, SymbolTable
from .typesys import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    FunctionType,
    PointerType,
    ScalarType,
    StructType,
    Type,
)


def parse_and_check(text: str, filename: str = "<input>"):
    """Parse and semantically analyze MiniC source.

    Returns ``(program, symbol_table)``; raises :class:`CompileError` on
    any front-end failure.
    """
    from ..obs import metrics, trace

    with trace.span("frontend.parse_and_check", file=filename):
        with trace.span("frontend.parse"):
            program = parse(text, filename)
        with trace.span("frontend.semantic"):
            table = analyze(program)
        if metrics.is_enabled():
            metrics.add("frontend.functions", len(program.functions))
            metrics.add("frontend.source_lines", text.count("\n") + 1)
    return program, table


__all__ = [
    "ast_nodes",
    "CompileError",
    "LexError",
    "ParseError",
    "SemanticError",
    "LoweringError",
    "SourcePos",
    "SourceFile",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "SemanticAnalyzer",
    "analyze",
    "parse_and_check",
    "Symbol",
    "FunctionSymbol",
    "SymbolTable",
    "Scope",
    "StorageClass",
    "Type",
    "ScalarType",
    "PointerType",
    "ArrayType",
    "StructType",
    "FunctionType",
    "INT",
    "FLOAT",
    "DOUBLE",
    "CHAR",
    "VOID",
]
