"""MiniC type system.

Types are immutable value objects.  The distinctions that matter to the HLI
pipeline are:

* *scalar vs aggregate* — GCC promotes local scalars to pseudo-registers
  (no memory access item), while arrays/structs always live in memory
  (paper Section 3.1.1);
* *pointer vs non-pointer* — pointer dereferences generate items and feed
  the alias table;
* element sizes — used to compute HLI sizes and memory addresses in the
  machine models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class BaseKind(enum.Enum):
    """Fundamental scalar categories."""

    INT = "int"
    FLOAT = "float"
    DOUBLE = "double"
    CHAR = "char"
    VOID = "void"


#: Byte sizes of the base types on the modelled MIPS-like target.
BASE_SIZES: dict[BaseKind, int] = {
    BaseKind.INT: 4,
    BaseKind.FLOAT: 4,
    BaseKind.DOUBLE: 8,
    BaseKind.CHAR: 1,
    BaseKind.VOID: 0,
}


class Type:
    """Abstract base for MiniC types."""

    def size(self) -> int:
        """Size of the type in bytes."""
        raise NotImplementedError

    @property
    def is_scalar(self) -> bool:
        return False

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_array(self) -> bool:
        return False

    @property
    def is_float(self) -> bool:
        """True for floating-point scalar types (float/double)."""
        return False

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_void(self) -> bool:
        return False


@dataclass(frozen=True)
class ScalarType(Type):
    """int, float, double, char, or void."""

    kind: BaseKind

    def size(self) -> int:
        return BASE_SIZES[self.kind]

    @property
    def is_scalar(self) -> bool:
        return self.kind is not BaseKind.VOID

    @property
    def is_float(self) -> bool:
        return self.kind in (BaseKind.FLOAT, BaseKind.DOUBLE)

    @property
    def is_integer(self) -> bool:
        return self.kind in (BaseKind.INT, BaseKind.CHAR)

    @property
    def is_void(self) -> bool:
        return self.kind is BaseKind.VOID

    def __str__(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to any type."""

    pointee: Type

    def size(self) -> int:
        return 4  # 32-bit MIPS-like target

    @property
    def is_scalar(self) -> bool:
        # A pointer variable itself is register-promotable, like a scalar.
        return True

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """Fixed-size array; ``dims`` lists extents outermost-first."""

    element: Type
    dims: tuple[int, ...]

    def size(self) -> int:
        total = self.element.size()
        for d in self.dims:
            total *= d
        return total

    @property
    def is_array(self) -> bool:
        return True

    @property
    def element_type(self) -> Type:
        return self.element

    def strides(self) -> tuple[int, ...]:
        """Row-major strides, in *elements*, for each dimension."""
        out: list[int] = []
        acc = 1
        for d in reversed(self.dims[1:] + (1,)):
            acc *= d
            out.append(acc)
        # out currently is innermost-first cumulative products; rebuild properly
        strides: list[int] = []
        for i in range(len(self.dims)):
            s = 1
            for d in self.dims[i + 1 :]:
                s *= d
            strides.append(s)
        return tuple(strides)

    def __str__(self) -> str:
        dims = "".join(f"[{d}]" for d in self.dims)
        return f"{self.element}{dims}"


@dataclass(frozen=True)
class StructType(Type):
    """A named struct with ordered fields."""

    name: str
    fields: tuple[tuple[str, Type], ...] = field(default_factory=tuple)

    def size(self) -> int:
        # No padding in MiniC's ABI model; fields are laid out contiguously
        # rounded to 4-byte alignment per field for simplicity.
        total = 0
        for _, ftype in self.fields:
            fsize = ftype.size()
            total += (fsize + 3) // 4 * 4 if fsize >= 4 else fsize
        return max(total, 1)

    def field_offset(self, name: str) -> int:
        """Byte offset of field ``name``; raises KeyError if absent."""
        total = 0
        for fname, ftype in self.fields:
            if fname == name:
                return total
            fsize = ftype.size()
            total += (fsize + 3) // 4 * 4 if fsize >= 4 else fsize
        raise KeyError(name)

    def field_type(self, name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise KeyError(name)

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class FunctionType(Type):
    """Signature of a function."""

    ret: Type
    params: tuple[Type, ...]

    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({params})"


# Singletons for the common scalar types.
INT = ScalarType(BaseKind.INT)
FLOAT = ScalarType(BaseKind.FLOAT)
DOUBLE = ScalarType(BaseKind.DOUBLE)
CHAR = ScalarType(BaseKind.CHAR)
VOID = ScalarType(BaseKind.VOID)


def common_arith_type(a: Type, b: Type) -> Type:
    """Usual arithmetic conversions, reduced to MiniC's lattice.

    double > float > int > char; pointers participate only via
    pointer+integer arithmetic handled by the caller.
    """
    rank = {BaseKind.CHAR: 0, BaseKind.INT: 1, BaseKind.FLOAT: 2, BaseKind.DOUBLE: 3}
    if isinstance(a, ScalarType) and isinstance(b, ScalarType):
        winner = a if rank.get(a.kind, -1) >= rank.get(b.kind, -1) else b
        # char promotes to int in arithmetic
        if isinstance(winner, ScalarType) and winner.kind is BaseKind.CHAR:
            return INT
        return winner
    if a.is_pointer:
        return a
    if b.is_pointer:
        return b
    return a
