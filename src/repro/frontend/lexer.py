"""Hand-written lexer for MiniC.

The lexer is a straightforward maximal-munch scanner.  It tracks line and
column positions precisely because the HLI line table (paper Section 2.1)
identifies items by source line number — a one-off error here would
silently desynchronize the front-end items from the back-end memory
references.
"""

from __future__ import annotations

from .errors import LexError, SourcePos
from .source import SourceFile
from .tokens import KEYWORDS, Token, TokenKind

# Multi-character operators ordered longest-first so maximal munch works by
# simple linear scan.
_MULTI_OPS: list[tuple[str, TokenKind]] = [
    ("<<", TokenKind.LSHIFT),
    (">>", TokenKind.RSHIFT),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.ANDAND),
    ("||", TokenKind.OROR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("++", TokenKind.PLUSPLUS),
    ("--", TokenKind.MINUSMINUS),
    ("->", TokenKind.ARROW),
]

_SINGLE_OPS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "~": TokenKind.TILDE,
    "!": TokenKind.BANG,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "=": TokenKind.ASSIGN,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


class Lexer:
    """Scan a :class:`SourceFile` into a token stream."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.text = source.text
        self.n = len(self.text)
        self.i = 0
        self.line = 1
        self.col = 1

    # -- position helpers -------------------------------------------------

    def _pos(self) -> SourcePos:
        return SourcePos(self.line, self.col, self.source.filename)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.i >= self.n:
                return
            if self.text[self.i] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.i += 1

    def _peek(self, offset: int = 0) -> str:
        j = self.i + offset
        return self.text[j] if j < self.n else ""

    # -- scanning ----------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Lex the whole file, returning tokens terminated by one EOF token."""
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    def next_token(self) -> Token:
        """Return the next token, skipping whitespace and comments."""
        self._skip_trivia()
        if self.i >= self.n:
            return Token(TokenKind.EOF, "", self._pos())
        c = self._peek()
        if c.isalpha() or c == "_":
            return self._lex_ident()
        if c.isdigit() or (c == "." and self._peek(1).isdigit()):
            return self._lex_number()
        if c == '"':
            return self._lex_string()
        if c == "'":
            return self._lex_char()
        return self._lex_operator()

    def _skip_trivia(self) -> None:
        while self.i < self.n:
            c = self._peek()
            if c in " \t\r\n":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self.i < self.n and self._peek() != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                start = self._pos()
                self._advance(2)
                while self.i < self.n and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.i >= self.n:
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            elif c == "#":
                # Preprocessor-style lines are treated as comments: MiniC has
                # no preprocessor, but benchmark sources may carry #include
                # lines for realism.
                while self.i < self.n and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _lex_ident(self) -> Token:
        pos = self._pos()
        start = self.i
        while self.i < self.n and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.text[start : self.i]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, pos)

    def _lex_number(self) -> Token:
        pos = self._pos()
        start = self.i
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex(self._peek()):
                raise LexError("malformed hex literal", pos)
            while self._is_hex(self._peek()):
                self._advance()
            text = self.text[start : self.i]
            return Token(TokenKind.INT_LIT, text, pos, value=int(text, 16))
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in ("+", "-") and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("f", "F"):
            # C float suffix; value is unchanged in MiniC.
            is_float = True
            self._advance()
            text = self.text[start : self.i]
            return Token(TokenKind.FLOAT_LIT, text, pos, value=float(text[:-1]))
        text = self.text[start : self.i]
        if is_float:
            return Token(TokenKind.FLOAT_LIT, text, pos, value=float(text))
        return Token(TokenKind.INT_LIT, text, pos, value=int(text))

    @staticmethod
    def _is_hex(c: str) -> bool:
        return bool(c) and (c.isdigit() or c.lower() in "abcdef")

    def _lex_string(self) -> Token:
        pos = self._pos()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.i >= self.n or self._peek() == "\n":
                raise LexError("unterminated string literal", pos)
            c = self._peek()
            if c == '"':
                self._advance()
                break
            if c == "\\":
                esc = self._peek(1)
                if esc not in _ESCAPES:
                    raise LexError(f"unknown escape '\\{esc}'", self._pos())
                chars.append(_ESCAPES[esc])
                self._advance(2)
            else:
                chars.append(c)
                self._advance()
        value = "".join(chars)
        return Token(TokenKind.STRING_LIT, f'"{value}"', pos, value=value)

    def _lex_char(self) -> Token:
        pos = self._pos()
        self._advance()  # opening quote
        if self.i >= self.n:
            raise LexError("unterminated char literal", pos)
        c = self._peek()
        if c == "\\":
            esc = self._peek(1)
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape '\\{esc}'", self._pos())
            value = ord(_ESCAPES[esc])
            self._advance(2)
        else:
            value = ord(c)
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated char literal", pos)
        self._advance()
        return Token(TokenKind.CHAR_LIT, f"'{chr(value)}'", pos, value=value)

    def _lex_operator(self) -> Token:
        pos = self._pos()
        rest = self.text[self.i : self.i + 2]
        for spelling, kind in _MULTI_OPS:
            if rest.startswith(spelling):
                self._advance(len(spelling))
                return Token(kind, spelling, pos)
        c = self._peek()
        kind = _SINGLE_OPS.get(c)
        if kind is None:
            raise LexError(f"unexpected character {c!r}", pos)
        self._advance()
        return Token(kind, c, pos)


def tokenize(text: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: lex ``text`` into a token list (EOF-terminated)."""
    return Lexer(SourceFile(text, filename)).tokens()
