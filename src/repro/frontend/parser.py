"""Recursive-descent parser for MiniC.

The grammar is a practical C subset sufficient for the paper's SPEC-style
benchmark kernels: global/static variables, multi-dimensional arrays,
pointers, structs, functions, the full statement repertoire
(``if``/``for``/``while``/``do``/``break``/``continue``/``return``), and C
expressions with standard precedence.

The parser builds :mod:`repro.frontend.ast_nodes` trees with precise line
annotations; it performs no name resolution (see
:mod:`repro.frontend.semantic`).
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import Lexer
from .source import SourceFile
from .tokens import Token, TokenKind
from .typesys import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    PointerType,
    StructType,
    Type,
)

_TYPE_KEYWORDS = {
    TokenKind.KW_INT: INT,
    TokenKind.KW_FLOAT: FLOAT,
    TokenKind.KW_DOUBLE: DOUBLE,
    TokenKind.KW_CHAR: CHAR,
    TokenKind.KW_VOID: VOID,
}

# Binary operator precedence, higher binds tighter.  Mirrors C.
_BIN_PREC: dict[TokenKind, tuple[int, ast.BinOp]] = {
    TokenKind.OROR: (1, ast.BinOp.OR),
    TokenKind.ANDAND: (2, ast.BinOp.AND),
    TokenKind.PIPE: (3, ast.BinOp.BITOR),
    TokenKind.CARET: (4, ast.BinOp.BITXOR),
    TokenKind.AMP: (5, ast.BinOp.BITAND),
    TokenKind.EQ: (6, ast.BinOp.EQ),
    TokenKind.NE: (6, ast.BinOp.NE),
    TokenKind.LT: (7, ast.BinOp.LT),
    TokenKind.GT: (7, ast.BinOp.GT),
    TokenKind.LE: (7, ast.BinOp.LE),
    TokenKind.GE: (7, ast.BinOp.GE),
    TokenKind.LSHIFT: (8, ast.BinOp.SHL),
    TokenKind.RSHIFT: (8, ast.BinOp.SHR),
    TokenKind.PLUS: (9, ast.BinOp.ADD),
    TokenKind.MINUS: (9, ast.BinOp.SUB),
    TokenKind.STAR: (10, ast.BinOp.MUL),
    TokenKind.SLASH: (10, ast.BinOp.DIV),
    TokenKind.PERCENT: (10, ast.BinOp.MOD),
}

_ASSIGN_OPS: dict[TokenKind, ast.AssignOp] = {
    TokenKind.ASSIGN: ast.AssignOp.ASSIGN,
    TokenKind.PLUS_ASSIGN: ast.AssignOp.ADD,
    TokenKind.MINUS_ASSIGN: ast.AssignOp.SUB,
    TokenKind.STAR_ASSIGN: ast.AssignOp.MUL,
    TokenKind.SLASH_ASSIGN: ast.AssignOp.DIV,
}


class Parser:
    """Parse a token stream into a :class:`~repro.frontend.ast_nodes.Program`."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.toks: list[Token] = Lexer(source).tokens()
        self.i = 0
        self.struct_types: dict[str, StructType] = {}

    # -- token utilities ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        j = min(self.i + offset, len(self.toks) - 1)
        return self.toks[j]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.text or tok.kind.value!r}", tok.pos
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # -- types ----------------------------------------------------------------

    def _at_type(self) -> bool:
        k = self._peek().kind
        if k in _TYPE_KEYWORDS:
            return True
        if k is TokenKind.KW_STRUCT:
            return True
        if k in (TokenKind.KW_STATIC, TokenKind.KW_CONST):
            return True
        return False

    def _parse_base_type(self) -> Type:
        tok = self._peek()
        if tok.kind in _TYPE_KEYWORDS:
            self._advance()
            return _TYPE_KEYWORDS[tok.kind]
        if tok.kind is TokenKind.KW_STRUCT:
            self._advance()
            name_tok = self._expect(TokenKind.IDENT)
            st = self.struct_types.get(name_tok.text)
            if st is None:
                raise ParseError(f"unknown struct '{name_tok.text}'", name_tok.pos)
            return st
        raise ParseError(f"expected type, found {tok.text!r}", tok.pos)

    def _parse_pointers(self, base: Type) -> Type:
        ty = base
        while self._accept(TokenKind.STAR):
            ty = PointerType(ty)
        return ty

    def _parse_array_suffix(self, ty: Type) -> Type:
        dims: list[int] = []
        while self._accept(TokenKind.LBRACKET):
            dim_tok = self._expect(TokenKind.INT_LIT)
            dims.append(int(dim_tok.value))  # type: ignore[arg-type]
            self._expect(TokenKind.RBRACKET)
        if dims:
            return ArrayType(ty, tuple(dims))
        return ty

    # -- top level --------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse the full translation unit."""
        prog = ast.Program(line=1, filename=self.source.filename)
        while not self._at(TokenKind.EOF):
            if self._peek().kind is TokenKind.KW_STRUCT and self._peek(2).kind is TokenKind.LBRACE:
                prog.structs.append(self._parse_struct_def())
                continue
            is_extern = self._accept(TokenKind.KW_EXTERN) is not None
            is_static = self._accept(TokenKind.KW_STATIC) is not None
            if is_extern and is_static:
                raise ParseError("'extern' and 'static' cannot be combined", self._peek().pos)
            self._accept(TokenKind.KW_CONST)
            base = self._parse_base_type()
            ty = self._parse_pointers(base)
            name_tok = self._expect(TokenKind.IDENT)
            if self._at(TokenKind.LPAREN):
                node = self._parse_func_def(ty, name_tok, is_static, is_extern)
                if isinstance(node, ast.FuncProto):
                    prog.protos.append(node)
                else:
                    prog.functions.append(node)
            else:
                self._parse_global_decl(prog, ty, name_tok, is_static, is_extern)
        return prog

    def _parse_struct_def(self) -> ast.StructDef:
        kw = self._expect(TokenKind.KW_STRUCT)
        name_tok = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.LBRACE)
        fields: list[tuple[str, Type]] = []
        while not self._accept(TokenKind.RBRACE):
            base = self._parse_base_type()
            while True:
                fty = self._parse_pointers(base)
                fname = self._expect(TokenKind.IDENT)
                fty = self._parse_array_suffix(fty)
                fields.append((fname.text, fty))
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.SEMI)
        self._expect(TokenKind.SEMI)
        st = StructType(name_tok.text, tuple(fields))
        self.struct_types[name_tok.text] = st
        return ast.StructDef(line=kw.pos.line, name=name_tok.text, fields=fields)

    def _parse_global_decl(
        self,
        prog: ast.Program,
        first_ty: Type,
        first_name: Token,
        is_static: bool,
        is_extern: bool = False,
    ) -> None:
        ty = self._parse_array_suffix(first_ty)
        init = None
        if self._accept(TokenKind.ASSIGN):
            if is_extern:
                raise ParseError(
                    f"extern declaration of '{first_name.text}' cannot have an initializer",
                    first_name.pos,
                )
            init = self._parse_assignment_expr()
        prog.globals.append(
            ast.VarDecl(
                line=first_name.pos.line,
                name=first_name.text,
                ty=ty,
                init=init,
                is_static=is_static,
                is_extern=is_extern,
            )
        )
        while self._accept(TokenKind.COMMA):
            base = first_ty
            while isinstance(base, PointerType):
                base = base.pointee  # comma-separated declarators restart from base type
            dty = self._parse_pointers(base)
            name_tok = self._expect(TokenKind.IDENT)
            dty = self._parse_array_suffix(dty)
            dinit = None
            if self._accept(TokenKind.ASSIGN):
                if is_extern:
                    raise ParseError(
                        f"extern declaration of '{name_tok.text}' cannot have an initializer",
                        name_tok.pos,
                    )
                dinit = self._parse_assignment_expr()
            prog.globals.append(
                ast.VarDecl(
                    line=name_tok.pos.line,
                    name=name_tok.text,
                    ty=dty,
                    init=dinit,
                    is_static=is_static,
                    is_extern=is_extern,
                )
            )
        self._expect(TokenKind.SEMI)

    def _parse_func_def(
        self, ret: Type, name_tok: Token, is_static: bool, is_extern: bool = False
    ) -> ast.FuncDef | ast.FuncProto:
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            if self._at(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
                self._advance()
            else:
                while True:
                    self._accept(TokenKind.KW_CONST)
                    base = self._parse_base_type()
                    pty = self._parse_pointers(base)
                    pname = self._expect(TokenKind.IDENT)
                    # Array parameters decay to pointers, as in C.
                    if self._at(TokenKind.LBRACKET):
                        arr = self._parse_array_suffix(pty)
                        assert isinstance(arr, ArrayType)
                        if len(arr.dims) > 1:
                            pty = PointerType(ArrayType(arr.element, arr.dims[1:]))
                        else:
                            pty = PointerType(arr.element)
                    params.append(ast.Param(line=pname.pos.line, name=pname.text, ty=pty))
                    if not self._accept(TokenKind.COMMA):
                        break
        self._expect(TokenKind.RPAREN)
        if self._accept(TokenKind.SEMI):
            return ast.FuncProto(
                line=name_tok.pos.line,
                name=name_tok.text,
                ret=ret,
                params=params,
                is_extern=is_extern,
            )
        if is_extern:
            raise ParseError(
                f"extern function '{name_tok.text}' cannot have a body", name_tok.pos
            )
        body = self._parse_block()
        return ast.FuncDef(
            line=name_tok.pos.line,
            name=name_tok.text,
            ret=ret,
            params=params,
            body=body,
            is_static=is_static,
        )

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        lb = self._expect(TokenKind.LBRACE)
        stmts: list[ast.Stmt] = []
        while not self._accept(TokenKind.RBRACE):
            stmts.append(self._parse_statement())
        return ast.Block(line=lb.pos.line, stmts=stmts)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        kind = tok.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if self._at_type():
            return self._parse_local_decl()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_RETURN:
            self._advance()
            value = None if self._at(TokenKind.SEMI) else self._parse_expr()
            self._expect(TokenKind.SEMI)
            return ast.Return(line=tok.pos.line, value=value)
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Break(line=tok.pos.line)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Continue(line=tok.pos.line)
        if kind is TokenKind.SEMI:
            self._advance()
            return ast.Block(line=tok.pos.line, stmts=[])
        expr = self._parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.ExprStmt(line=tok.pos.line, expr=expr)

    def _parse_local_decl(self) -> ast.Stmt:
        tok = self._peek()
        is_static = self._accept(TokenKind.KW_STATIC) is not None
        self._accept(TokenKind.KW_CONST)
        base = self._parse_base_type()
        decls: list[ast.Stmt] = []
        while True:
            dty = self._parse_pointers(base)
            name_tok = self._expect(TokenKind.IDENT)
            dty = self._parse_array_suffix(dty)
            init = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_assignment_expr()
            decls.append(
                ast.VarDecl(
                    line=name_tok.pos.line,
                    name=name_tok.text,
                    ty=dty,
                    init=init,
                    is_static=is_static,
                )
            )
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.SEMI)
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(line=tok.pos.line, decls=decls)  # type: ignore[arg-type]

    def _parse_if(self) -> ast.If:
        kw = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        then = self._parse_statement()
        otherwise = None
        if self._accept(TokenKind.KW_ELSE):
            otherwise = self._parse_statement()
        return ast.If(line=kw.pos.line, cond=cond, then=then, otherwise=otherwise)

    def _parse_for(self) -> ast.For:
        kw = self._expect(TokenKind.KW_FOR)
        self._expect(TokenKind.LPAREN)
        init: ast.Stmt | None = None
        if not self._at(TokenKind.SEMI):
            if self._at_type():
                init = self._parse_local_decl()
            else:
                expr = self._parse_expr()
                self._expect(TokenKind.SEMI)
                init = ast.ExprStmt(line=kw.pos.line, expr=expr)
        else:
            self._expect(TokenKind.SEMI)
        cond = None if self._at(TokenKind.SEMI) else self._parse_expr()
        self._expect(TokenKind.SEMI)
        step = None if self._at(TokenKind.RPAREN) else self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_statement()
        return ast.For(line=kw.pos.line, init=init, cond=cond, step=step, body=body)

    def _parse_while(self) -> ast.While:
        kw = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_statement()
        return ast.While(line=kw.pos.line, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        kw = self._expect(TokenKind.KW_DO)
        body = self._parse_statement()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return ast.DoWhile(line=kw.pos.line, body=body, cond=cond)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment_expr()

    def _parse_assignment_expr(self) -> ast.Expr:
        lhs = self._parse_conditional()
        tok = self._peek()
        if tok.kind in _ASSIGN_OPS:
            self._advance()
            rhs = self._parse_assignment_expr()
            return ast.Assign(
                line=tok.pos.line, op=_ASSIGN_OPS[tok.kind], target=lhs, value=rhs
            )
        return lhs

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._at(TokenKind.QUESTION):
            qtok = self._advance()
            then = self._parse_expr()
            self._expect(TokenKind.COLON)
            otherwise = self._parse_conditional()
            return ast.Conditional(line=qtok.pos.line, cond=cond, then=then, otherwise=otherwise)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            entry = _BIN_PREC.get(tok.kind)
            if entry is None or entry[0] < min_prec:
                return lhs
            prec, op = entry
            self._advance()
            rhs = self._parse_binary(prec + 1)
            lhs = ast.Binary(line=tok.pos.line, op=op, lhs=lhs, rhs=rhs)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.MINUS:
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.IntLit):
                return ast.IntLit(line=tok.pos.line, value=-operand.value)
            if isinstance(operand, ast.FloatLit):
                return ast.FloatLit(line=tok.pos.line, value=-operand.value)
            return ast.Unary(line=tok.pos.line, op=ast.UnaryOp.NEG, operand=operand)
        if tok.kind is TokenKind.BANG:
            self._advance()
            return ast.Unary(line=tok.pos.line, op=ast.UnaryOp.NOT, operand=self._parse_unary())
        if tok.kind is TokenKind.TILDE:
            self._advance()
            return ast.Unary(line=tok.pos.line, op=ast.UnaryOp.BITNOT, operand=self._parse_unary())
        if tok.kind is TokenKind.STAR:
            self._advance()
            return ast.Unary(line=tok.pos.line, op=ast.UnaryOp.DEREF, operand=self._parse_unary())
        if tok.kind is TokenKind.AMP:
            self._advance()
            return ast.Unary(line=tok.pos.line, op=ast.UnaryOp.ADDR, operand=self._parse_unary())
        if tok.kind is TokenKind.PLUSPLUS:
            self._advance()
            return ast.IncDec(
                line=tok.pos.line, target=self._parse_unary(), increment=True, prefix=True
            )
        if tok.kind is TokenKind.MINUSMINUS:
            self._advance()
            return ast.IncDec(
                line=tok.pos.line, target=self._parse_unary(), increment=False, prefix=True
            )
        if tok.kind is TokenKind.PLUS:
            self._advance()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET)
                expr = ast.Index(line=tok.pos.line, base=expr, index=index)
            elif tok.kind is TokenKind.DOT:
                self._advance()
                fname = self._expect(TokenKind.IDENT)
                expr = ast.FieldAccess(
                    line=tok.pos.line, base=expr, fieldname=fname.text, arrow=False
                )
            elif tok.kind is TokenKind.ARROW:
                self._advance()
                fname = self._expect(TokenKind.IDENT)
                expr = ast.FieldAccess(
                    line=tok.pos.line, base=expr, fieldname=fname.text, arrow=True
                )
            elif tok.kind is TokenKind.PLUSPLUS:
                self._advance()
                expr = ast.IncDec(line=tok.pos.line, target=expr, increment=True, prefix=False)
            elif tok.kind is TokenKind.MINUSMINUS:
                self._advance()
                expr = ast.IncDec(line=tok.pos.line, target=expr, increment=False, prefix=False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(line=tok.pos.line, value=int(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.CHAR_LIT:
            self._advance()
            return ast.IntLit(line=tok.pos.line, value=int(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(line=tok.pos.line, value=float(tok.value))  # type: ignore[arg-type]
        if tok.kind is TokenKind.STRING_LIT:
            self._advance()
            return ast.StringLit(line=tok.pos.line, value=str(tok.value))
        if tok.kind is TokenKind.LPAREN:
            # Either a parenthesized expression or a cast "(type) expr".
            if self._peek(1).kind in _TYPE_KEYWORDS:
                self._advance()
                self._parse_base_type()
                while self._accept(TokenKind.STAR):
                    pass
                self._expect(TokenKind.RPAREN)
                # MiniC erases casts: types converge in semantic analysis.
                return self._parse_unary()
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                self._advance()
                args: list[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept(TokenKind.COMMA):
                            break
                self._expect(TokenKind.RPAREN)
                return ast.Call(line=tok.pos.line, callee=tok.text, args=args)
            return ast.Name(line=tok.pos.line, ident=tok.text)
        raise ParseError(f"unexpected token {tok.text or tok.kind.value!r}", tok.pos)


def parse(text: str, filename: str = "<input>") -> ast.Program:
    """Parse MiniC source text into a Program AST."""
    return Parser(SourceFile(text, filename)).parse_program()
