"""MiniC pretty-printer.

Renders an AST back to compilable source.  Used for diagnostics and for
the parser round-trip property: ``parse(print(parse(src)))`` must yield
a structurally identical program.
"""

from __future__ import annotations

import io

from . import ast_nodes as ast
from .typesys import ArrayType, PointerType, StructType, Type

_PRECEDENCE: dict[ast.BinOp, int] = {
    ast.BinOp.OR: 1,
    ast.BinOp.AND: 2,
    ast.BinOp.BITOR: 3,
    ast.BinOp.BITXOR: 4,
    ast.BinOp.BITAND: 5,
    ast.BinOp.EQ: 6,
    ast.BinOp.NE: 6,
    ast.BinOp.LT: 7,
    ast.BinOp.GT: 7,
    ast.BinOp.LE: 7,
    ast.BinOp.GE: 7,
    ast.BinOp.SHL: 8,
    ast.BinOp.SHR: 8,
    ast.BinOp.ADD: 9,
    ast.BinOp.SUB: 9,
    ast.BinOp.MUL: 10,
    ast.BinOp.DIV: 10,
    ast.BinOp.MOD: 10,
}


def _base_and_suffix(ty: Type) -> tuple[str, str]:
    """Split a type into declaration base and array suffix."""
    stars = ""
    while isinstance(ty, PointerType):
        stars += "*"
        ty = ty.pointee
    if isinstance(ty, ArrayType):
        dims = "".join(f"[{d}]" for d in ty.dims)
        return f"{ty.element}{('' if not stars else ' ' + stars)}", dims
    if isinstance(ty, StructType):
        return f"struct {ty.name}{('' if not stars else ' ' + stars)}", ""
    return f"{ty}{('' if not stars else ' ' + stars)}", ""


def format_type_decl(name: str, ty: Type) -> str:
    base, suffix = _base_and_suffix(ty)
    sep = "" if base.endswith("*") else " "
    return f"{base}{sep}{name}{suffix}"


class Printer:
    """Render AST nodes to source text."""

    def __init__(self) -> None:
        self.out = io.StringIO()
        self.indent = 0

    def _line(self, text: str) -> None:
        self.out.write("    " * self.indent + text + "\n")

    # -- expressions ---------------------------------------------------------

    def expr(self, e: ast.Expr, parent_prec: int = 0) -> str:
        if isinstance(e, ast.IntLit):
            return str(e.value)
        if isinstance(e, ast.FloatLit):
            text = repr(float(e.value))
            return text if ("." in text or "e" in text or "inf" in text or "nan" in text) else text + ".0"
        if isinstance(e, ast.StringLit):
            escaped = e.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t")
            return f'"{escaped}"'
        if isinstance(e, ast.Name):
            return e.ident
        if isinstance(e, ast.Unary):
            inner = self.expr(e.operand, 11)
            return f"{e.op.value}{inner}"
        if isinstance(e, ast.Binary):
            prec = _PRECEDENCE[e.op]
            lhs = self.expr(e.lhs, prec)
            rhs = self.expr(e.rhs, prec + 1)
            text = f"{lhs} {e.op.value} {rhs}"
            return f"({text})" if prec < parent_prec else text
        if isinstance(e, ast.Conditional):
            text = (
                f"{self.expr(e.cond, 1)} ? {self.expr(e.then)} : "
                f"{self.expr(e.otherwise, 1)}"
            )
            return f"({text})" if parent_prec > 0 else text
        if isinstance(e, ast.Index):
            return f"{self.expr(e.base, 12)}[{self.expr(e.index)}]"
        if isinstance(e, ast.FieldAccess):
            op = "->" if e.arrow else "."
            return f"{self.expr(e.base, 12)}{op}{e.fieldname}"
        if isinstance(e, ast.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.callee}({args})"
        if isinstance(e, ast.Assign):
            return f"{self.expr(e.target, 12)} {e.op.value} {self.expr(e.value)}"
        if isinstance(e, ast.IncDec):
            op = "++" if e.increment else "--"
            inner = self.expr(e.target, 12)
            return f"{op}{inner}" if e.prefix else f"{inner}{op}"
        raise TypeError(f"cannot print {type(e).__name__}")  # pragma: no cover

    # -- statements ------------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            self._line("{")
            self.indent += 1
            for sub in s.stmts:
                self.stmt(sub)
            self.indent -= 1
            self._line("}")
        elif isinstance(s, ast.DeclGroup):
            for d in s.decls:
                self.stmt(d)
        elif isinstance(s, ast.VarDecl):
            decl = format_type_decl(s.name, s.ty)
            static = "static " if s.is_static else ""
            if s.init is not None:
                self._line(f"{static}{decl} = {self.expr(s.init)};")
            else:
                self._line(f"{static}{decl};")
        elif isinstance(s, ast.ExprStmt):
            self._line(f"{self.expr(s.expr)};" if s.expr else ";")
        elif isinstance(s, ast.If):
            self._line(f"if ({self.expr(s.cond)})")
            self._braced(s.then)
            if s.otherwise is not None:
                self._line("else")
                self._braced(s.otherwise)
        elif isinstance(s, ast.While):
            self._line(f"while ({self.expr(s.cond)})")
            self._braced(s.body)
        elif isinstance(s, ast.DoWhile):
            self._line("do")
            self._braced(s.body)
            self._line(f"while ({self.expr(s.cond)});")
        elif isinstance(s, ast.For):
            init = self._for_init(s.init)
            cond = self.expr(s.cond) if s.cond is not None else ""
            step = self.expr(s.step) if s.step is not None else ""
            self._line(f"for ({init}; {cond}; {step})")
            self._braced(s.body)
        elif isinstance(s, ast.Return):
            if s.value is not None:
                self._line(f"return {self.expr(s.value)};")
            else:
                self._line("return;")
        elif isinstance(s, ast.Break):
            self._line("break;")
        elif isinstance(s, ast.Continue):
            self._line("continue;")
        else:  # pragma: no cover
            raise TypeError(f"cannot print {type(s).__name__}")

    def _for_init(self, init: ast.Stmt | None) -> str:
        if init is None:
            return ""
        if isinstance(init, ast.ExprStmt) and init.expr is not None:
            return self.expr(init.expr)
        if isinstance(init, ast.VarDecl):
            decl = format_type_decl(init.name, init.ty)
            if init.init is not None:
                return f"{decl} = {self.expr(init.init)}"
            return decl
        raise TypeError("unsupported for-init")  # pragma: no cover

    def _braced(self, body: ast.Stmt | None) -> None:
        if body is None:
            self._line("{ }")
            return
        if isinstance(body, ast.Block):
            self.stmt(body)
        else:
            self._line("{")
            self.indent += 1
            self.stmt(body)
            self.indent -= 1
            self._line("}")

    # -- top level --------------------------------------------------------------

    def program(self, prog: ast.Program) -> str:
        for sd in prog.structs:
            self._line(f"struct {sd.name} {{")
            self.indent += 1
            for fname, fty in sd.fields:
                self._line(f"{format_type_decl(fname, fty)};")
            self.indent -= 1
            self._line("};")
        for g in prog.globals:
            self.stmt(g)
        for fn in prog.functions:
            ret, _ = _base_and_suffix(fn.ret) if fn.ret is not None else ("void", "")
            params = ", ".join(
                format_type_decl(p.name, p.ty) for p in fn.params
            ) or "void"
            static = "static " if fn.is_static else ""
            self._line(f"{static}{ret} {fn.name}({params})")
            self.stmt(fn.body)
        return self.out.getvalue()


def pretty(prog: ast.Program) -> str:
    """Render a program AST back to MiniC source."""
    return Printer().program(prog)
