"""MiniC abstract syntax tree.

Every node carries the 1-based source ``line`` it originates from: the HLI
line table (paper Section 2.1) is keyed on source lines, so the line
numbers recorded here are the contract between the front-end items and the
back-end RTL memory references.

Nodes also carry a mutable ``ty`` slot filled in by semantic analysis, and
expression nodes may receive an ``item`` annotation from the ITEMGEN phase
(see :mod:`repro.analysis.items`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .typesys import Type


class Node:
    """Base class for all AST nodes."""

    line: int


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions; ``ty`` is set by semantic analysis."""

    line: int
    ty: Optional[Type] = field(default=None, init=False, compare=False)
    # ITEMGEN annotation: the HLI item id generated for this node's memory
    # access, if any (paper Section 3.1.1).
    item_id: Optional[int] = field(default=None, init=False, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Name(Expr):
    """A variable reference; resolved to a Symbol by semantic analysis."""

    ident: str = ""
    symbol: object = field(default=None, compare=False)


class UnaryOp(enum.Enum):
    NEG = "-"
    NOT = "!"
    BITNOT = "~"
    DEREF = "*"
    ADDR = "&"


@dataclass
class Unary(Expr):
    op: UnaryOp = UnaryOp.NEG
    operand: Expr | None = None


class BinOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND = "&&"
    OR = "||"
    BITAND = "&"
    BITOR = "|"
    BITXOR = "^"
    SHL = "<<"
    SHR = ">>"


#: Binary operators whose result is always int (comparisons / logical).
BOOLEAN_OPS = {
    BinOp.LT,
    BinOp.GT,
    BinOp.LE,
    BinOp.GE,
    BinOp.EQ,
    BinOp.NE,
    BinOp.AND,
    BinOp.OR,
}


@dataclass
class Binary(Expr):
    op: BinOp = BinOp.ADD
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class Conditional(Expr):
    """Ternary ``cond ? then : else``."""

    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Index(Expr):
    """Single-dimension array subscript ``base[index]``.

    Multi-dimensional accesses nest: ``a[i][j]`` parses to
    ``Index(Index(a, i), j)``.
    """

    base: Expr | None = None
    index: Expr | None = None


@dataclass
class FieldAccess(Expr):
    """``base.field`` or ``base->field`` (``arrow=True``)."""

    base: Expr | None = None
    fieldname: str = ""
    arrow: bool = False


@dataclass
class Call(Expr):
    callee: str = ""
    args: list[Expr] = field(default_factory=list)
    symbol: object = field(default=None, compare=False)


class AssignOp(enum.Enum):
    ASSIGN = "="
    ADD = "+="
    SUB = "-="
    MUL = "*="
    DIV = "/="


@dataclass
class Assign(Expr):
    """Assignment expression (used at statement level in MiniC idiom)."""

    op: AssignOp = AssignOp.ASSIGN
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class IncDec(Expr):
    """``x++`` / ``x--`` (post) or ``++x`` / ``--x`` (pre)."""

    target: Expr | None = None
    increment: bool = True
    prefix: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    line: int


@dataclass
class VarDecl(Stmt):
    """A single variable declaration, possibly with an initializer."""

    name: str = ""
    ty: Type | None = None
    init: Expr | None = None
    is_static: bool = False
    is_extern: bool = False
    symbol: object = field(default=None, compare=False)


@dataclass
class DeclGroup(Stmt):
    """Several declarations from one ``int i, j;`` line — no new scope."""

    decls: list[VarDecl] = field(default_factory=list)


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None
    # Loop id assigned by region analysis (paper Section 2.2).
    loop_id: Optional[int] = field(default=None, compare=False)


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None
    loop_id: Optional[int] = field(default=None, compare=False)


@dataclass
class For(Stmt):
    """C-style for loop.

    ``init`` may be an Assign/VarDecl-bearing statement or ``None``; the
    front-end dependence analysis recognizes the *canonical induction*
    pattern ``for (i = L; i < U; i += S)`` (see
    :mod:`repro.analysis.subscripts`).
    """

    init: Stmt | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None
    loop_id: Optional[int] = field(default=None, compare=False)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    line: int
    name: str = ""
    ty: Type | None = None
    symbol: object = field(default=None, compare=False)


@dataclass
class FuncDef(Node):
    line: int
    name: str = ""
    ret: Type | None = None
    params: list[Param] = field(default_factory=list)
    body: Block | None = None
    is_static: bool = False


@dataclass
class FuncProto(Node):
    """A function declaration without a body (``extern`` or plain prototype).

    Prototypes only contribute a signature to the symbol table; the
    definition may live in another translation unit and is resolved by
    the whole-program linker (:mod:`repro.linker`).
    """

    line: int
    name: str = ""
    ret: Type | None = None
    params: list[Param] = field(default_factory=list)
    is_extern: bool = False


@dataclass
class StructDef(Node):
    line: int
    name: str = ""
    fields: list[tuple[str, Type]] = field(default_factory=list)


@dataclass
class Program(Node):
    """A complete translation unit."""

    line: int
    filename: str = "<input>"
    globals: list[VarDecl] = field(default_factory=list)
    structs: list[StructDef] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
    protos: list[FuncProto] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        """Look up a function definition by name (KeyError if absent)."""
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def child_exprs(e: Expr) -> list[Expr]:
    """Immediate sub-expressions of ``e`` in evaluation order."""
    if isinstance(e, Unary):
        return [e.operand] if e.operand else []
    if isinstance(e, Binary):
        return [x for x in (e.lhs, e.rhs) if x]
    if isinstance(e, Conditional):
        return [x for x in (e.cond, e.then, e.otherwise) if x]
    if isinstance(e, Index):
        return [x for x in (e.base, e.index) if x]
    if isinstance(e, FieldAccess):
        return [e.base] if e.base else []
    if isinstance(e, Call):
        return list(e.args)
    if isinstance(e, Assign):
        return [x for x in (e.value, e.target) if x]
    if isinstance(e, IncDec):
        return [e.target] if e.target else []
    return []


def walk_exprs(e: Expr):
    """Yield ``e`` and all nested sub-expressions, pre-order."""
    yield e
    for c in child_exprs(e):
        yield from walk_exprs(c)


def stmt_exprs(s: Stmt) -> list[Expr]:
    """Immediate expressions attached to statement ``s`` (not recursive into sub-statements)."""
    if isinstance(s, VarDecl):
        return [s.init] if s.init else []
    if isinstance(s, DeclGroup):
        return [d.init for d in s.decls if d.init]
    if isinstance(s, ExprStmt):
        return [s.expr] if s.expr else []
    if isinstance(s, If):
        return [s.cond] if s.cond else []
    if isinstance(s, (While, DoWhile)):
        return [s.cond] if s.cond else []
    if isinstance(s, For):
        return [x for x in (s.cond, s.step) if x]
    if isinstance(s, Return):
        return [s.value] if s.value else []
    return []


def child_stmts(s: Stmt) -> list[Stmt]:
    """Immediate sub-statements of ``s``."""
    if isinstance(s, Block):
        return list(s.stmts)
    if isinstance(s, DeclGroup):
        return list(s.decls)
    if isinstance(s, If):
        return [x for x in (s.then, s.otherwise) if x]
    if isinstance(s, While):
        return [s.body] if s.body else []
    if isinstance(s, DoWhile):
        return [s.body] if s.body else []
    if isinstance(s, For):
        return [x for x in (s.init, s.body) if x]
    return []


def walk_stmts(s: Stmt):
    """Yield ``s`` and all nested statements, pre-order."""
    yield s
    for c in child_stmts(s):
        yield from walk_stmts(c)
