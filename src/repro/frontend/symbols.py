"""Symbol table for MiniC semantic analysis.

Symbols record the storage class facts the back-end lowering needs (paper
Section 3.1.1): whether GCC would keep the variable in memory (global,
static, aggregate, address-taken) or promote it to a pseudo-register
(other local scalars).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from .typesys import FunctionType, Type


class StorageClass(enum.Enum):
    GLOBAL = "global"
    STATIC = "static"
    LOCAL = "local"
    PARAM = "param"


_symbol_ids = itertools.count(1)


@dataclass
class Symbol:
    """A declared variable or parameter."""

    name: str
    ty: Type
    storage: StorageClass
    line: int = 0
    #: Set by semantic analysis if the program takes the symbol's address;
    #: an address-taken scalar cannot be register-promoted.
    address_taken: bool = False
    #: True for ``extern`` globals declared here but defined in another
    #: translation unit (reconciled by :mod:`repro.linker`).
    is_extern: bool = False
    #: Unique id across the translation unit (stable ordering for tables).
    uid: int = field(default_factory=lambda: next(_symbol_ids))

    @property
    def in_memory(self) -> bool:
        """Would GCC keep this variable in memory (so accesses create items)?

        Mirrors paper Section 3.1.1: globals, statics, aggregates, and
        address-taken locals live in memory; remaining local/param scalars
        are pseudo-registers and generate *no* memory access items.
        """
        if self.storage in (StorageClass.GLOBAL, StorageClass.STATIC):
            return True
        if self.ty.is_array or not self.ty.is_scalar:
            return True
        return self.address_taken

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Symbol({self.name}:{self.ty}, {self.storage.value})"


@dataclass
class FunctionSymbol:
    """A declared or defined function."""

    name: str
    ty: FunctionType
    line: int = 0
    defined: bool = False
    #: True for functions whose body is unavailable (treated as clobbering
    #: all addressable memory in REF/MOD analysis).
    external: bool = False

    def __hash__(self) -> int:
        return hash(("func", self.name))


class Scope:
    """One lexical scope; chains to an enclosing scope."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.names: dict[str, Symbol] = {}

    def declare(self, sym: Symbol) -> None:
        """Add ``sym``; raises KeyError on redeclaration in the same scope."""
        if sym.name in self.names:
            raise KeyError(sym.name)
        self.names[sym.name] = sym

    def lookup(self, name: str) -> Optional[Symbol]:
        """Find ``name`` in this scope or any enclosing scope."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class SymbolTable:
    """Translation-unit level symbol environment."""

    def __init__(self) -> None:
        self.global_scope = Scope()
        self.functions: dict[str, FunctionSymbol] = {}
        self.structs: dict[str, Type] = {}

    def declare_function(self, fsym: FunctionSymbol) -> None:
        existing = self.functions.get(fsym.name)
        if existing is not None and existing.defined and fsym.defined:
            raise KeyError(fsym.name)
        self.functions[fsym.name] = fsym

    def lookup_function(self, name: str) -> Optional[FunctionSymbol]:
        return self.functions.get(name)
