"""Token kinds and the token record produced by the MiniC lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourcePos


class TokenKind(enum.Enum):
    """All lexical categories of MiniC."""

    # literals / names
    IDENT = "ident"
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    STRING_LIT = "string_lit"
    CHAR_LIT = "char_lit"

    # keywords
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_DOUBLE = "double"
    KW_CHAR = "char"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_STRUCT = "struct"
    KW_STATIC = "static"
    KW_CONST = "const"
    KW_EXTERN = "extern"

    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    ARROW = "->"

    # operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    LSHIFT = "<<"
    RSHIFT = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    ANDAND = "&&"
    OROR = "||"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PLUSPLUS = "++"
    MINUSMINUS = "--"
    QUESTION = "?"
    COLON = ":"

    EOF = "<eof>"


#: Reserved words, mapping spelling to keyword token kind.
KEYWORDS: dict[str, TokenKind] = {
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_DOUBLE,
    "char": TokenKind.KW_CHAR,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "struct": TokenKind.KW_STRUCT,
    "static": TokenKind.KW_STATIC,
    "const": TokenKind.KW_CONST,
    "extern": TokenKind.KW_EXTERN,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token.

    Attributes
    ----------
    kind:
        Lexical category.
    text:
        Exact source spelling.
    pos:
        Position of the first character.
    value:
        Decoded value for literals (``int`` or ``float``), else ``None``.
    """

    kind: TokenKind
    text: str
    pos: SourcePos
    value: int | float | str | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, line={self.pos.line})"
