"""Source-file abstraction used by the lexer and diagnostics.

The HLI line table keys everything on *source line numbers* (Section 2.1 of
the paper), so both the front-end and the back-end must agree on a single
line-numbered view of the program.  :class:`SourceFile` is that view.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SourceFile:
    """An in-memory source file with line-indexed access.

    Attributes
    ----------
    text:
        The full program text.
    filename:
        Name used in diagnostics and in the HLI entry header.
    """

    text: str
    filename: str = "<input>"
    _lines: list[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._lines = self.text.splitlines()

    @property
    def num_lines(self) -> int:
        """Number of physical lines in the file."""
        return len(self._lines)

    def line(self, lineno: int) -> str:
        """Return the text of 1-based line ``lineno`` (empty string if out of range)."""
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1]
        return ""

    def count_code_lines(self) -> int:
        """Number of non-blank, non-comment-only lines.

        This is the "code size (# of lines)" statistic of the paper's
        Table 1.  Block comments are handled conservatively: a line is
        counted if it contains any non-whitespace character outside a
        ``//`` comment; lines entirely inside ``/* ... */`` are skipped.
        """
        count = 0
        in_block = False
        for raw in self._lines:
            line = raw
            if in_block:
                end = line.find("*/")
                if end < 0:
                    continue
                line = line[end + 2 :]
                in_block = False
            # strip any block comments opening on this line
            while True:
                start = line.find("/*")
                if start < 0:
                    break
                end = line.find("*/", start + 2)
                if end < 0:
                    line = line[:start]
                    in_block = True
                    break
                line = line[:start] + " " + line[end + 2 :]
            cut = line.find("//")
            if cut >= 0:
                line = line[:cut]
            if line.strip():
                count += 1
        return count
