"""Semantic analysis for MiniC: name resolution and type checking.

Responsibilities:

* build the :class:`~repro.frontend.symbols.SymbolTable` and attach a
  ``Symbol`` to every :class:`~repro.frontend.ast_nodes.Name`, ``VarDecl``
  and ``Param``;
* compute and record the static type of every expression (``expr.ty``);
* mark symbols whose address is taken (they stay in memory and therefore
  generate HLI items, paper Section 3.1.1);
* validate assignments, calls, subscripting and control flow.

Well-known library functions (``printf`` etc.) are pre-declared as
*external*: REF/MOD analysis treats calls to them as clobbering all
addressable memory unless listed in :data:`PURE_EXTERNALS`.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import SemanticError, SourcePos
from .symbols import FunctionSymbol, Scope, StorageClass, Symbol, SymbolTable
from .typesys import (
    DOUBLE,
    INT,
    VOID,
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    Type,
    common_arith_type,
)

#: External functions that read/modify nothing the program can observe
#: through its own variables (their REF/MOD sets are empty).
PURE_EXTERNALS = {"sqrt", "fabs", "sin", "cos", "exp", "log", "pow", "abs", "getchar", "rand"}

#: Externals pre-declared for benchmark realism.  Variadic behaviour is
#: approximated: extra arguments are accepted for names in VARIADIC.
EXTERNAL_SIGNATURES: dict[str, FunctionType] = {
    "printf": FunctionType(INT, ()),
    "malloc": FunctionType(PointerType(INT), (INT,)),
    "free": FunctionType(VOID, (PointerType(INT),)),
    "getchar": FunctionType(INT, ()),
    "putchar": FunctionType(INT, (INT,)),
    "exit": FunctionType(VOID, (INT,)),
    "rand": FunctionType(INT, ()),
    "abs": FunctionType(INT, (INT,)),
}
VARIADIC = {"printf"}

# Math externals get proper double signatures.
for _name in ("sqrt", "fabs", "sin", "cos", "exp", "log"):
    EXTERNAL_SIGNATURES[_name] = FunctionType(DOUBLE, (DOUBLE,))
EXTERNAL_SIGNATURES["pow"] = FunctionType(DOUBLE, (DOUBLE, DOUBLE))


class SemanticAnalyzer:
    """Single-pass (plus pre-declaration) semantic checker."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.table = SymbolTable()
        self.current_fn: ast.FuncDef | None = None
        self.loop_depth = 0

    # -- entry point ---------------------------------------------------------

    def run(self) -> SymbolTable:
        """Analyze the program; returns the populated symbol table."""
        for name, ftype in EXTERNAL_SIGNATURES.items():
            self.table.declare_function(
                FunctionSymbol(name=name, ty=ftype, defined=False, external=True)
            )
        for sdef in self.program.structs:
            self.table.structs[sdef.name] = StructType(sdef.name, tuple(sdef.fields))
        for decl in self.program.globals:
            self._declare_global(decl)
        # Declare prototypes first (regardless of source position) so a
        # definition anywhere in the unit can check against them.
        proto_types: dict[str, FunctionType] = {}
        for proto in self.program.protos:
            ptype = FunctionType(proto.ret or VOID, tuple(p.ty or INT for p in proto.params))
            seen = proto_types.get(proto.name)
            if seen is not None and seen != ptype:
                raise SemanticError(
                    f"conflicting declarations of function '{proto.name}'",
                    SourcePos(proto.line, 1),
                )
            proto_types[proto.name] = ptype
            self.table.declare_function(
                FunctionSymbol(
                    name=proto.name, ty=ptype, line=proto.line, defined=False, external=True
                )
            )
        # Pre-declare all functions so mutual recursion works.
        for fn in self.program.functions:
            ftype = FunctionType(fn.ret or VOID, tuple(p.ty or INT for p in fn.params))
            declared = proto_types.get(fn.name)
            if declared is not None and declared != ftype:
                raise SemanticError(
                    f"definition of '{fn.name}' conflicts with its prototype",
                    SourcePos(fn.line, 1),
                )
            try:
                self.table.declare_function(
                    FunctionSymbol(name=fn.name, ty=ftype, line=fn.line, defined=True)
                )
            except KeyError:
                raise SemanticError(
                    f"redefinition of function '{fn.name}'", SourcePos(fn.line, 1)
                ) from None
        for fn in self.program.functions:
            self._check_function(fn)
        return self.table

    # -- declarations ----------------------------------------------------------

    def _declare_global(self, decl: ast.VarDecl) -> None:
        storage = StorageClass.STATIC if decl.is_static else StorageClass.GLOBAL
        existing = self.table.global_scope.names.get(decl.name)
        if existing is not None:
            # An extern declaration may coexist with (or precede) the
            # defining declaration of the same global; both resolve to one
            # Symbol.  Anything else is a redeclaration error.
            if not (decl.is_extern or existing.is_extern):
                raise SemanticError(
                    f"redeclaration of global '{decl.name}'", SourcePos(decl.line, 1)
                )
            if existing.ty != (decl.ty or INT):
                raise SemanticError(
                    f"conflicting types for global '{decl.name}'", SourcePos(decl.line, 1)
                )
            if not decl.is_extern:
                existing.is_extern = False  # the defining declaration wins
            decl.symbol = existing
            if decl.init is not None:
                self._check_expr(decl.init, self.table.global_scope)
            return
        sym = Symbol(
            name=decl.name,
            ty=decl.ty or INT,
            storage=storage,
            line=decl.line,
            is_extern=decl.is_extern,
        )
        self.table.global_scope.declare(sym)
        decl.symbol = sym
        if decl.init is not None:
            self._check_expr(decl.init, self.table.global_scope)

    def _check_function(self, fn: ast.FuncDef) -> None:
        self.current_fn = fn
        scope = Scope(self.table.global_scope)
        for p in fn.params:
            sym = Symbol(
                name=p.name, ty=p.ty or INT, storage=StorageClass.PARAM, line=p.line
            )
            try:
                scope.declare(sym)
            except KeyError:
                raise SemanticError(
                    f"duplicate parameter '{p.name}'", SourcePos(p.line, 1)
                ) from None
            p.symbol = sym
        assert fn.body is not None
        self._check_block(fn.body, scope)
        self.current_fn = None

    # -- statements ------------------------------------------------------------

    def _check_block(self, block: ast.Block, parent: Scope) -> None:
        scope = Scope(parent)
        for stmt in block.stmts:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            storage = StorageClass.STATIC if stmt.is_static else StorageClass.LOCAL
            sym = Symbol(name=stmt.name, ty=stmt.ty or INT, storage=storage, line=stmt.line)
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
            try:
                scope.declare(sym)
            except KeyError:
                raise SemanticError(
                    f"redeclaration of '{stmt.name}'", SourcePos(stmt.line, 1)
                ) from None
            stmt.symbol = sym
        elif isinstance(stmt, ast.DeclGroup):
            for d in stmt.decls:
                self._check_stmt(d, scope)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body, scope)
            self._check_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._in_loop(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            assert self.current_fn is not None
            ret_ty = self.current_fn.ret or VOID
            if stmt.value is not None:
                vty = self._check_expr(stmt.value, scope)
                if ret_ty.is_void:
                    raise SemanticError(
                        "returning a value from a void function", SourcePos(stmt.line, 1)
                    )
                _ = vty  # MiniC allows implicit numeric conversion on return
            elif not ret_ty.is_void:
                raise SemanticError(
                    "non-void function must return a value", SourcePos(stmt.line, 1)
                )
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                raise SemanticError("break/continue outside a loop", SourcePos(stmt.line, 1))
        else:  # pragma: no cover - exhaustiveness guard
            raise SemanticError(f"unknown statement {type(stmt).__name__}")

    def _in_loop(self, body: ast.Stmt | None, scope: Scope) -> None:
        if body is None:
            return
        self.loop_depth += 1
        try:
            self._check_stmt(body, scope)
        finally:
            self.loop_depth -= 1

    # -- expressions ------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> Type:
        ty = self._infer(expr, scope)
        expr.ty = ty
        return ty

    def _infer(self, expr: ast.Expr, scope: Scope) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return DOUBLE
        if isinstance(expr, ast.StringLit):
            from .typesys import CHAR

            return PointerType(CHAR)
        if isinstance(expr, ast.Name):
            sym = scope.lookup(expr.ident)
            if sym is None:
                raise SemanticError(
                    f"use of undeclared identifier '{expr.ident}'", SourcePos(expr.line, 1)
                )
            expr.symbol = sym
            return sym.ty
        if isinstance(expr, ast.Unary):
            assert expr.operand is not None
            oty = self._check_expr(expr.operand, scope)
            if expr.op is ast.UnaryOp.DEREF:
                if isinstance(oty, PointerType):
                    return oty.pointee
                if isinstance(oty, ArrayType):
                    return self._array_peel(oty)
                raise SemanticError("dereference of non-pointer", SourcePos(expr.line, 1))
            if expr.op is ast.UnaryOp.ADDR:
                self._mark_address_taken(expr.operand)
                if isinstance(oty, ArrayType):
                    return PointerType(oty.element)
                return PointerType(oty)
            if expr.op in (ast.UnaryOp.NOT,):
                return INT
            return oty
        if isinstance(expr, ast.Binary):
            assert expr.lhs is not None and expr.rhs is not None
            lty = self._check_expr(expr.lhs, scope)
            rty = self._check_expr(expr.rhs, scope)
            if expr.op in ast.BOOLEAN_OPS:
                return INT
            # pointer arithmetic: ptr +/- int yields ptr
            if lty.is_pointer and rty.is_integer:
                return lty
            if rty.is_pointer and lty.is_integer and expr.op is ast.BinOp.ADD:
                return rty
            if isinstance(lty, ArrayType) and rty.is_integer:
                return PointerType(lty.element)
            return common_arith_type(lty, rty)
        if isinstance(expr, ast.Conditional):
            assert expr.cond and expr.then and expr.otherwise
            self._check_expr(expr.cond, scope)
            t1 = self._check_expr(expr.then, scope)
            t2 = self._check_expr(expr.otherwise, scope)
            return common_arith_type(t1, t2)
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            bty = self._check_expr(expr.base, scope)
            ity = self._check_expr(expr.index, scope)
            if not ity.is_integer:
                raise SemanticError("array subscript must be an integer", SourcePos(expr.line, 1))
            if isinstance(bty, ArrayType):
                return self._array_peel(bty)
            if isinstance(bty, PointerType):
                return bty.pointee
            raise SemanticError("subscript of non-array", SourcePos(expr.line, 1))
        if isinstance(expr, ast.FieldAccess):
            assert expr.base is not None
            bty = self._check_expr(expr.base, scope)
            if expr.arrow:
                if not isinstance(bty, PointerType) or not isinstance(bty.pointee, StructType):
                    raise SemanticError("'->' on non-struct-pointer", SourcePos(expr.line, 1))
                st = bty.pointee
            else:
                if not isinstance(bty, StructType):
                    raise SemanticError("'.' on non-struct", SourcePos(expr.line, 1))
                st = bty
            try:
                return st.field_type(expr.fieldname)
            except KeyError:
                raise SemanticError(
                    f"no field '{expr.fieldname}' in {st}", SourcePos(expr.line, 1)
                ) from None
        if isinstance(expr, ast.Call):
            fsym = self.table.lookup_function(expr.callee)
            if fsym is None:
                raise SemanticError(
                    f"call to undeclared function '{expr.callee}'", SourcePos(expr.line, 1)
                )
            expr.symbol = fsym
            for a in expr.args:
                aty = self._check_expr(a, scope)
                # Passing an array or taking a pointer to a variable exposes
                # it to the callee: treat like an address-taken use for alias
                # purposes when the argument is a bare array name.
                if isinstance(aty, (ArrayType,)):
                    self._mark_address_taken(a)
            if expr.callee not in VARIADIC and len(expr.args) != len(fsym.ty.params):
                if not fsym.external:
                    raise SemanticError(
                        f"'{expr.callee}' expects {len(fsym.ty.params)} args, "
                        f"got {len(expr.args)}",
                        SourcePos(expr.line, 1),
                    )
            return fsym.ty.ret
        if isinstance(expr, ast.Assign):
            assert expr.target is not None and expr.value is not None
            vty = self._check_expr(expr.value, scope)
            tty = self._check_expr(expr.target, scope)
            self._require_lvalue(expr.target)
            if isinstance(tty, ArrayType):
                raise SemanticError("cannot assign to an array", SourcePos(expr.line, 1))
            _ = vty
            return tty
        if isinstance(expr, ast.IncDec):
            assert expr.target is not None
            tty = self._check_expr(expr.target, scope)
            self._require_lvalue(expr.target)
            return tty
        raise SemanticError(f"unknown expression {type(expr).__name__}")  # pragma: no cover

    @staticmethod
    def _array_peel(aty: ArrayType) -> Type:
        """Result type of subscripting ``aty`` once."""
        if len(aty.dims) > 1:
            return ArrayType(aty.element, aty.dims[1:])
        return aty.element

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Name):
            return
        if isinstance(expr, ast.Index):
            return
        if isinstance(expr, ast.FieldAccess):
            return
        if isinstance(expr, ast.Unary) and expr.op is ast.UnaryOp.DEREF:
            return
        raise SemanticError("expression is not assignable", SourcePos(expr.line, 1))

    def _mark_address_taken(self, expr: ast.Expr) -> None:
        """Record that the storage behind ``expr`` escapes via '&' (or array passing)."""
        e: ast.Expr | None = expr
        while e is not None:
            if isinstance(e, ast.Name):
                if isinstance(e.symbol, Symbol):
                    e.symbol.address_taken = True
                return
            if isinstance(e, ast.Index):
                e = e.base
            elif isinstance(e, ast.FieldAccess):
                e = e.base
            else:
                return


def analyze(program: ast.Program) -> SymbolTable:
    """Run semantic analysis on ``program`` in place; returns the symbol table."""
    return SemanticAnalyzer(program).run()
