"""Reference AST interpreter for MiniC.

A direct tree-walking evaluator, fully independent of the RTL back-end
and the machine executor.  Its purpose is differential testing: the same
program run through ``interp`` and through lowering+execution must
produce identical observable results, which checks the whole compile
chain against a second implementation of the language semantics.

Semantics mirror the modelled machine: 32-bit wrap-around integers,
C-style truncating division, byte-addressed memory for arrays/pointers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from . import ast_nodes as ast
from .symbols import StorageClass, Symbol
from .typesys import ArrayType, PointerType, StructType, Type


class InterpError(Exception):
    """Runtime fault in the reference interpreter."""


class _Return(Exception):
    def __init__(self, value) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Exit(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


def _s32(v: int) -> int:
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _cdiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


@dataclass
class InterpResult:
    """Observable outcome of one interpreted run."""

    ret: object = None
    output: list[str] = field(default_factory=list)
    steps: int = 0


class Interpreter:
    """Tree-walking evaluator over a checked program."""

    def __init__(
        self, program: ast.Program, input_text: str = "", max_steps: int = 10_000_000
    ) -> None:
        self.program = program
        self.input = input_text
        self.input_pos = 0
        self.max_steps = max_steps
        self.steps = 0
        self.output: list[str] = []
        #: storage for memory-resident objects: base address -> bytearray-like
        self.memory: dict[int, object] = {}
        #: symbol uid -> base address for memory-resident variables
        self.addr_of: dict[int, int] = {}
        self._next_addr = 0x1000
        self._heap_next = 0x4000000
        self._rand_state = 12345
        #: register-promoted scalars live in per-frame dicts
        self._globals_frame: dict[int, object] = {}
        for decl in program.globals:
            if isinstance(decl.symbol, Symbol):
                self._alloc(decl.symbol)
                if decl.init is not None:
                    val = self._eval(decl.init, self._globals_frame)
                    self._write(self.addr_of[decl.symbol.uid], val)

    # -- storage ------------------------------------------------------------

    def _alloc(self, sym: Symbol) -> int:
        addr = self.addr_of.get(sym.uid)
        if addr is None:
            size = max(sym.ty.size(), 1)
            addr = self._next_addr
            self._next_addr += (size + 7) // 8 * 8
            self.addr_of[sym.uid] = addr
        return addr

    def _read(self, addr: int, is_float: bool = False):
        return self.memory.get(addr, 0.0 if is_float else 0)

    def _write(self, addr: int, value) -> None:
        self.memory[addr] = value

    # -- entry --------------------------------------------------------------

    def run(self, entry: str = "main", args: tuple = ()) -> InterpResult:
        try:
            ret = self._call(entry, list(args))
        except _Exit as e:
            ret = e.code
        return InterpResult(ret=ret, output=self.output, steps=self.steps)

    def _call(self, name: str, args: list):
        builtin = _BUILTINS.get(name)
        if builtin is not None:
            return builtin(self, args)
        try:
            fn = self.program.function(name)
        except KeyError:
            raise InterpError(f"call to unknown function '{name}'") from None
        frame: dict[int, object] = {}
        for p, a in zip(fn.params, args):
            if isinstance(p.symbol, Symbol):
                if p.symbol.in_memory and not p.symbol.ty.is_array:
                    addr = self._alloc(p.symbol)
                    self._write(addr, a)
                else:
                    frame[p.symbol.uid] = a
        try:
            assert fn.body is not None
            self._exec_block(fn.body, frame)
        except _Return as r:
            return r.value
        return 0

    # -- statements --------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError("step limit exceeded")

    def _exec_block(self, block: ast.Block, frame) -> None:
        for s in block.stmts:
            self._exec(s, frame)

    def _exec(self, stmt: ast.Stmt, frame) -> None:
        self._tick()
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, frame)
        elif isinstance(stmt, ast.DeclGroup):
            for d in stmt.decls:
                self._exec(d, frame)
        elif isinstance(stmt, ast.VarDecl):
            sym = stmt.symbol
            if not isinstance(sym, Symbol):
                return
            init = self._eval(stmt.init, frame) if stmt.init is not None else None
            if sym.in_memory and not sym.ty.is_array:
                addr = self._alloc(sym)
                if init is not None:
                    self._write(addr, self._coerce(init, sym.ty))
            elif sym.ty.is_array or isinstance(sym.ty, StructType):
                self._alloc(sym)
            else:
                frame[sym.uid] = (
                    self._coerce(init, sym.ty) if init is not None else 0
                )
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._eval(stmt.expr, frame)
        elif isinstance(stmt, ast.If):
            if self._truthy(self._eval(stmt.cond, frame)):
                if stmt.then is not None:
                    self._exec(stmt.then, frame)
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise, frame)
        elif isinstance(stmt, ast.While):
            while self._truthy(self._eval(stmt.cond, frame)):
                self._tick()
                try:
                    if stmt.body is not None:
                        self._exec(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.DoWhile):
            while True:
                self._tick()
                try:
                    if stmt.body is not None:
                        self._exec(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self._truthy(self._eval(stmt.cond, frame)):
                    break
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._exec(stmt.init, frame)
            while stmt.cond is None or self._truthy(self._eval(stmt.cond, frame)):
                self._tick()
                try:
                    if stmt.body is not None:
                        self._exec(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step, frame)
        elif isinstance(stmt, ast.Return):
            value = self._eval(stmt.value, frame) if stmt.value is not None else 0
            raise _Return(value)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        else:  # pragma: no cover
            raise InterpError(f"unknown statement {type(stmt).__name__}")

    # -- lvalues ----------------------------------------------------------------

    def _address(self, e: ast.Expr, frame) -> int:
        if isinstance(e, ast.Name):
            sym = e.symbol
            assert isinstance(sym, Symbol)
            return self._alloc(sym)
        if isinstance(e, ast.Index):
            assert e.base is not None and e.index is not None
            bty = e.base.ty
            if bty is not None and bty.is_array:
                base = self._address(e.base, frame)
            else:
                base = int(self._eval(e.base, frame))
            idx = int(self._eval(e.index, frame))
            stride = max(e.ty.size(), 1) if e.ty is not None else 4
            return base + idx * stride
        if isinstance(e, ast.FieldAccess):
            assert e.base is not None
            if e.arrow:
                base = int(self._eval(e.base, frame))
                st = e.base.ty.pointee if isinstance(e.base.ty, PointerType) else None
            else:
                base = self._address(e.base, frame)
                st = e.base.ty
            off = st.field_offset(e.fieldname) if isinstance(st, StructType) else 0
            return base + off
        if isinstance(e, ast.Unary) and e.op is ast.UnaryOp.DEREF:
            assert e.operand is not None
            return int(self._eval(e.operand, frame))
        raise InterpError(f"no address for {type(e).__name__}")

    def _load_lvalue(self, e: ast.Expr, frame):
        if isinstance(e, ast.Name):
            sym = e.symbol
            assert isinstance(sym, Symbol)
            if sym.in_memory and not sym.ty.is_array:
                return self._read(self.addr_of.get(sym.uid, self._alloc(sym)),
                                  sym.ty.is_float)
            if sym.ty.is_array or isinstance(sym.ty, StructType):
                return self._alloc(sym)
            if sym.uid in frame:
                return frame[sym.uid]
            if sym.storage in (StorageClass.GLOBAL, StorageClass.STATIC):
                return self._read(self._alloc(sym), sym.ty.is_float)
            return 0
        addr = self._address(e, frame)
        is_float = e.ty is not None and e.ty.is_float
        return self._read(addr, is_float)

    def _store_lvalue(self, e: ast.Expr, frame, value) -> None:
        value = self._coerce(value, e.ty)
        if isinstance(e, ast.Name):
            sym = e.symbol
            assert isinstance(sym, Symbol)
            if sym.in_memory and not sym.ty.is_array:
                self._write(self._alloc(sym), value)
            else:
                frame[sym.uid] = value
            return
        self._write(self._address(e, frame), value)

    # -- expressions --------------------------------------------------------------

    @staticmethod
    def _truthy(v) -> bool:
        return v != 0

    def _coerce(self, value, ty: Optional[Type]):
        if ty is None:
            return value
        if ty.is_float:
            return float(value)
        if ty.is_integer:
            return _s32(int(value))
        return value

    def _eval(self, e: ast.Expr, frame):
        self._tick()
        if isinstance(e, ast.IntLit):
            return e.value
        if isinstance(e, ast.FloatLit):
            return e.value
        if isinstance(e, ast.StringLit):
            return e.value
        if isinstance(e, (ast.Name, ast.Index, ast.FieldAccess)):
            val = self._load_lvalue(e, frame)
            if e.ty is not None and e.ty.is_array:
                # arrays decay to addresses when used as values
                if isinstance(e, ast.Name):
                    return val
                return self._address(e, frame)
            return val
        if isinstance(e, ast.Unary):
            return self._eval_unary(e, frame)
        if isinstance(e, ast.Binary):
            return self._eval_binary(e, frame)
        if isinstance(e, ast.Conditional):
            if self._truthy(self._eval(e.cond, frame)):
                return self._eval(e.then, frame)
            return self._eval(e.otherwise, frame)
        if isinstance(e, ast.Call):
            args = [self._eval(a, frame) for a in e.args]
            return self._call(e.callee, args)
        if isinstance(e, ast.Assign):
            value = self._eval(e.value, frame)
            if e.op is not ast.AssignOp.ASSIGN:
                old = self._load_lvalue(e.target, frame)
                value = self._apply_binop(
                    {"+=": ast.BinOp.ADD, "-=": ast.BinOp.SUB,
                     "*=": ast.BinOp.MUL, "/=": ast.BinOp.DIV}[e.op.value],
                    old,
                    value,
                    e.target.ty,
                )
            self._store_lvalue(e.target, frame, value)
            return self._coerce(value, e.target.ty)
        if isinstance(e, ast.IncDec):
            old = self._load_lvalue(e.target, frame)
            step = 1
            if isinstance(e.target.ty, PointerType):
                step = max(e.target.ty.pointee.size(), 1)
            new = self._apply_binop(
                ast.BinOp.ADD if e.increment else ast.BinOp.SUB,
                old,
                step,
                e.target.ty,
            )
            self._store_lvalue(e.target, frame, new)
            return new if e.prefix else old
        raise InterpError(f"unknown expression {type(e).__name__}")

    def _eval_unary(self, e: ast.Unary, frame):
        assert e.operand is not None
        if e.op is ast.UnaryOp.DEREF:
            addr = int(self._eval(e.operand, frame))
            return self._read(addr, e.ty is not None and e.ty.is_float)
        if e.op is ast.UnaryOp.ADDR:
            return self._address(e.operand, frame)
        v = self._eval(e.operand, frame)
        if e.op is ast.UnaryOp.NEG:
            return -v if isinstance(v, float) else _s32(-int(v))
        if e.op is ast.UnaryOp.NOT:
            return 0 if self._truthy(v) else 1
        return _s32(~int(v))

    def _eval_binary(self, e: ast.Binary, frame):
        assert e.lhs is not None and e.rhs is not None
        op = e.op
        if op is ast.BinOp.AND:
            if not self._truthy(self._eval(e.lhs, frame)):
                return 0
            return 1 if self._truthy(self._eval(e.rhs, frame)) else 0
        if op is ast.BinOp.OR:
            if self._truthy(self._eval(e.lhs, frame)):
                return 1
            return 1 if self._truthy(self._eval(e.rhs, frame)) else 0
        lhs = self._eval(e.lhs, frame)
        rhs = self._eval(e.rhs, frame)
        # pointer arithmetic scaling
        lty, rty = e.lhs.ty, e.rhs.ty
        if lty is not None and (lty.is_pointer or lty.is_array) and rty is not None and rty.is_integer:
            rhs = int(rhs) * self._pointee(lty)
        elif rty is not None and (rty.is_pointer or rty.is_array) and lty is not None and lty.is_integer:
            lhs = int(lhs) * self._pointee(rty)
        return self._apply_binop(op, lhs, rhs, e.ty)

    @staticmethod
    def _pointee(ty: Type) -> int:
        if isinstance(ty, PointerType):
            return max(ty.pointee.size(), 1)
        if isinstance(ty, ArrayType):
            return max(ty.element.size(), 1)
        return 1

    def _apply_binop(self, op: ast.BinOp, lhs, rhs, ty: Optional[Type]):
        is_float = isinstance(lhs, float) or isinstance(rhs, float)
        if op is ast.BinOp.ADD:
            r = lhs + rhs
        elif op is ast.BinOp.SUB:
            r = lhs - rhs
        elif op is ast.BinOp.MUL:
            r = lhs * rhs
        elif op is ast.BinOp.DIV:
            if is_float:
                r = lhs / rhs if rhs != 0 else math.inf
            else:
                if rhs == 0:
                    raise InterpError("integer division by zero")
                r = _cdiv(int(lhs), int(rhs))
        elif op is ast.BinOp.MOD:
            if rhs == 0:
                raise InterpError("integer modulo by zero")
            r = int(lhs) - _cdiv(int(lhs), int(rhs)) * int(rhs)
        elif op is ast.BinOp.LT:
            return 1 if lhs < rhs else 0
        elif op is ast.BinOp.GT:
            return 1 if lhs > rhs else 0
        elif op is ast.BinOp.LE:
            return 1 if lhs <= rhs else 0
        elif op is ast.BinOp.GE:
            return 1 if lhs >= rhs else 0
        elif op is ast.BinOp.EQ:
            return 1 if lhs == rhs else 0
        elif op is ast.BinOp.NE:
            return 1 if lhs != rhs else 0
        elif op is ast.BinOp.BITAND:
            r = int(lhs) & int(rhs)
        elif op is ast.BinOp.BITOR:
            r = int(lhs) | int(rhs)
        elif op is ast.BinOp.BITXOR:
            r = int(lhs) ^ int(rhs)
        elif op is ast.BinOp.SHL:
            r = int(lhs) << (int(rhs) & 31)
        elif op is ast.BinOp.SHR:
            r = int(lhs) >> (int(rhs) & 31)
        else:  # pragma: no cover
            raise InterpError(f"unknown op {op}")
        if is_float and op in (ast.BinOp.ADD, ast.BinOp.SUB, ast.BinOp.MUL, ast.BinOp.DIV):
            return float(r)
        return _s32(int(r))

    # -- builtins -----------------------------------------------------------------

    def _getchar(self) -> int:
        if self.input_pos >= len(self.input):
            return -1
        c = ord(self.input[self.input_pos])
        self.input_pos += 1
        return c

    def _rand(self) -> int:
        self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rand_state


def _b_printf(itp: Interpreter, args):
    fmt = args[0] if args else ""
    try:
        rendered = str(fmt) % tuple(args[1:]) if args[1:] else str(fmt)
    except (TypeError, ValueError):
        rendered = " ".join(str(a) for a in args)
    itp.output.append(rendered)
    return len(rendered)


def _b_malloc(itp: Interpreter, args):
    addr = itp._heap_next
    itp._heap_next += max(8, (int(args[0]) + 7) // 8 * 8)
    return addr


_BUILTINS = {
    "printf": _b_printf,
    "putchar": lambda itp, a: (itp.output.append(chr(int(a[0]) & 0xFF)), int(a[0]))[1],
    "getchar": lambda itp, a: itp._getchar(),
    "exit": lambda itp, a: (_ for _ in ()).throw(_Exit(int(a[0]) if a else 0)),
    "malloc": _b_malloc,
    "free": lambda itp, a: 0,
    "rand": lambda itp, a: itp._rand(),
    "abs": lambda itp, a: abs(int(a[0])),
    "sqrt": lambda itp, a: math.sqrt(abs(float(a[0]))),
    "fabs": lambda itp, a: abs(float(a[0])),
    "sin": lambda itp, a: math.sin(float(a[0])),
    "cos": lambda itp, a: math.cos(float(a[0])),
    "exp": lambda itp, a: math.exp(min(float(a[0]), 700.0)),
    "log": lambda itp, a: math.log(abs(float(a[0])) + 1e-300),
    "pow": lambda itp, a: math.pow(float(a[0]), float(a[1])),
}


def interpret(
    program: ast.Program,
    entry: str = "main",
    args: tuple = (),
    input_text: str = "",
    max_steps: int = 10_000_000,
) -> InterpResult:
    """Run the reference interpreter over a checked program."""
    return Interpreter(program, input_text=input_text, max_steps=max_steps).run(
        entry, args
    )
