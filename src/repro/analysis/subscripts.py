"""Affine (linear) subscript forms for array dependence analysis.

The front-end dependence tests (paper Section 3.1.2) operate on array
subscripts expressed as linear combinations of scalar symbols::

    a[2*i + j - 1]   ->   {i: 2, j: 1} + (-1)

Subscripts that cannot be put in this form are *non-affine*; references
with non-affine subscripts get conservative (``maybe``) treatment
everywhere downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import ast_nodes as ast
from ..frontend.symbols import Symbol


@dataclass(frozen=True)
class Affine:
    """An affine integer expression ``sum(coeff * symbol) + const``.

    ``terms`` maps symbols (by identity) to non-zero integer coefficients.
    Immutable; arithmetic helpers return new instances.
    """

    terms: tuple[tuple[Symbol, int], ...] = field(default_factory=tuple)
    const: int = 0

    # -- constructors -------------------------------------------------------

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine((), value)

    @staticmethod
    def var(sym: Symbol, coeff: int = 1) -> "Affine":
        if coeff == 0:
            return Affine((), 0)
        return Affine(((sym, coeff),), 0)

    @staticmethod
    def _normalize(terms: dict[Symbol, int], const: int) -> "Affine":
        items = tuple(
            sorted(((s, c) for s, c in terms.items() if c != 0), key=lambda t: t[0].uid)
        )
        return Affine(items, const)

    # -- arithmetic ----------------------------------------------------------

    def _as_dict(self) -> dict[Symbol, int]:
        return dict(self.terms)

    def __add__(self, other: "Affine") -> "Affine":
        d = self._as_dict()
        for s, c in other.terms:
            d[s] = d.get(s, 0) + c
        return Affine._normalize(d, self.const + other.const)

    def __sub__(self, other: "Affine") -> "Affine":
        d = self._as_dict()
        for s, c in other.terms:
            d[s] = d.get(s, 0) - c
        return Affine._normalize(d, self.const - other.const)

    def __neg__(self) -> "Affine":
        return Affine(tuple((s, -c) for s, c in self.terms), -self.const)

    def scale(self, k: int) -> "Affine":
        if k == 0:
            return Affine((), 0)
        return Affine(tuple((s, c * k) for s, c in self.terms), self.const * k)

    # -- queries ---------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def coeff(self, sym: Symbol) -> int:
        for s, c in self.terms:
            if s is sym:
                return c
        return 0

    def drop(self, sym: Symbol) -> "Affine":
        """The affine form with ``sym``'s term removed."""
        return Affine(tuple((s, c) for s, c in self.terms if s is not sym), self.const)

    def symbols(self) -> list[Symbol]:
        return [s for s, _ in self.terms]

    def evaluate(self, env: dict[Symbol, int]) -> int:
        """Evaluate with concrete symbol values (KeyError if one is missing)."""
        return self.const + sum(c * env[s] for s, c in self.terms)

    def key(self) -> tuple:
        """A hashable canonical key for structural equality."""
        return (tuple((s.uid, c) for s, c in self.terms), self.const)

    def __str__(self) -> str:
        parts: list[str] = []
        for s, c in self.terms:
            if c == 1:
                parts.append(s.name)
            elif c == -1:
                parts.append(f"-{s.name}")
            else:
                parts.append(f"{c}*{s.name}")
        if self.const or not parts:
            parts.append(str(self.const))
        out = parts[0]
        for p in parts[1:]:
            out += p if p.startswith("-") else "+" + p
        return out


def affine_of(expr: ast.Expr) -> Affine | None:
    """Extract the affine form of an integer expression, or ``None``.

    Only scalar integer variables and integer literals participate; any
    other construct (array loads, calls, float math, ``*``/``/`` between
    variables) makes the subscript non-affine.
    """
    if isinstance(expr, ast.IntLit):
        return Affine.constant(expr.value)
    if isinstance(expr, ast.Name):
        sym = expr.symbol
        if isinstance(sym, Symbol) and sym.ty.is_integer:
            return Affine.var(sym)
        return None
    if isinstance(expr, ast.Unary) and expr.op is ast.UnaryOp.NEG:
        inner = affine_of(expr.operand) if expr.operand else None
        return None if inner is None else -inner
    if isinstance(expr, ast.Binary):
        if expr.lhs is None or expr.rhs is None:
            return None
        if expr.op is ast.BinOp.ADD:
            lhs, rhs = affine_of(expr.lhs), affine_of(expr.rhs)
            if lhs is not None and rhs is not None:
                return lhs + rhs
            return None
        if expr.op is ast.BinOp.SUB:
            lhs, rhs = affine_of(expr.lhs), affine_of(expr.rhs)
            if lhs is not None and rhs is not None:
                return lhs - rhs
            return None
        if expr.op is ast.BinOp.MUL:
            lhs, rhs = affine_of(expr.lhs), affine_of(expr.rhs)
            if lhs is not None and rhs is not None:
                if lhs.is_constant:
                    return rhs.scale(lhs.const)
                if rhs.is_constant:
                    return lhs.scale(rhs.const)
            return None
        if expr.op is ast.BinOp.SHL:
            lhs, rhs = affine_of(expr.lhs), affine_of(expr.rhs)
            if lhs is not None and rhs is not None and rhs.is_constant and rhs.const >= 0:
                return lhs.scale(1 << rhs.const)
            return None
    return None
