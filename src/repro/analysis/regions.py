"""Hierarchical region structure (paper Section 2.2).

A *region* is either a whole program unit (function) or a loop; loops nest
to form a region tree.  All HLI tables are scoped to regions: equivalent
access classes, alias sets, loop-carried dependences, and call REF/MOD
sets are each expressed "with respect to" a region.

This module builds the region tree for a function and recognizes
*canonical induction loops* — ``for (i = L; i < U; i += S)`` with integer
``S`` — whose bounds feed the dependence tests.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..frontend import ast_nodes as ast
from ..frontend.symbols import Symbol
from .subscripts import Affine, affine_of


class RegionKind(enum.Enum):
    UNIT = "unit"
    LOOP = "loop"


@dataclass
class LoopInfo:
    """Canonical description of an induction loop, when recognizable.

    ``lower``/``upper`` are affine bounds; ``upper_inclusive`` reflects the
    comparison operator (``<=`` vs ``<``).  ``trip_count`` is computed when
    both bounds are compile-time constants.  Any field may be ``None`` when
    the pattern is not recognized — tests must then be conservative.
    """

    var: Optional[Symbol] = None
    lower: Optional[Affine] = None
    upper: Optional[Affine] = None
    upper_inclusive: bool = False
    step: Optional[int] = None

    @property
    def is_canonical(self) -> bool:
        return self.var is not None and self.step is not None

    def trip_count(self) -> Optional[int]:
        """Constant trip count if bounds and step are fully known, else None."""
        if (
            self.var is None
            or self.step is None
            or self.step == 0
            or self.lower is None
            or self.upper is None
            or not self.lower.is_constant
            or not self.upper.is_constant
        ):
            return None
        lo, hi = self.lower.const, self.upper.const
        if self.upper_inclusive:
            hi += 1 if self.step > 0 else -1
        span = hi - lo
        if self.step > 0:
            return max(0, (span + self.step - 1) // self.step)
        return max(0, (lo - hi + (-self.step) - 1) // (-self.step))

    def iteration_range(self) -> Optional[range]:
        """Concrete iteration values of the induction variable, if constant."""
        n = self.trip_count()
        if n is None or self.lower is None or self.step is None:
            return None
        lo = self.lower.const
        return range(lo, lo + n * self.step, self.step) if n else range(lo, lo)


@dataclass
class Region:
    """One node in the region tree."""

    region_id: int
    kind: RegionKind
    line: int
    parent: Optional["Region"] = None
    children: list["Region"] = field(default_factory=list)
    loop: Optional[LoopInfo] = None
    #: The loop statement (For/While/DoWhile) for LOOP regions.
    stmt: Optional[ast.Stmt] = None
    #: Function name for UNIT regions.
    unit_name: str = ""
    #: Scalar symbols assigned anywhere inside this region (incl. children);
    #: used for loop-invariance checks in dependence testing.
    modified_scalars: set[Symbol] = field(default_factory=set)

    def __hash__(self) -> int:
        return self.region_id

    def ancestors(self) -> Iterator["Region"]:
        """Yield self, parent, grandparent, ... up to the unit region."""
        r: Optional[Region] = self
        while r is not None:
            yield r
            r = r.parent

    def depth(self) -> int:
        return sum(1 for _ in self.ancestors()) - 1

    def walk(self) -> Iterator["Region"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for c in self.children:
            yield from c.walk()

    def enclosing_loops(self) -> list["Region"]:
        """Loop regions enclosing (and including) this one, outermost first."""
        loops = [r for r in self.ancestors() if r.kind is RegionKind.LOOP]
        loops.reverse()
        return loops

    def is_ancestor_of(self, other: "Region") -> bool:
        return any(r is self for r in other.ancestors())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.unit_name if self.kind is RegionKind.UNIT else f"loop@{self.line}"
        return f"Region({self.region_id}, {tag})"


def common_region(a: Region, b: Region) -> Region:
    """Innermost region enclosing both ``a`` and ``b``."""
    seen = {id(r) for r in a.ancestors()}
    for r in b.ancestors():
        if id(r) in seen:
            return r
    raise ValueError("regions are not in the same tree")


# ---------------------------------------------------------------------------
# Loop recognition
# ---------------------------------------------------------------------------


def recognize_loop(stmt: ast.Stmt) -> LoopInfo:
    """Extract canonical induction information from a loop statement.

    Only ``For`` loops of the shape ``for (i = L; i </<= U; i++/i+=c/i=i+c)``
    are recognized; everything else yields an empty (non-canonical)
    :class:`LoopInfo`.
    """
    if not isinstance(stmt, ast.For):
        return LoopInfo()
    var = _induction_var_of_init(stmt.init)
    if var is None:
        return LoopInfo()
    lower = _lower_bound_of_init(stmt.init)
    step = _step_of(stmt.step, var)
    upper, inclusive = _upper_bound_of_cond(stmt.cond, var, step)
    return LoopInfo(var=var, lower=lower, upper=upper, upper_inclusive=inclusive, step=step)


def _induction_var_of_init(init: ast.Stmt | None) -> Optional[Symbol]:
    if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
        tgt = init.expr.target
        if (
            init.expr.op is ast.AssignOp.ASSIGN
            and isinstance(tgt, ast.Name)
            and isinstance(tgt.symbol, Symbol)
            and tgt.symbol.ty.is_integer
        ):
            return tgt.symbol
    if isinstance(init, ast.VarDecl) and isinstance(init.symbol, Symbol):
        if init.symbol.ty.is_integer and init.init is not None:
            return init.symbol
    return None


def _lower_bound_of_init(init: ast.Stmt | None) -> Optional[Affine]:
    if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assign):
        return affine_of(init.expr.value) if init.expr.value else None
    if isinstance(init, ast.VarDecl) and init.init is not None:
        return affine_of(init.init)
    return None


def _step_of(step: ast.Expr | None, var: Symbol) -> Optional[int]:
    if step is None:
        return None
    if isinstance(step, ast.IncDec):
        t = step.target
        if isinstance(t, ast.Name) and t.symbol is var:
            return 1 if step.increment else -1
        return None
    if isinstance(step, ast.Assign):
        t = step.target
        if not (isinstance(t, ast.Name) and t.symbol is var):
            return None
        if step.op is ast.AssignOp.ADD:
            inc = affine_of(step.value) if step.value else None
            if inc is not None and inc.is_constant:
                return inc.const
            return None
        if step.op is ast.AssignOp.SUB:
            inc = affine_of(step.value) if step.value else None
            if inc is not None and inc.is_constant:
                return -inc.const
            return None
        if step.op is ast.AssignOp.ASSIGN and step.value is not None:
            form = affine_of(step.value)
            if form is not None and form.coeff(var) == 1:
                rest = form.drop(var)
                if rest.is_constant:
                    return rest.const
            return None
    return None


def _upper_bound_of_cond(
    cond: ast.Expr | None, var: Symbol, step: Optional[int]
) -> tuple[Optional[Affine], bool]:
    if not isinstance(cond, ast.Binary) or cond.lhs is None or cond.rhs is None:
        return None, False
    lhs_is_var = isinstance(cond.lhs, ast.Name) and cond.lhs.symbol is var
    rhs_is_var = isinstance(cond.rhs, ast.Name) and cond.rhs.symbol is var
    if lhs_is_var and cond.op in (ast.BinOp.LT, ast.BinOp.LE):
        bound = affine_of(cond.rhs)
        return bound, cond.op is ast.BinOp.LE
    if lhs_is_var and cond.op in (ast.BinOp.GT, ast.BinOp.GE) and step is not None and step < 0:
        bound = affine_of(cond.rhs)
        return bound, cond.op is ast.BinOp.GE
    if rhs_is_var and cond.op in (ast.BinOp.GT, ast.BinOp.GE):
        # U > i  <=>  i < U
        bound = affine_of(cond.lhs)
        return bound, cond.op is ast.BinOp.GE
    return None, False


# ---------------------------------------------------------------------------
# Region tree construction
# ---------------------------------------------------------------------------


class RegionTreeBuilder:
    """Build the region tree of one function (paper Figure 2 structure)."""

    def __init__(self, id_counter: Optional[itertools.count] = None) -> None:
        self._ids = id_counter if id_counter is not None else itertools.count(1)
        #: Map loop statement id() -> region, for later lookups.
        self.loop_regions: dict[int, Region] = {}
        #: Map each statement id() -> its immediately enclosing region.
        self.stmt_region: dict[int, Region] = {}

    def build(self, fn: ast.FuncDef) -> Region:
        root = Region(
            region_id=next(self._ids),
            kind=RegionKind.UNIT,
            line=fn.line,
            unit_name=fn.name,
        )
        assert fn.body is not None
        for s in fn.body.stmts:
            self._visit(s, root)
        _collect_modified(root, fn)
        return root

    def _visit(self, stmt: ast.Stmt, region: Region) -> None:
        self.stmt_region[id(stmt)] = region
        if isinstance(stmt, (ast.For, ast.While, ast.DoWhile)):
            child = Region(
                region_id=next(self._ids),
                kind=RegionKind.LOOP,
                line=stmt.line,
                parent=region,
                loop=recognize_loop(stmt),
                stmt=stmt,
            )
            region.children.append(child)
            self.loop_regions[id(stmt)] = child
            stmt.loop_id = child.region_id
            # The loop's init statement executes in the *parent* region; the
            # cond/step execute per-iteration (inside the loop region).
            if isinstance(stmt, ast.For) and stmt.init is not None:
                self.stmt_region[id(stmt.init)] = region
                for sub in ast.child_stmts(stmt.init):
                    self.stmt_region[id(sub)] = region
            body = stmt.body
            if body is not None:
                self._visit_body(body, child)
            return
        for sub in ast.child_stmts(stmt):
            self._visit(sub, region)

    def _visit_body(self, body: ast.Stmt, region: Region) -> None:
        self.stmt_region[id(body)] = region
        if isinstance(body, ast.Block):
            for s in body.stmts:
                self._visit(s, region)
        else:
            self._visit(body, region)


def _collect_modified(root: Region, fn: ast.FuncDef) -> None:
    """Populate ``modified_scalars`` for every region, propagating upward."""

    def record_expr(e: ast.Expr, region: Region) -> None:
        for x in ast.walk_exprs(e):
            target = None
            if isinstance(x, (ast.Assign, ast.IncDec)):
                target = x.target
            if isinstance(target, ast.Name) and isinstance(target.symbol, Symbol):
                for r in region.ancestors():
                    r.modified_scalars.add(target.symbol)

    def record_decl(stmt: ast.Stmt, region: Region) -> None:
        # A declaration with an initializer writes its symbol each time the
        # enclosing region iterates.
        if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
            if isinstance(stmt.symbol, Symbol):
                for r in region.ancestors():
                    r.modified_scalars.add(stmt.symbol)

    def visit(stmt: ast.Stmt, current: Region) -> None:
        record_decl(stmt, current)
        if isinstance(stmt, (ast.For, ast.While, ast.DoWhile)):
            loop_region = next((r for r in current.children if r.stmt is stmt), current)
            if isinstance(stmt, ast.For) and stmt.init is not None:
                visit(stmt.init, current)
            # cond and step run once per iteration: inside the loop region
            for e in ast.stmt_exprs(stmt):
                record_expr(e, loop_region)
            if stmt.body is not None:
                visit_body(stmt.body, loop_region)
            return
        for e in ast.stmt_exprs(stmt):
            record_expr(e, current)
        for sub in ast.child_stmts(stmt):
            visit(sub, current)

    def visit_body(body: ast.Stmt, region: Region) -> None:
        if isinstance(body, ast.Block):
            for s in body.stmts:
                visit(s, region)
        else:
            visit(body, region)

    assert fn.body is not None
    for s in fn.body.stmts:
        visit(s, root)
