"""Memory access item generation — the ITEMGEN phase (paper Section 3.1.1).

ITEMGEN walks the typed AST in *canonical evaluation order* and emits one
:class:`MemoryItem` per memory access the back-end will generate, assigning
each a unique ID within the program unit.  The enumeration rules here are
the reproduction's version of "the front-end must follow GCC's RTL
generation rules": :mod:`repro.backend.lowering` emits its RTL memory
references in exactly the same per-line order, which is what makes the
order-based line-table mapping in :mod:`repro.backend.mapping` correct.
Tests cross-check the contract on every workload program.

What generates an item (mirroring the paper):

* loads/stores of *memory-resident* variables: globals, statics, arrays,
  struct variables, address-taken locals, pointer dereferences;
* function calls (one ``CALL`` item per call site);
* stack-passed outgoing arguments (beyond the 4 argument registers) and
  stack-resident incoming parameters.

What does **not** generate an item: accesses to register-promoted local
scalars and temporaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..frontend import ast_nodes as ast
from ..frontend.symbols import StorageClass, Symbol
from ..frontend.typesys import INT, ArrayType, PointerType, StructType
from .subscripts import Affine, affine_of

#: Number of argument-passing registers in the modelled MIPS o32-like ABI.
NUM_ARG_REGS = 4


class AccessKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    CALL = "call"


class AccessRole(enum.Enum):
    """Why the access exists (paper distinguishes variable accesses from
    ABI-induced parameter/return traffic)."""

    VALUE = "value"  # ordinary variable access
    STACK_ARG = "stack_arg"  # outgoing argument stored to the arg area
    ENTRY_PARAM = "entry_param"  # incoming stack parameter read at entry
    CALLSITE = "callsite"  # the call itself


# Synthetic symbols for the outgoing-argument stack area.  The area is
# reused by every call in a unit, exactly like $sp+16+4k slots on MIPS.
_ARG_SLOT_SYMBOLS: dict[int, Symbol] = {}


def arg_slot_symbol(index: int) -> Symbol:
    """Synthetic memory symbol for outgoing stack-arg slot ``index`` (0-based)."""
    sym = _ARG_SLOT_SYMBOLS.get(index)
    if sym is None:
        sym = Symbol(name=f"__argslot{index}", ty=INT, storage=StorageClass.GLOBAL)
        _ARG_SLOT_SYMBOLS[index] = sym
    return sym


@dataclass(frozen=True)
class SymbolicRef:
    """Front-end description of one memory reference.

    ``base`` is the declared symbol the access goes through (the pointed-to
    object is *not* resolved here — that is the alias analysis' job when
    ``is_deref`` is set).  ``subscripts`` holds one affine form per array
    dimension, ``None`` marking a non-affine subscript.
    """

    base: Optional[Symbol]
    is_deref: bool = False
    subscripts: tuple[Optional[Affine], ...] = ()
    field_name: Optional[str] = None
    #: Extra affine byte/element offset applied to a pointer deref
    #: (``*(p + k)`` carries ``k`` here).
    deref_offset: Optional[Affine] = None

    def key(self) -> tuple:
        """Hashable identity used for equivalence-class grouping."""
        subs = tuple(s.key() if s is not None else ("<nonaffine>", id(self)) for s in self.subscripts)
        off = self.deref_offset.key() if self.deref_offset is not None else None
        return (
            self.base.uid if self.base is not None else -id(self),
            self.is_deref,
            subs,
            self.field_name,
            off,
        )

    def __str__(self) -> str:
        base = self.base.name if self.base else "?"
        out = f"*{base}" if self.is_deref else base
        for s in self.subscripts:
            out += f"[{s}]" if s is not None else "[?]"
        if self.field_name:
            out += f".{self.field_name}"
        if self.deref_offset is not None and (
            self.deref_offset.terms or self.deref_offset.const
        ):
            out += f"+({self.deref_offset})"
        return out


@dataclass
class Access:
    """One canonical-order memory access produced by the enumerator."""

    node: ast.Expr
    kind: AccessKind
    line: int
    role: AccessRole = AccessRole.VALUE
    arg_index: int = -1  # for STACK_ARG / ENTRY_PARAM roles


@dataclass
class MemoryItem:
    """An HLI item: ``(ID, type)`` plus analysis-side metadata.

    Only ``item_id``, ``kind`` and ``line`` are serialized into the HLI
    line table; ``ref`` drives table construction in the front-end.
    """

    item_id: int
    kind: AccessKind
    line: int
    ref: Optional[SymbolicRef] = None
    callee: Optional[str] = None
    role: AccessRole = AccessRole.VALUE
    node: Optional[ast.Expr] = field(default=None, repr=False)
    #: Modification-epoch snapshot: for every scalar symbol appearing in
    #: the ref's subscripts, the number of assignments to it seen by the
    #: ITEMGEN walk so far.  Two items with equal epochs for a symbol saw
    #: the same value of it within one iteration of their home region,
    #: which lets constant-offset subscripts (``perm[j]`` vs ``perm[j-1]``)
    #: be disambiguated even when the symbol varies across iterations.
    epochs: tuple[tuple[int, int], ...] = ()

    def __hash__(self) -> int:
        return self.item_id


# ---------------------------------------------------------------------------
# Canonical access enumeration (the shared "RTL generation rules")
# ---------------------------------------------------------------------------


def _is_memory_name(e: ast.Expr) -> bool:
    return (
        isinstance(e, ast.Name)
        and isinstance(e.symbol, Symbol)
        and e.symbol.in_memory
        and not e.symbol.ty.is_array
        and not isinstance(e.symbol.ty, StructType)
    )


def walk_rvalue(e: ast.Expr) -> Iterator[Access]:
    """Accesses performed when evaluating ``e`` for its value."""
    if isinstance(e, (ast.IntLit, ast.FloatLit, ast.StringLit)):
        return
    if isinstance(e, ast.Name):
        if _is_memory_name(e):
            yield Access(e, AccessKind.LOAD, e.line)
        return
    if isinstance(e, ast.Unary):
        assert e.operand is not None
        if e.op is ast.UnaryOp.DEREF:
            yield from walk_rvalue(e.operand)
            yield Access(e, AccessKind.LOAD, e.line)
            return
        if e.op is ast.UnaryOp.ADDR:
            yield from walk_address(e.operand)
            return
        yield from walk_rvalue(e.operand)
        return
    if isinstance(e, ast.Binary):
        assert e.lhs is not None and e.rhs is not None
        yield from walk_rvalue(e.lhs)
        yield from walk_rvalue(e.rhs)
        return
    if isinstance(e, ast.Conditional):
        assert e.cond and e.then and e.otherwise
        yield from walk_rvalue(e.cond)
        yield from walk_rvalue(e.then)
        yield from walk_rvalue(e.otherwise)
        return
    if isinstance(e, ast.Index):
        yield from walk_address(e)
        # Subscripting an array-of-arrays produces an address, not a load.
        if e.ty is not None and e.ty.is_array:
            return
        yield Access(e, AccessKind.LOAD, e.line)
        return
    if isinstance(e, ast.FieldAccess):
        yield from walk_address(e)
        if e.ty is not None and e.ty.is_array:
            return
        yield Access(e, AccessKind.LOAD, e.line)
        return
    if isinstance(e, ast.Call):
        yield from walk_call(e)
        return
    if isinstance(e, ast.Assign):
        yield from walk_assign(e)
        return
    if isinstance(e, ast.IncDec):
        yield from walk_incdec(e)
        return
    raise TypeError(f"unhandled expression {type(e).__name__}")  # pragma: no cover


def walk_address(e: ast.Expr) -> Iterator[Access]:
    """Accesses performed when computing the *address* of lvalue ``e``."""
    if isinstance(e, ast.Name):
        return  # frame/global address is a constant
    if isinstance(e, ast.Index):
        assert e.base is not None and e.index is not None
        bty = e.base.ty
        if bty is not None and bty.is_array:
            yield from walk_address(e.base)
        else:
            # base is a pointer *value*
            yield from walk_rvalue(e.base)
        yield from walk_rvalue(e.index)
        return
    if isinstance(e, ast.FieldAccess):
        assert e.base is not None
        if e.arrow:
            yield from walk_rvalue(e.base)
        else:
            yield from walk_address(e.base)
        return
    if isinstance(e, ast.Unary) and e.op is ast.UnaryOp.DEREF:
        assert e.operand is not None
        yield from walk_rvalue(e.operand)
        return
    # e.g. &(*(p+1)) style constructs fall through above; anything else has
    # no address (semantic analysis rejects it as an lvalue).
    return


def walk_store(e: ast.Expr) -> Iterator[Access]:
    """The STORE access to lvalue ``e`` itself (address accesses NOT included)."""
    if isinstance(e, ast.Name):
        if _is_memory_name(e):
            yield Access(e, AccessKind.STORE, e.line)
        return
    if isinstance(e, (ast.Index, ast.FieldAccess)):
        yield Access(e, AccessKind.STORE, e.line)
        return
    if isinstance(e, ast.Unary) and e.op is ast.UnaryOp.DEREF:
        yield Access(e, AccessKind.STORE, e.line)
        return
    raise TypeError(f"not an lvalue: {type(e).__name__}")  # pragma: no cover


def _lvalue_load(e: ast.Expr) -> Iterator[Access]:
    """A LOAD of lvalue ``e`` (for compound assignment), address NOT included."""
    if isinstance(e, ast.Name):
        if _is_memory_name(e):
            yield Access(e, AccessKind.LOAD, e.line)
        return
    if isinstance(e, (ast.Index, ast.FieldAccess)):
        yield Access(e, AccessKind.LOAD, e.line)
        return
    if isinstance(e, ast.Unary) and e.op is ast.UnaryOp.DEREF:
        yield Access(e, AccessKind.LOAD, e.line)
        return


def walk_assign(e: ast.Assign) -> Iterator[Access]:
    assert e.target is not None and e.value is not None
    yield from walk_rvalue(e.value)
    yield from walk_address(e.target)
    if e.op is not ast.AssignOp.ASSIGN:
        yield from _lvalue_load(e.target)
    yield from walk_store(e.target)


def walk_incdec(e: ast.IncDec) -> Iterator[Access]:
    assert e.target is not None
    yield from walk_address(e.target)
    yield from _lvalue_load(e.target)
    yield from walk_store(e.target)


def walk_call(e: ast.Call) -> Iterator[Access]:
    for idx, arg in enumerate(e.args):
        yield from walk_rvalue(arg)
        if idx >= NUM_ARG_REGS:
            yield Access(e, AccessKind.STORE, e.line, AccessRole.STACK_ARG, arg_index=idx)
    yield Access(e, AccessKind.CALL, e.line, AccessRole.CALLSITE)


def walk_stmt_accesses(stmt: ast.Stmt) -> Iterator[Access]:
    """Accesses of the statement's *own* expressions, canonical order.

    Sub-statements (loop/if bodies) are NOT entered: callers traverse the
    statement tree themselves so each access lands in the right region.
    For ``for`` statements the order is init, cond, step — matching the
    top-test loop layout the back-end emits (init; L: cond; body; step).
    """
    if isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            yield from walk_rvalue(stmt.init)
            sym = stmt.symbol
            if isinstance(sym, Symbol) and sym.in_memory and not sym.ty.is_array:
                name = ast.Name(line=stmt.line, ident=stmt.name)
                name.symbol = sym
                name.ty = sym.ty
                yield Access(name, AccessKind.STORE, stmt.line)
        return
    if isinstance(stmt, ast.DeclGroup):
        for d in stmt.decls:
            yield from walk_stmt_accesses(d)
        return
    if isinstance(stmt, ast.ExprStmt):
        if stmt.expr is not None:
            yield from walk_rvalue(stmt.expr)
        return
    if isinstance(stmt, ast.If):
        if stmt.cond is not None:
            yield from walk_rvalue(stmt.cond)
        return
    if isinstance(stmt, ast.For):
        if stmt.init is not None:
            yield from walk_stmt_accesses(stmt.init)
        if stmt.cond is not None:
            yield from walk_rvalue(stmt.cond)
        if stmt.step is not None:
            yield from walk_rvalue(stmt.step)
        return
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        if stmt.cond is not None:
            yield from walk_rvalue(stmt.cond)
        return
    if isinstance(stmt, ast.Return):
        if stmt.value is not None:
            yield from walk_rvalue(stmt.value)
        return
    return


# ---------------------------------------------------------------------------
# SymbolicRef construction
# ---------------------------------------------------------------------------


def symbolic_ref(node: ast.Expr) -> SymbolicRef:
    """Build the analysis-side description of access ``node``."""
    if isinstance(node, ast.Name):
        sym = node.symbol if isinstance(node.symbol, Symbol) else None
        return SymbolicRef(base=sym)
    if isinstance(node, ast.Index):
        subs: list[Optional[Affine]] = []
        e: ast.Expr = node
        while isinstance(e, ast.Index):
            assert e.index is not None
            subs.append(affine_of(e.index))
            assert e.base is not None
            e = e.base
        subs.reverse()
        if isinstance(e, ast.Name) and isinstance(e.symbol, Symbol):
            base = e.symbol
            deref = isinstance(base.ty, PointerType)
            return SymbolicRef(base=base, is_deref=deref, subscripts=tuple(subs))
        if isinstance(e, ast.FieldAccess):
            inner = symbolic_ref(e)
            return SymbolicRef(
                base=inner.base,
                is_deref=inner.is_deref,
                subscripts=tuple(subs),
                field_name=inner.field_name,
            )
        return SymbolicRef(base=None, is_deref=True, subscripts=tuple(subs))
    if isinstance(node, ast.FieldAccess):
        assert node.base is not None
        if node.arrow:
            b = node.base
            sym = b.symbol if isinstance(b, ast.Name) and isinstance(b.symbol, Symbol) else None
            return SymbolicRef(base=sym, is_deref=True, field_name=node.fieldname)
        inner_base = node.base
        sym = None
        if isinstance(inner_base, ast.Name) and isinstance(inner_base.symbol, Symbol):
            sym = inner_base.symbol
        return SymbolicRef(base=sym, field_name=node.fieldname)
    if isinstance(node, ast.Unary) and node.op is ast.UnaryOp.DEREF:
        operand = node.operand
        assert operand is not None
        # *p  or  *(p + k)
        if isinstance(operand, ast.Name) and isinstance(operand.symbol, Symbol):
            return SymbolicRef(base=operand.symbol, is_deref=True)
        if (
            isinstance(operand, ast.Binary)
            and operand.op in (ast.BinOp.ADD, ast.BinOp.SUB)
            and isinstance(operand.lhs, ast.Name)
            and isinstance(operand.lhs.symbol, Symbol)
        ):
            off = affine_of(operand.rhs) if operand.rhs is not None else None
            if off is not None and operand.op is ast.BinOp.SUB:
                off = -off
            return SymbolicRef(base=operand.lhs.symbol, is_deref=True, deref_offset=off)
        return SymbolicRef(base=None, is_deref=True)
    raise TypeError(f"no symbolic ref for {type(node).__name__}")  # pragma: no cover


def ref_for_access(acc: Access) -> Optional[SymbolicRef]:
    """SymbolicRef for an access, handling the ABI-induced roles."""
    if acc.role is AccessRole.CALLSITE:
        return None
    if acc.role is AccessRole.STACK_ARG:
        return SymbolicRef(base=arg_slot_symbol(acc.arg_index))
    if acc.role is AccessRole.ENTRY_PARAM:
        return SymbolicRef(base=arg_slot_symbol(acc.arg_index))
    return symbolic_ref(acc.node)


# ---------------------------------------------------------------------------
# ITEMGEN driver
# ---------------------------------------------------------------------------


def assigned_scalars(e: ast.Expr) -> set[int]:
    """UIDs of scalar symbols assigned anywhere inside expression ``e``."""
    out: set[int] = set()
    for x in ast.walk_exprs(e):
        target = None
        if isinstance(x, (ast.Assign, ast.IncDec)):
            target = x.target
        if isinstance(target, ast.Name) and isinstance(target.symbol, Symbol):
            out.add(target.symbol.uid)
    return out


def assigned_in_stmt(stmt: ast.Stmt) -> set[int]:
    """UIDs of scalar symbols the statement itself assigns (incl. decls)."""
    out: set[int] = set()
    for e in ast.stmt_exprs(stmt):
        out |= assigned_scalars(e)
    if isinstance(stmt, ast.VarDecl) and stmt.init is not None:
        if isinstance(stmt.symbol, Symbol):
            out.add(stmt.symbol.uid)
    if isinstance(stmt, ast.DeclGroup):
        for d in stmt.decls:
            out |= assigned_in_stmt(d)
    return out


class ItemGenerator:
    """Assign item IDs over one function, in canonical order.

    Produces the per-line item lists (the HLI line table content) and a map
    from region to the items *immediately* contained in it.  Item IDs are
    allocated from a caller-supplied counter so that region/class IDs can
    share the same number space (the paper gives classes item IDs).

    The generator also maintains the per-symbol modification-epoch
    counters snapshotted into each item (see :class:`MemoryItem.epochs`).
    """

    def __init__(self, next_id) -> None:
        self._next_id = next_id
        self.items: list[MemoryItem] = []
        #: item -> its immediately enclosing Region (set by caller)
        self.item_region: dict[int, object] = {}
        #: scalar symbol uid -> number of assignments walked so far
        self.mod_counts: dict[int, int] = {}
        self._taint = 0

    def bump_epochs(self, sym_uids: set[int]) -> None:
        for uid in sym_uids:
            self.mod_counts[uid] = self.mod_counts.get(uid, 0) + 1

    def _snapshot(self, ref: Optional[SymbolicRef], tainted: set[int]) -> tuple:
        if ref is None:
            return ()
        uids: set[int] = set()
        if ref.is_deref and ref.base is not None:
            # The pointed-to location changes when the pointer itself is
            # reassigned: the base is part of the address for derefs.
            uids.add(ref.base.uid)
        forms = list(ref.subscripts)
        if ref.deref_offset is not None:
            forms.append(ref.deref_offset)
        for f in forms:
            if f is None:
                continue
            for s in f.symbols():
                uids.add(s.uid)
        out = []
        for uid in sorted(uids):
            if uid in tainted:
                # The enclosing statement itself assigns this symbol: give
                # the item a unique epoch so no rescue ever applies.
                self._taint -= 1
                out.append((uid, self._taint))
            else:
                out.append((uid, self.mod_counts.get(uid, 0)))
        return tuple(out)

    def gen_for_accesses(
        self, accesses: list[Access], region, tainted: set[int] | None = None
    ) -> list[MemoryItem]:
        """Create items for ``accesses``, all in ``region``; returns them.

        ``tainted`` lists symbol uids assigned by the statement the
        accesses belong to (their epoch comparisons are disabled).
        """
        out: list[MemoryItem] = []
        tainted = tainted or set()
        for acc in accesses:
            ref = ref_for_access(acc)
            item = MemoryItem(
                item_id=self._next_id(),
                kind=acc.kind,
                line=acc.line,
                ref=ref,
                callee=acc.node.callee if isinstance(acc.node, ast.Call) else None,
                role=acc.role,
                node=acc.node,
                epochs=self._snapshot(ref, tainted),
            )
            # Annotate the AST node, as SUIF annotates its IR (Section 3.1.1).
            if acc.role is AccessRole.VALUE and acc.kind is not AccessKind.CALL:
                acc.node.item_id = item.item_id
            out.append(item)
            self.items.append(item)
            self.item_region[item.item_id] = region
        return out
