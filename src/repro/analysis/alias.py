"""Flow-insensitive points-to (alias) analysis.

An Andersen-style inclusion analysis over the whole translation unit.
Every pointer-typed symbol gets a points-to set of *abstract objects*:
named variables, one heap object per ``malloc`` call site, and a TOP
marker for pointers whose value escapes the analysis (externals,
unanalyzable arithmetic).

The paper's front-end uses exactly this kind of information to build the
HLI alias table: "all the pointer references that may refer to multiple
locations are determined [and] an alias relationship is created between
the equivalent access class for each pointer reference and the equivalent
access class to which the pointer reference may refer" (Section 3.1.2).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional

from ..frontend import ast_nodes as ast
from ..frontend.symbols import Symbol, SymbolTable
from ..frontend.typesys import ArrayType, PointerType


@dataclass(frozen=True)
class HeapObject:
    """Abstract heap object allocated at one malloc call site."""

    site_id: int
    line: int

    @property
    def name(self) -> str:
        return f"heap@{self.line}#{self.site_id}"


#: Abstract memory object: a named variable or a heap allocation.
MemObject = object  # Symbol | HeapObject

#: Marker object meaning "could point anywhere addressable".  Interned so
#: the bare ``is TOP`` identity checks survive a binfmt round trip (the
#: decoder interns every string it reconstructs).
TOP = sys.intern("<top>")


@dataclass
class PointsToResult:
    """Solved points-to sets plus the universe of addressable objects."""

    points_to: dict[Symbol, set] = field(default_factory=dict)
    addressable: set = field(default_factory=set)

    def targets(self, ptr: Symbol) -> set:
        """Objects ``ptr`` may reference; TOP expands to the full universe."""
        pts = self.points_to.get(ptr, {TOP})
        if TOP in pts:
            return set(self.addressable) | (pts - {TOP})
        return set(pts)

    def may_alias_symbols(self, p: Symbol, q: Symbol) -> bool:
        """May two pointers reference a common object?"""
        return bool(self.targets(p) & self.targets(q))

    def may_point_to(self, ptr: Symbol, obj) -> bool:
        return obj in self.targets(ptr)


class PointsToAnalysis:
    """Build and solve the inclusion-constraint system for one program."""

    def __init__(self, program: ast.Program, table: SymbolTable) -> None:
        self.program = program
        self.table = table
        self.pts: dict[Symbol, set] = {}
        #: subset edges p -> q meaning pts(p) ⊆ pts(q)
        self.edges: dict[Symbol, set[Symbol]] = {}
        self.addressable: set = set()
        self._heap_count = 0
        #: parameter symbols per function name, for interprocedural flow
        self._params: dict[str, list[Symbol]] = {}
        #: pointer symbols returned by each function
        self._returns: dict[str, set[Symbol]] = {}
        #: call sites: (callee, arg exprs, receiver symbol or None)
        self._calls: list[tuple[str, list[ast.Expr], Optional[Symbol]]] = []

    # -- public API ---------------------------------------------------------

    def run(self) -> PointsToResult:
        self._collect_addressable()
        for fn in self.program.functions:
            self._params[fn.name] = [
                p.symbol for p in fn.params if isinstance(p.symbol, Symbol)
            ]
        for fn in self.program.functions:
            assert fn.body is not None
            for stmt in ast.walk_stmts(fn.body):
                for e in ast.stmt_exprs(stmt):
                    self._visit_expr(e, fn)
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    self._record_return(fn, stmt.value)
        self._apply_calls()
        self._solve()
        return PointsToResult(points_to=self.pts, addressable=self.addressable)

    # -- universe -------------------------------------------------------------

    def _collect_addressable(self) -> None:
        for decl in self.program.globals:
            if isinstance(decl.symbol, Symbol):
                self.addressable.add(decl.symbol)
        for fn in self.program.functions:
            assert fn.body is not None
            for stmt in ast.walk_stmts(fn.body):
                if isinstance(stmt, ast.VarDecl) and isinstance(stmt.symbol, Symbol):
                    sym = stmt.symbol
                    if sym.in_memory:
                        self.addressable.add(sym)

    # -- constraint generation ---------------------------------------------------

    def _pts_of(self, sym: Symbol) -> set:
        s = self.pts.get(sym)
        if s is None:
            s = set()
            self.pts[sym] = s
        return s

    def _add_edge(self, src: Symbol, dst: Symbol) -> None:
        self.edges.setdefault(src, set()).add(dst)

    def _base_object_of(self, e: ast.Expr):
        """Abstract object whose address expression ``e`` denotes, or TOP."""
        if isinstance(e, ast.Name) and isinstance(e.symbol, Symbol):
            return e.symbol
        if isinstance(e, ast.Index):
            return self._base_object_of(e.base) if e.base is not None else TOP
        if isinstance(e, ast.FieldAccess):
            if e.arrow:
                # &p->f: object is whatever p points to; approximate TOP to
                # stay sound without field-sensitive objects.
                return TOP
            return self._base_object_of(e.base) if e.base is not None else TOP
        return TOP

    def _pointer_sources(self, e: ast.Expr, fn: ast.FuncDef) -> set:
        """Abstract values a pointer-typed expression may evaluate to.

        Returns a set of: Symbol objects (address of that variable),
        HeapObject, TOP, or ``("copy", sym)`` marking a copy of pointer
        variable ``sym`` (resolved via subset edges).
        """
        if isinstance(e, ast.Name) and isinstance(e.symbol, Symbol):
            sym = e.symbol
            if isinstance(sym.ty, ArrayType):
                return {sym}  # array decays to its own address
            if isinstance(sym.ty, PointerType):
                return {("copy", sym)}
            return set()
        if isinstance(e, ast.Unary) and e.op is ast.UnaryOp.ADDR:
            assert e.operand is not None
            return {self._base_object_of(e.operand)}
        if isinstance(e, ast.Binary) and e.op in (ast.BinOp.ADD, ast.BinOp.SUB):
            out: set = set()
            for side in (e.lhs, e.rhs):
                if side is not None and side.ty is not None and (
                    side.ty.is_pointer or side.ty.is_array
                ):
                    out |= self._pointer_sources(side, fn)
            return out or {TOP}
        if isinstance(e, ast.Call):
            if e.callee == "malloc":
                self._heap_count += 1
                obj = HeapObject(self._heap_count, e.line)
                self.addressable.add(obj)
                return {obj}
            fsym = self.table.lookup_function(e.callee)
            if fsym is not None and not fsym.external:
                return {("ret", e.callee)}
            return {TOP}
        if isinstance(e, ast.Conditional):
            out = set()
            for side in (e.then, e.otherwise):
                if side is not None:
                    out |= self._pointer_sources(side, fn)
            return out
        if isinstance(e, (ast.Index, ast.FieldAccess, ast.Unary)):
            # Pointer loaded from memory: sound choice is TOP.
            return {TOP}
        return {TOP}

    def _assign_pointer(self, target_sym: Symbol, value: ast.Expr, fn: ast.FuncDef) -> None:
        for src in self._pointer_sources(value, fn):
            if isinstance(src, tuple) and src[0] == "copy":
                self._add_edge(src[1], target_sym)
            elif isinstance(src, tuple) and src[0] == "ret":
                self._returns.setdefault(src[1], set())
                self._calls.append((src[1], [], target_sym))
            else:
                self._pts_of(target_sym).add(src)

    def _visit_expr(self, e: ast.Expr, fn: ast.FuncDef) -> None:
        for x in ast.walk_exprs(e):
            if isinstance(x, ast.Assign) and x.target is not None and x.value is not None:
                tty = x.target.ty
                if (
                    isinstance(x.target, ast.Name)
                    and isinstance(x.target.symbol, Symbol)
                    and tty is not None
                    and tty.is_pointer
                ):
                    self._assign_pointer(x.target.symbol, x.value, fn)
                elif tty is not None and tty.is_pointer:
                    # Store of a pointer through memory: everything the
                    # value may be becomes reachable from TOP-ish objects;
                    # keep soundness by widening the stored-to object's
                    # content via a synthetic TOP edge: approximate by
                    # making the value's copies point TOP-ward is overkill;
                    # we instead mark nothing (reads through memory already
                    # return TOP).
                    pass
            if isinstance(x, ast.Call):
                fsym = self.table.lookup_function(x.callee)
                if fsym is not None and not fsym.external:
                    self._calls.append((x.callee, list(x.args), None))

    def _record_return(self, fn: ast.FuncDef, value: ast.Expr) -> None:
        if fn.ret is not None and fn.ret.is_pointer:
            for src in self._pointer_sources(value, fn):
                if isinstance(src, tuple) and src[0] == "copy":
                    self._returns.setdefault(fn.name, set()).add(src[1])
                elif not isinstance(src, tuple):
                    # Constant-address return: store via a synthetic symbol.
                    self._returns.setdefault(fn.name, set())
                    # Model by adding to every receiver at _apply_calls time;
                    # stash as a pseudo-entry using None key handled there.
                    self._returns[fn.name].add(("obj", src))  # type: ignore[arg-type]

    # -- interprocedural wiring ---------------------------------------------------

    def _apply_calls(self) -> None:
        for callee, args, receiver in self._calls:
            params = self._params.get(callee, [])
            for idx, arg in enumerate(args):
                if idx >= len(params):
                    break
                param = params[idx]
                if param.ty.is_pointer:
                    fn_dummy = None  # _pointer_sources does not use fn
                    for src in self._pointer_sources(arg, fn_dummy):  # type: ignore[arg-type]
                        if isinstance(src, tuple) and src[0] == "copy":
                            self._add_edge(src[1], param)
                        elif isinstance(src, tuple) and src[0] == "ret":
                            pass  # nested call result: conservative skip -> TOP
                        else:
                            self._pts_of(param).add(src)
            if receiver is not None:
                for entry in self._returns.get(callee, set()):
                    if isinstance(entry, tuple) and entry[0] == "obj":
                        self._pts_of(receiver).add(entry[1])
                    elif isinstance(entry, Symbol):
                        self._add_edge(entry, receiver)

    # -- fixpoint ----------------------------------------------------------------

    def _solve(self) -> None:
        changed = True
        while changed:
            changed = False
            for src, dsts in self.edges.items():
                src_set = self._pts_of(src)
                for dst in dsts:
                    dst_set = self._pts_of(dst)
                    before = len(dst_set)
                    dst_set |= src_set
                    if len(dst_set) != before:
                        changed = True
        # Pointers with no facts at all (uninitialized, external input)
        # conservatively get TOP.
        for sym, s in self.pts.items():
            if not s:
                s.add(TOP)


def analyze_points_to(program: ast.Program, table: SymbolTable) -> PointsToResult:
    """Run the whole-program points-to analysis."""
    return PointsToAnalysis(program, table).run()
