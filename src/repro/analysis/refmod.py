"""Interprocedural REF/MOD side-effect analysis.

For every function we compute the sets of abstract memory objects it may
*reference* (read) and *modify* (write), transitively through the call
graph.  The HLI call REF/MOD table (paper Section 2.2.4) is derived from
these sets, letting the back-end move memory operations across calls and
purge CSE tables selectively (paper Figure 4).

Effects are expressed over:

* named symbols (globals, statics, address-taken locals, arrays);
* :data:`~repro.analysis.alias.TOP` meaning "any addressable object"
  (used for external functions and unanalyzable stores).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import ast_nodes as ast
from ..frontend.semantic import PURE_EXTERNALS
from ..frontend.symbols import Symbol, SymbolTable
from .alias import TOP, PointsToResult
from .items import (
    Access,
    AccessKind,
    AccessRole,
    SymbolicRef,
    ref_for_access,
    walk_stmt_accesses,
)


@dataclass
class EffectSet:
    """REF and MOD object sets for one function."""

    ref: set = field(default_factory=set)
    mod: set = field(default_factory=set)

    @property
    def clobbers_all(self) -> bool:
        return TOP in self.mod

    @property
    def reads_all(self) -> bool:
        return TOP in self.ref

    def union_update(self, other: "EffectSet") -> bool:
        """Merge ``other`` in; True if anything changed."""
        before = (len(self.ref), len(self.mod))
        self.ref |= other.ref
        self.mod |= other.mod
        return (len(self.ref), len(self.mod)) != before


def _objects_of_ref(ref: SymbolicRef | None, pts: PointsToResult) -> set:
    """Abstract objects a symbolic reference may touch."""
    if ref is None or ref.base is None:
        return {TOP}
    if ref.is_deref:
        return pts.targets(ref.base) or {TOP}
    return {ref.base}


class RefModAnalysis:
    """Fixpoint REF/MOD computation over the call graph."""

    def __init__(
        self, program: ast.Program, table: SymbolTable, pts: PointsToResult
    ) -> None:
        self.program = program
        self.table = table
        self.pts = pts
        self.effects: dict[str, EffectSet] = {}
        self._local_effects: dict[str, EffectSet] = {}
        self._callees: dict[str, set[str]] = {}

    def run(self) -> dict[str, EffectSet]:
        for fn in self.program.functions:
            self._local_effects[fn.name] = self._local(fn)
            self.effects[fn.name] = EffectSet(
                ref=set(self._local_effects[fn.name].ref),
                mod=set(self._local_effects[fn.name].mod),
            )
        # external functions
        for name, fsym in self.table.functions.items():
            if fsym.external:
                if name in PURE_EXTERNALS:
                    self.effects[name] = EffectSet()
                else:
                    self.effects[name] = EffectSet(ref={TOP}, mod={TOP})
        changed = True
        while changed:
            changed = False
            for fn in self.program.functions:
                mine = self.effects[fn.name]
                for callee in self._callees.get(fn.name, ()):  # includes externals
                    callee_eff = self.effects.get(callee)
                    if callee_eff is None:
                        callee_eff = EffectSet(ref={TOP}, mod={TOP})
                    if mine.union_update(callee_eff):
                        changed = True
        return self.effects

    # -- per-function local effects -------------------------------------------

    def _local(self, fn: ast.FuncDef) -> EffectSet:
        eff = EffectSet()
        callees: set[str] = set()
        assert fn.body is not None
        for stmt in ast.walk_stmts(fn.body):
            for acc in walk_stmt_accesses(stmt):
                self._record(acc, eff)
                if acc.role is AccessRole.CALLSITE and isinstance(acc.node, ast.Call):
                    callees.add(acc.node.callee)
        self._callees[fn.name] = callees
        # Local non-escaping variables are invisible to callers: drop them.
        eff.ref = {o for o in eff.ref if self._visible(o, fn)}
        eff.mod = {o for o in eff.mod if self._visible(o, fn)}
        return eff

    def _record(self, acc: Access, eff: EffectSet) -> None:
        if acc.kind is AccessKind.CALL:
            return
        if acc.role in (AccessRole.STACK_ARG, AccessRole.ENTRY_PARAM):
            return  # arg-area traffic is call-sequence private
        objs = _objects_of_ref(ref_for_access(acc), self.pts)
        if acc.kind is AccessKind.LOAD:
            eff.ref |= objs
        else:
            eff.mod |= objs

    def _visible(self, obj, fn: ast.FuncDef) -> bool:
        """Is ``obj`` observable outside ``fn``?

        Globals, statics, heap objects, TOP, and anything reachable through
        parameters are visible; purely local storage is not.  We keep
        address-taken locals (their address may have been passed out) and
        all heap objects.
        """
        if obj is TOP:
            return True
        if not isinstance(obj, Symbol):
            return True  # HeapObject
        from ..frontend.symbols import StorageClass

        if obj.storage in (StorageClass.GLOBAL, StorageClass.STATIC):
            return True
        if obj.storage is StorageClass.PARAM:
            return True  # array/pointer params name caller storage
        return obj.address_taken


def analyze_refmod(
    program: ast.Program, table: SymbolTable, pts: PointsToResult
) -> dict[str, EffectSet]:
    """Compute transitive REF/MOD sets for every function (and externals)."""
    return RefModAnalysis(program, table, pts).run()
