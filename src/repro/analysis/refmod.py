"""Interprocedural REF/MOD side-effect analysis.

For every function we compute the sets of abstract memory objects it may
*reference* (read) and *modify* (write), transitively through the call
graph.  The HLI call REF/MOD table (paper Section 2.2.4) is derived from
these sets, letting the back-end move memory operations across calls and
purge CSE tables selectively (paper Figure 4).

Effects are expressed over:

* named symbols (globals, statics, address-taken locals, arrays);
* :class:`ForeignObject` markers naming storage owned by *another*
  translation unit (injected by the whole-program linker's summaries,
  :mod:`repro.linker`);
* :data:`~repro.analysis.alias.TOP` meaning "any addressable object"
  (used for external functions and unanalyzable stores).

In whole-program mode the linker passes ``external_effects`` — per-name
:class:`EffectSet` values derived from cross-module summaries — and those
replace the all-clobbering default for extern functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import ast_nodes as ast
from ..frontend.semantic import PURE_EXTERNALS
from ..frontend.symbols import StorageClass, Symbol, SymbolTable
from .alias import TOP, HeapObject, PointsToResult
from .items import (
    Access,
    AccessKind,
    AccessRole,
    SymbolicRef,
    ref_for_access,
    walk_stmt_accesses,
)


@dataclass(frozen=True)
class ForeignObject:
    """Abstract object for storage defined in another translation unit.

    ``name`` is the linker's canonical spelling: a bare name for true
    globals, ``{unit}::{name}@{line}`` for unit-private storage.  A
    ForeignObject can never equal a unit's own :class:`Symbol`; overlap
    with local equivalence classes is decided by the HLI builder (a deref
    class whose base may point anywhere may reach foreign storage).
    """

    name: str


@dataclass
class EffectSet:
    """REF and MOD object sets for one function."""

    ref: set = field(default_factory=set)
    mod: set = field(default_factory=set)

    @property
    def clobbers_all(self) -> bool:
        return TOP in self.mod

    @property
    def reads_all(self) -> bool:
        return TOP in self.ref

    def union_update(self, other: "EffectSet") -> bool:
        """Merge ``other`` in; True if anything changed."""
        before = (len(self.ref), len(self.mod))
        self.ref |= other.ref
        self.mod |= other.mod
        return (len(self.ref), len(self.mod)) != before


def _objects_of_ref(ref: SymbolicRef | None, pts: PointsToResult) -> set:
    """Abstract objects a symbolic reference may touch."""
    if ref is None or ref.base is None:
        return {TOP}
    if ref.is_deref:
        return pts.targets(ref.base) or {TOP}
    return {ref.base}


class RefModAnalysis:
    """Fixpoint REF/MOD computation over the call graph."""

    def __init__(
        self,
        program: ast.Program,
        table: SymbolTable,
        pts: PointsToResult,
        external_effects: dict[str, EffectSet] | None = None,
    ) -> None:
        self.program = program
        self.table = table
        self.pts = pts
        self.external_effects = external_effects or {}
        self.effects: dict[str, EffectSet] = {}
        self._local_effects: dict[str, EffectSet] = {}
        self._callees: dict[str, set[str]] = {}
        self._naming: dict[str, object] | None = None

    def run(self) -> dict[str, EffectSet]:
        for fn in self.program.functions:
            self._local_effects[fn.name] = self._local(fn)
            self.effects[fn.name] = EffectSet(
                ref=set(self._local_effects[fn.name].ref),
                mod=set(self._local_effects[fn.name].mod),
            )
        # external functions: linker-provided summaries beat the
        # all-clobbering default (whole-program mode); pure builtins are
        # effect-free either way.
        for name, fsym in self.table.functions.items():
            if fsym.external and name not in self.effects:
                linked = self.external_effects.get(name)
                if linked is not None:
                    self.effects[name] = self._bind_linked(linked)
                elif name in PURE_EXTERNALS:
                    self.effects[name] = EffectSet()
                else:
                    self.effects[name] = EffectSet(ref={TOP}, mod={TOP})
        changed = True
        while changed:
            changed = False
            for fn in self.program.functions:
                mine = self.effects[fn.name]
                for callee in self._callees.get(fn.name, ()):  # includes externals
                    callee_eff = self.effects.get(callee)
                    if callee_eff is None:
                        callee_eff = EffectSet(ref={TOP}, mod={TOP})
                    if mine.union_update(callee_eff):
                        changed = True
        return self.effects

    # -- per-function local effects -------------------------------------------

    def _local(self, fn: ast.FuncDef) -> EffectSet:
        eff = EffectSet()
        callees: set[str] = set()
        assert fn.body is not None
        for stmt in ast.walk_stmts(fn.body):
            for acc in walk_stmt_accesses(stmt):
                self._record(acc, eff)
                if acc.role is AccessRole.CALLSITE and isinstance(acc.node, ast.Call):
                    callees.add(acc.node.callee)
        self._callees[fn.name] = callees
        # Local non-escaping variables are invisible to callers: drop them.
        eff.ref = {o for o in eff.ref if self._visible(o, fn)}
        eff.mod = {o for o in eff.mod if self._visible(o, fn)}
        return eff

    def _record(self, acc: Access, eff: EffectSet) -> None:
        if acc.kind is AccessKind.CALL:
            return
        if acc.role in (AccessRole.STACK_ARG, AccessRole.ENTRY_PARAM):
            return  # arg-area traffic is call-sequence private
        objs = _objects_of_ref(ref_for_access(acc), self.pts)
        if acc.kind is AccessKind.LOAD:
            eff.ref |= objs
        else:
            eff.mod |= objs

    # -- linked-summary binding -----------------------------------------------

    def _bind_linked(self, linked: EffectSet) -> EffectSet:
        """Rebind a linker effect set into this parse's object vocabulary.

        The adapter ships name-keyed :class:`ForeignObject` markers —
        :class:`Symbol` identity does not survive a re-parse, and the
        driver parses each unit once for linking and once for code
        generation (or restores a cached table from the session cache).
        Names that denote this unit's own storage — bare globals,
        ``{this unit}::…`` qualified spellings, heap sites — become the
        matching objects of the *current* parse, so direct equivalence
        classes see cross-module effects; everything else stays foreign
        and only matches may-point-anywhere deref classes.
        """
        naming = self._own_names()

        def bind(objs: set) -> set:
            return {
                naming.get(o.name, o) if isinstance(o, ForeignObject) else o
                for o in objs
            }

        return EffectSet(ref=bind(linked.ref), mod=bind(linked.mod))

    def _own_names(self) -> dict[str, object]:
        """Canonical link-space name -> this parse's abstract object.

        Mirrors the linker's naming scheme (bare names for globals,
        ``{unit}::{name}@{line}`` for unit-private storage,
        ``{unit}::{heap}`` for allocation sites) over the current
        program/table/points-to artifacts.
        """
        if self._naming is not None:
            return self._naming
        out: dict[str, object] = {}
        unit = self.program.filename

        def add(sym: object) -> None:
            if not isinstance(sym, Symbol):
                return
            if sym.storage is StorageClass.GLOBAL:
                if not sym.name.startswith("__argslot"):
                    out[sym.name] = sym
            elif (
                sym.storage is StorageClass.STATIC
                or sym.address_taken
                or sym.ty.is_array
            ):
                out[f"{unit}::{sym.name}@{sym.line}"] = sym

        for sym in self.table.global_scope.names.values():
            add(sym)
        for fn in self.program.functions:
            for p in fn.params:
                add(p.symbol)
            if fn.body is not None:
                for stmt in ast.walk_stmts(fn.body):
                    if isinstance(stmt, ast.VarDecl):
                        add(stmt.symbol)
        for targets in self.pts.points_to.values():
            for t in targets:
                if isinstance(t, HeapObject):
                    out[f"{unit}::{t.name}"] = t
        self._naming = out
        return out

    # -- linker accessors -----------------------------------------------------

    def local_effects(self, name: str) -> EffectSet:
        """Intraprocedural (callee-free) effects of one function."""
        return self._local_effects[name]

    def callees(self, name: str) -> set[str]:
        """Direct callee names of one function (after :meth:`run`)."""
        return set(self._callees.get(name, ()))

    def _visible(self, obj, fn: ast.FuncDef) -> bool:
        """Is ``obj`` observable outside ``fn``?

        Globals, statics, heap objects, TOP, and anything reachable through
        parameters are visible; purely local storage is not.  We keep
        address-taken locals (their address may have been passed out) and
        all heap objects.
        """
        if obj is TOP:
            return True
        if not isinstance(obj, Symbol):
            return True  # HeapObject / ForeignObject
        if obj.storage in (StorageClass.GLOBAL, StorageClass.STATIC):
            return True
        if obj.storage is StorageClass.PARAM:
            return True  # array/pointer params name caller storage
        return obj.address_taken


def analyze_refmod(
    program: ast.Program,
    table: SymbolTable,
    pts: PointsToResult,
    external_effects: dict[str, EffectSet] | None = None,
) -> dict[str, EffectSet]:
    """Compute transitive REF/MOD sets for every function (and externals)."""
    return RefModAnalysis(program, table, pts, external_effects=external_effects).run()
