"""Array data-dependence tests (the front-end's analytical core).

Implements the classic battery the paper's front-end relies on:

* **ZIV** (zero index variable) — constant-vs-constant subscripts;
* **strong SIV** — equal induction coefficients, exact integer distance;
* **weak/MIV fallback** — GCD test plus Banerjee-style bound checking
  when loop bounds are constant.

Two public entry points mirror how the HLI tables are built
(Section 3.1.2):

* :func:`intra_iteration_relation` — do two references touch the same
  location *within one iteration*?  Feeds zero-distance merging and the
  alias table.
* :func:`loop_carried_dependence` — is there a dependence *across*
  iterations of a given loop, and at what distance?  Feeds the LCDD table.

All tests are conservative: they return ``MAYBE`` whenever subscripts are
non-affine, contain symbols modified inside the loop, or bounds are
unknown.  Property tests check soundness against brute-force enumeration.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from ..frontend.symbols import Symbol
from .items import SymbolicRef
from .regions import Region, RegionKind
from .subscripts import Affine


class DepResult(enum.Enum):
    """Three-valued dependence verdict."""

    NONE = "none"  # provably independent
    DEF = "definite"  # provably dependent
    MAYBE = "maybe"  # cannot prove either way

    def __bool__(self) -> bool:  # truthy = "must assume dependence"
        return self is not DepResult.NONE


@dataclass(frozen=True)
class LoopCarried:
    """Result of a loop-carried dependence test.

    ``distance`` is in iterations, always positive, with the direction
    normalized '>' (earlier to later iteration, paper Section 2.2.3):
    ``src_first`` tells whether the *first* argument is the source (the
    earlier-iteration access).  ``distance`` is ``None`` for MAYBE results
    with unknown distance.
    """

    result: DepResult
    distance: Optional[int] = None
    src_first: bool = True
    #: ZIV-equal dimensions depend at *every* distance; such results
    #: constrain nothing when combining dimensions.
    any_distance: bool = False


NO_DEP = LoopCarried(DepResult.NONE)


# ---------------------------------------------------------------------------
# Invariance helpers
# ---------------------------------------------------------------------------


def _form_symbols_ok(form: Affine, loop: Region, extra_vars: set[Symbol]) -> bool:
    """True if every symbol in ``form`` is either an allowed induction
    variable or invariant inside ``loop``."""
    for sym in form.symbols():
        if sym in extra_vars:
            continue
        if sym in loop.modified_scalars:
            return False
    return True


def _enclosing_induction_vars(region: Region) -> set[Symbol]:
    out: set[Symbol] = set()
    for r in region.enclosing_loops():
        if r.loop is not None and r.loop.var is not None:
            out.add(r.loop.var)
    return out


# ---------------------------------------------------------------------------
# Single-dimension tests
# ---------------------------------------------------------------------------


def _dim_loop_carried(
    f1: Optional[Affine], f2: Optional[Affine], loop: Region
) -> LoopCarried:
    """Loop-carried test for one subscript dimension w.r.t. ``loop``.

    Returns the per-dimension verdict; ``distance=None`` with DEF means
    "dependent at every distance" (ZIV-equal case).
    """
    info = loop.loop
    if f1 is None or f2 is None:
        return LoopCarried(DepResult.MAYBE)
    if info is None or not info.is_canonical:
        # Unrecognized loop: cannot reason about iteration spacing.
        diff = f1 - f2
        if diff.is_constant and diff.const != 0 and f1.key() != f2.key():
            # Same symbolic shape offset by a nonzero constant COULD still
            # collide across iterations of an unknown loop -> MAYBE.
            return LoopCarried(DepResult.MAYBE)
        return LoopCarried(DepResult.MAYBE)
    var = info.var
    assert var is not None and info.step is not None
    step = info.step
    if step == 0:
        return LoopCarried(DepResult.MAYBE)

    allowed = _enclosing_induction_vars(loop)
    if not (_form_symbols_ok(f1, loop, allowed) and _form_symbols_ok(f2, loop, allowed)):
        return LoopCarried(DepResult.MAYBE)

    a1, a2 = f1.coeff(var), f2.coeff(var)
    r1, r2 = f1.drop(var), f2.drop(var)
    rdiff = r1 - r2  # must equal a2*i2 - a1*i1 ... see below

    # Outer-loop induction variables take the same value in both accesses
    # (we test one loop at a time with '=' directions outside), so they
    # cancel only if their coefficients match.
    if not rdiff.is_constant:
        # Symbolic difference: if identical symbol parts the constant decides;
        # handled above by is_constant. Otherwise unknown.
        return LoopCarried(DepResult.MAYBE)
    c = rdiff.const  # r1 - r2

    # Solve a1*i(k) + r1 = a2*i(k+d) + r2, i(k) = L0 + step*k.
    if a1 == 0 and a2 == 0:
        # ZIV: same location every iteration iff c == 0.
        if c == 0:
            return LoopCarried(DepResult.DEF, distance=1, any_distance=True)
        return NO_DEP
    if a1 == a2:
        # Strong SIV: a*(i1 - i2) = -c  ->  i2 - i1 = c / a.
        a = a1
        if c % a != 0:
            return NO_DEP
        delta_i = c // a  # i2 - i1
        if delta_i % step != 0:
            return NO_DEP
        d = delta_i // step  # iterations from ref1 to ref2
        if d == 0:
            return NO_DEP  # loop-independent, not carried
        trip = info.trip_count()
        if trip is not None and abs(d) >= trip:
            return NO_DEP
        if d > 0:
            return LoopCarried(DepResult.DEF, distance=d, src_first=True)
        return LoopCarried(DepResult.DEF, distance=-d, src_first=False)

    # Weak SIV / general: GCD test on a1*i1 - a2*i2 = -c.
    g = math.gcd(abs(a1), abs(a2))
    if g and c % g != 0:
        return NO_DEP
    # Banerjee-style bounds when the iteration space is fully known.
    rng = info.iteration_range()
    if rng is not None:
        vals = list(rng)
        if not vals:
            return NO_DEP
        lo_i, hi_i = min(vals), max(vals)

        def bounds(coeff: int) -> tuple[int, int]:
            lo = coeff * (lo_i if coeff >= 0 else hi_i)
            hi = coeff * (hi_i if coeff >= 0 else lo_i)
            return lo, hi

        lo1, hi1 = bounds(a1)
        lo2, hi2 = bounds(a2)
        # a1*i1 - a2*i2 ranges over [lo1 - hi2, hi1 - lo2]
        if not (lo1 - hi2 <= -c <= hi1 - lo2):
            return NO_DEP
    return LoopCarried(DepResult.MAYBE)


def _dim_intra_iteration(
    f1: Optional[Affine],
    f2: Optional[Affine],
    region: Region,
    stable: Optional[bool] = None,
) -> DepResult:
    """Same-location test for one dimension with all loop variables fixed.

    ``stable`` asserts that every non-induction symbol holds the *same
    value* at both references (proven by invariance or by equal
    modification epochs).  Without stability no definite conclusion —
    equal or disjoint — is sound, because the symbol may change between
    the two accesses within one iteration.
    """
    if f1 is None or f2 is None:
        return DepResult.MAYBE
    allowed = _enclosing_induction_vars(region)
    if stable is None:
        stable = _form_symbols_ok(f1, region, allowed) and _form_symbols_ok(
            f2, region, allowed
        )
    diff = f1 - f2
    if diff.is_constant:
        if not stable:
            return DepResult.MAYBE
        return DepResult.DEF if diff.const == 0 else DepResult.NONE
    # Symbol terms remain: e.g. b[0] vs b[j].  If the leftover equation
    # has a solution inside known bounds the locations may coincide.  The
    # region's own induction variable is stable by definition (it only
    # steps between iterations).
    if stable and region.kind is RegionKind.LOOP and region.loop is not None:
        info = region.loop
        if (
            info.var is not None
            and set(diff.symbols()) == {info.var}
            and info.iteration_range() is not None
        ):
            a = diff.coeff(info.var)
            c = diff.const
            rng = info.iteration_range()
            assert rng is not None
            # a*i + c == 0 for some i in range?
            if a != 0 and (-c) % a == 0 and (-c) // a in rng:
                return DepResult.MAYBE  # coincide at one iteration
            if a != 0:
                return DepResult.NONE
    return DepResult.MAYBE


# ---------------------------------------------------------------------------
# Reference-level tests
# ---------------------------------------------------------------------------


def _comparable(ref1: SymbolicRef, ref2: SymbolicRef) -> bool:
    """Can the affine machinery say anything about this pair?

    Requires the same non-pointer base symbol and matching dimensionality;
    everything else is the alias analysis' problem.
    """
    if ref1.base is None or ref2.base is None:
        return False
    if ref1.base is not ref2.base:
        return False
    if ref1.is_deref or ref2.is_deref:
        return False
    if len(ref1.subscripts) != len(ref2.subscripts):
        return False
    if ref1.field_name != ref2.field_name:
        return False
    return True


def loop_carried_dependence(
    ref1: SymbolicRef, ref2: SymbolicRef, loop: Region
) -> LoopCarried:
    """Loop-carried dependence between two same-base array/scalar refs.

    Conservative MAYBE for anything the affine machinery cannot handle.
    Scalars (no subscripts) on the same base are dependent at distance 1.
    """
    if not _comparable(ref1, ref2):
        return LoopCarried(DepResult.MAYBE)
    if not ref1.subscripts:
        return LoopCarried(DepResult.DEF, distance=1, any_distance=True)
    per_dim = [
        _dim_loop_carried(f1, f2, loop)
        for f1, f2 in zip(ref1.subscripts, ref2.subscripts)
    ]
    if any(d.result is DepResult.NONE for d in per_dim):
        return NO_DEP
    if all(d.result is DepResult.DEF for d in per_dim):
        # Combine distances: ZIV-equal dims are wildcards (dependent at
        # every distance); constrained dims must agree on one distance.
        fixed = [(d.distance, d.src_first) for d in per_dim if not d.any_distance]
        if not fixed:
            return LoopCarried(DepResult.DEF, distance=1, any_distance=True)
        first = fixed[0]
        if all(f == first for f in fixed[1:]):
            return LoopCarried(DepResult.DEF, distance=first[0], src_first=first[1])
        return NO_DEP  # inconsistent required distances
    return LoopCarried(DepResult.MAYBE)


def intra_iteration_relation(
    ref1: SymbolicRef, ref2: SymbolicRef, region: Region
) -> DepResult:
    """Do the refs touch the same location within a single iteration of
    ``region`` (or a single execution, for unit regions)?"""
    if not _comparable(ref1, ref2):
        return DepResult.MAYBE
    if not ref1.subscripts:
        return DepResult.DEF
    verdicts = [
        _dim_intra_iteration(f1, f2, region)
        for f1, f2 in zip(ref1.subscripts, ref2.subscripts)
    ]
    if any(v is DepResult.NONE for v in verdicts):
        return DepResult.NONE
    if all(v is DepResult.DEF for v in verdicts):
        return DepResult.DEF
    return DepResult.MAYBE


# ---------------------------------------------------------------------------
# Class-level tests (lifted references with free inner-loop variables)
# ---------------------------------------------------------------------------
#
# When a sub-region's equivalence class is lifted into an enclosing region R,
# its references represent the locations touched over ALL iterations of the
# loops between the reference's home region and R.  Those induction
# variables are therefore *existentially quantified, independently per
# side*, in any overlap question asked at R.


@dataclass(frozen=True)
class MemberRef:
    """A reference plus its home region, as carried inside an eq class."""

    ref: SymbolicRef
    is_store: bool
    home: Region
    #: modification-epoch snapshot from the originating item (see
    #: :class:`repro.analysis.items.MemoryItem.epochs`)
    epochs: tuple[tuple[int, int], ...] = ()


def _pair_stable(
    m1: "MemberRef",
    m2: "MemberRef",
    f1: Affine,
    f2: Affine,
    region: Region,
    allowed: set[Symbol],
) -> bool:
    """Do both references observe the same value of every symbol in
    ``f1``/``f2``, within one iteration of ``region``?

    A symbol qualifies if it is an allowed induction variable, is never
    modified inside ``region``, or — for two *immediate* items of
    ``region`` — both items carry the same modification epoch for it
    (no assignment between the two accesses).
    """
    e1 = dict(m1.epochs)
    e2 = dict(m2.epochs)
    both_immediate = m1.home is region and m2.home is region
    for sym in set(f1.symbols()) | set(f2.symbols()):
        if sym in allowed:
            continue
        if sym not in region.modified_scalars:
            continue
        if not both_immediate:
            return False
        c1, c2 = e1.get(sym.uid), e2.get(sym.uid)
        if c1 is None or c2 is None or c1 != c2 or c1 < 0:
            return False
    return True


def _free_vars_inside(home: Region, outer: Region) -> dict[Symbol, Optional[range]]:
    """Induction vars of loops strictly inside ``outer`` enclosing ``home``.

    Maps each variable to its concrete iteration range when known
    (``None`` = unknown range).
    """
    out: dict[Symbol, Optional[range]] = {}
    for r in home.ancestors():
        if r is outer:
            break
        if r.kind is RegionKind.LOOP and r.loop is not None and r.loop.var is not None:
            out[r.loop.var] = r.loop.iteration_range()
    return out


def _split_form(
    form: Affine, free: dict[Symbol, Optional[range]]
) -> tuple[list[tuple[int, Optional[range]]], Affine]:
    """Split into (free-variable instances, fixed remainder)."""
    instances: list[tuple[int, Optional[range]]] = []
    fixed = form
    for var, rng in free.items():
        c = form.coeff(var)
        if c != 0:
            instances.append((c, rng))
            fixed = fixed.drop(var)
    return instances, fixed


def may_overlap(m1: MemberRef, m2: MemberRef, region: Region) -> DepResult:
    """May the two (possibly lifted) references touch a common location
    within one iteration of ``region``?

    ``DEF`` means the accessed location *sets* are provably identical and
    non-trivially so (used for the zero-distance merge rule); ``NONE``
    means provably disjoint; anything else is ``MAYBE``.
    """
    r1, r2 = m1.ref, m2.ref
    if not _comparable(r1, r2):
        return DepResult.MAYBE
    if not r1.subscripts:
        return DepResult.DEF  # same scalar
    free1 = _free_vars_inside(m1.home, region)
    free2 = _free_vars_inside(m2.home, region)
    allowed = _enclosing_induction_vars(region) | set(free1) | set(free2)
    verdicts: list[DepResult] = []
    for f1, f2 in zip(r1.subscripts, r2.subscripts):
        if f1 is None or f2 is None:
            verdicts.append(DepResult.MAYBE)
            continue
        if not _pair_stable(m1, m2, f1, f2, region, allowed):
            verdicts.append(DepResult.MAYBE)
            continue
        inst1, fixed1 = _split_form(f1, free1)
        inst2, fixed2 = _split_form(f2, free2)
        fixed_diff = fixed1 - fixed2
        if not inst1 and not inst2:
            verdicts.append(_dim_intra_iteration(f1, f2, region, stable=True))
            continue
        # Identical forms over identical free structure => identical sets.
        if (
            f1.key() == f2.key()
            and set(free1) == set(free2)
            and all(free1[v] == free2[v] for v in free1)
        ):
            verdicts.append(DepResult.DEF)
            continue
        if not fixed_diff.is_constant:
            verdicts.append(DepResult.MAYBE)
            continue
        c = fixed_diff.const
        # GCD test over all free instances (independent unknowns).
        coeffs = [a for a, _ in inst1] + [a for a, _ in inst2]
        g = 0
        for a in coeffs:
            g = math.gcd(g, abs(a))
        if g and c % g != 0:
            verdicts.append(DepResult.NONE)
            continue
        # Banerjee bounds when every free range is known.
        ranges_known = all(r is not None for _, r in inst1 + inst2)
        if ranges_known:
            lo = hi = 0
            for sign, insts in ((1, inst1), (-1, inst2)):
                for a, rng in insts:
                    assert rng is not None
                    if len(rng) == 0:
                        lo, hi = 1, 0  # empty loop: no accesses at all
                        break
                    vals = (a * sign * rng[0], a * sign * rng[-1])
                    lo += min(vals)
                    hi += max(vals)
            if lo > hi or not (lo <= -c <= hi):
                verdicts.append(DepResult.NONE)
                continue
        verdicts.append(DepResult.MAYBE)
    if any(v is DepResult.NONE for v in verdicts):
        return DepResult.NONE
    if all(v is DepResult.DEF for v in verdicts):
        return DepResult.DEF
    return DepResult.MAYBE


def class_loop_carried(m1: MemberRef, m2: MemberRef, loop: Region) -> LoopCarried:
    """Loop-carried dependence between possibly-lifted member references.

    Exact distances are only produced for non-lifted (immediate) pairs —
    lifted pairs degrade to DEF-any-distance / MAYBE / NONE.
    """
    free1 = _free_vars_inside(m1.home, loop)
    free2 = _free_vars_inside(m2.home, loop)

    def uses_free(ref: SymbolicRef, free: dict) -> bool:
        return any(
            f is not None and f.coeff(v) != 0 for f in ref.subscripts for v in free
        )

    # Inner-loop variables that never appear in the subscripts are inert:
    # fall back to the exact single-loop tests.
    if not uses_free(m1.ref, free1) and not uses_free(m2.ref, free2):
        return loop_carried_dependence(m1.ref, m2.ref, loop)
    r1, r2 = m1.ref, m2.ref
    if not _comparable(r1, r2):
        return LoopCarried(DepResult.MAYBE)
    if not r1.subscripts:
        return LoopCarried(DepResult.DEF, distance=1, any_distance=True)
    info = loop.loop
    var = info.var if info is not None else None
    # Identical location sets that do not shift with the loop variable are
    # re-touched every iteration.
    identical = all(
        (f1 is not None and f2 is not None and f1.key() == f2.key())
        for f1, f2 in zip(r1.subscripts, r2.subscripts)
    ) and set(free1) == set(free2)
    if identical and var is not None:
        uses_var = any(
            f1 is not None and f1.coeff(var) != 0 for f1 in r1.subscripts
        )
        allowed = _enclosing_induction_vars(loop) | set(free1) | set(free2)
        invariant = all(
            f is not None and _form_symbols_ok(f, loop, allowed)
            for f in r1.subscripts
        )
        if not invariant:
            return LoopCarried(DepResult.MAYBE)
        if not uses_var:
            return LoopCarried(DepResult.DEF, distance=1, any_distance=True)
        # Shifts with var but free inner vars may still collide across
        # iterations (e.g. a[i+j]): conservative.
        return LoopCarried(DepResult.MAYBE)
    # General lifted case: use the overlap machinery ignoring the iteration
    # constraint; treat the loop variable as one more independent free pair.
    fake_free = dict(free1)
    fake_free2 = dict(free2)
    if var is not None and info is not None:
        rng = info.iteration_range()
        fake_free[var] = rng
        fake_free2[var] = rng
    m1x = MemberRef(ref=r1, is_store=m1.is_store, home=m1.home)
    m2x = MemberRef(ref=r2, is_store=m2.is_store, home=m2.home)
    verdict = _overlap_with_free(m1x, m2x, loop, fake_free, fake_free2)
    if verdict is DepResult.NONE:
        return NO_DEP
    return LoopCarried(DepResult.MAYBE)


def _overlap_with_free(
    m1: MemberRef,
    m2: MemberRef,
    region: Region,
    free1: dict[Symbol, Optional[range]],
    free2: dict[Symbol, Optional[range]],
) -> DepResult:
    """Overlap test with caller-supplied free variable sets."""
    r1, r2 = m1.ref, m2.ref
    if not _comparable(r1, r2):
        return DepResult.MAYBE
    if not r1.subscripts:
        return DepResult.DEF
    allowed = _enclosing_induction_vars(region) | set(free1) | set(free2)
    for f1, f2 in zip(r1.subscripts, r2.subscripts):
        if f1 is None or f2 is None:
            continue
        if not (
            _form_symbols_ok(f1, region, allowed) and _form_symbols_ok(f2, region, allowed)
        ):
            continue
        inst1, fixed1 = _split_form(f1, free1)
        inst2, fixed2 = _split_form(f2, free2)
        fixed_diff = fixed1 - fixed2
        if not fixed_diff.is_constant:
            continue
        c = fixed_diff.const
        coeffs = [a for a, _ in inst1] + [a for a, _ in inst2]
        if not coeffs:
            if c != 0:
                return DepResult.NONE
            continue
        g = 0
        for a in coeffs:
            g = math.gcd(g, abs(a))
        if g and c % g != 0:
            return DepResult.NONE
        if all(r is not None for _, r in inst1 + inst2):
            lo = hi = 0
            for sign, insts in ((1, inst1), (-1, inst2)):
                for a, rng in insts:
                    assert rng is not None
                    if len(rng) == 0:
                        return DepResult.NONE
                    vals = (a * sign * rng[0], a * sign * rng[-1])
                    lo += min(vals)
                    hi += max(vals)
            if not (lo <= -c <= hi):
                return DepResult.NONE
    return DepResult.MAYBE
