"""Front-end program analysis (the reproduction's "SUIF" side).

Sub-modules:

* :mod:`~repro.analysis.regions` — hierarchical region trees and canonical
  loop recognition;
* :mod:`~repro.analysis.items` — ITEMGEN: canonical memory-access
  enumeration and item generation;
* :mod:`~repro.analysis.subscripts` — affine subscript forms;
* :mod:`~repro.analysis.depend` — ZIV/SIV/GCD/Banerjee dependence tests;
* :mod:`~repro.analysis.alias` — Andersen-style points-to analysis;
* :mod:`~repro.analysis.refmod` — interprocedural REF/MOD side effects;
* :mod:`~repro.analysis.eqclasses` — equivalent access class partitioning;
* :mod:`~repro.analysis.builder` — TBLCONST: full HLI table construction.
"""

from .alias import TOP, HeapObject, PointsToResult, analyze_points_to
from .builder import FrontEndInfo, HLIBuilder, UnitInfo, build_hli
from .depend import (
    DepResult,
    LoopCarried,
    MemberRef,
    intra_iteration_relation,
    loop_carried_dependence,
    may_overlap,
)
from .items import (
    Access,
    AccessKind,
    AccessRole,
    ItemGenerator,
    MemoryItem,
    NUM_ARG_REGS,
    SymbolicRef,
    symbolic_ref,
    walk_rvalue,
    walk_stmt_accesses,
)
from .refmod import EffectSet, analyze_refmod
from .regions import LoopInfo, Region, RegionKind, RegionTreeBuilder, recognize_loop
from .subscripts import Affine, affine_of

__all__ = [
    "TOP",
    "HeapObject",
    "PointsToResult",
    "analyze_points_to",
    "FrontEndInfo",
    "HLIBuilder",
    "UnitInfo",
    "build_hli",
    "DepResult",
    "LoopCarried",
    "MemberRef",
    "intra_iteration_relation",
    "loop_carried_dependence",
    "may_overlap",
    "Access",
    "AccessKind",
    "AccessRole",
    "ItemGenerator",
    "MemoryItem",
    "NUM_ARG_REGS",
    "SymbolicRef",
    "symbolic_ref",
    "walk_rvalue",
    "walk_stmt_accesses",
    "EffectSet",
    "analyze_refmod",
    "LoopInfo",
    "Region",
    "RegionKind",
    "RegionTreeBuilder",
    "recognize_loop",
    "Affine",
    "affine_of",
]
