"""HLI construction — ITEMGEN + TBLCONST orchestration (paper Section 3.1).

:class:`HLIBuilder` turns a checked MiniC program into an
:class:`~repro.hli.tables.HLIFile`:

1. per function, build the region tree;
2. ITEMGEN: walk statements in canonical order, generating memory access
   items and the line table;
3. TBLCONST: visit the region tree bottom-up, partitioning items into
   equivalent access classes and computing alias, LCDD, and call REF/MOD
   tables per region.

The builder also retains analysis-side artifacts (region trees, item
objects) in :class:`FrontEndInfo` for tests and for the ground-truth
contract checks between front-end items and back-end memory references.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..frontend import ast_nodes as ast
from ..frontend.symbols import Symbol, SymbolTable
from ..obs import metrics, trace
from ..hli.tables import (
    AliasEntry,
    EqClass,
    HLIEntry,
    HLIFile,
    ItemType,
    RefModEntry,
    RefModKey,
    RegionEntry,
    RegionType,
)
from .alias import TOP, PointsToResult, analyze_points_to
from .eqclasses import ClassInfo, PartitionOptions, RegionPartitioner
from .items import (
    Access,
    AccessKind,
    AccessRole,
    ItemGenerator,
    MemoryItem,
    NUM_ARG_REGS,
    walk_rvalue,
    walk_stmt_accesses,
)
from .refmod import EffectSet, ForeignObject, analyze_refmod
from .regions import Region, RegionTreeBuilder
from .subscripts import Affine

_ITEM_TYPE = {
    AccessKind.LOAD: ItemType.LOAD,
    AccessKind.STORE: ItemType.STORE,
    AccessKind.CALL: ItemType.CALL,
}


@dataclass
class UnitInfo:
    """Analysis artifacts for one function, kept alongside the HLI entry."""

    fn: ast.FuncDef
    root: Region
    items: list[MemoryItem] = field(default_factory=list)
    #: item_id -> Region (immediately enclosing)
    item_region: dict[int, Region] = field(default_factory=dict)
    #: region_id -> Region object
    region_by_id: dict[int, Region] = field(default_factory=dict)
    #: items grouped per region id, in generation order
    region_items: dict[int, list[MemoryItem]] = field(default_factory=dict)
    #: final ClassInfo per class id
    class_info: dict[int, ClassInfo] = field(default_factory=dict)


@dataclass
class FrontEndInfo:
    """Whole-program analysis results."""

    program: ast.Program
    table: SymbolTable
    pts: PointsToResult
    refmod: dict[str, EffectSet]
    units: dict[str, UnitInfo] = field(default_factory=dict)


class HLIBuilder:
    """Build the HLI file for a whole program."""

    def __init__(
        self,
        program: ast.Program,
        table: SymbolTable,
        partition_options: PartitionOptions | None = None,
        external_effects: dict[str, EffectSet] | None = None,
    ) -> None:
        self.program = program
        self.table = table
        self.external_effects = external_effects
        with trace.span("analysis.points_to"):
            self.pts = analyze_points_to(program, table)
        with trace.span("analysis.refmod"):
            self.refmod = analyze_refmod(
                program, table, self.pts, external_effects=external_effects
            )
        self.partition_options = partition_options or PartitionOptions()

    def frontend_info(self) -> FrontEndInfo:
        """A :class:`FrontEndInfo` shell over the whole-program analyses.

        Per-unit artifacts are added by :meth:`build_unit`; the
        incremental driver fills cached units from its per-function
        store instead.
        """
        return FrontEndInfo(
            program=self.program, table=self.table, pts=self.pts, refmod=self.refmod
        )

    def build_unit(self, fn: ast.FuncDef) -> tuple[HLIEntry, UnitInfo]:
        """ITEMGEN + TBLCONST for a single function.

        Item, class, and region IDs are allocated from per-unit counters,
        so one function's entry is byte-stable no matter what other
        functions in the file look like — the property the per-function
        artifact cache relies on.
        """
        with trace.span("analysis.unit", fn=fn.name):
            return _UnitBuilder(fn, self).run()

    def build(self) -> tuple[HLIFile, FrontEndInfo]:
        hli = HLIFile(source_filename=self.program.filename)
        info = self.frontend_info()
        for fn in self.program.functions:
            entry, unit = self.build_unit(fn)
            hli.add(entry)
            info.units[fn.name] = unit
            if metrics.is_enabled():
                metrics.add("analysis.items", len(unit.items))
                metrics.add("analysis.regions", len(entry.regions))
                metrics.add(
                    "analysis.classes",
                    sum(len(r.eq_classes) for r in entry.regions.values()),
                )
        return hli, info


class _UnitBuilder:
    """ITEMGEN + TBLCONST for one function."""

    def __init__(self, fn: ast.FuncDef, parent: HLIBuilder) -> None:
        self.fn = fn
        self.parent = parent
        self._counter = itertools.count(1)
        self.gen = ItemGenerator(self._next_id)
        self.tree = RegionTreeBuilder()
        self.entry = HLIEntry(unit_name=fn.name, filename=parent.program.filename)
        self.unit = UnitInfo(fn=fn, root=None)  # type: ignore[arg-type]

    def _next_id(self) -> int:
        return next(self._counter)

    # -- driver ----------------------------------------------------------------

    def run(self) -> tuple[HLIEntry, UnitInfo]:
        root = self.tree.build(self.fn)
        self.unit.root = root
        for r in root.walk():
            self.unit.region_by_id[r.region_id] = r
            self.unit.region_items[r.region_id] = []
        self.entry.root_region_id = root.region_id

        with trace.span("analysis.itemgen"):
            self._gen_entry_param_items(root)
            assert self.fn.body is not None
            for stmt in self.fn.body.stmts:
                self._visit(stmt, root)

            # Line table, in generation order per line.
            for item in self.gen.items:
                self.entry.line_table.add_item(
                    item.line, item.item_id, _ITEM_TYPE[item.kind]
                )
            self.unit.items = list(self.gen.items)
            self.unit.item_region = {
                iid: r for iid, r in self.gen.item_region.items()  # type: ignore[misc]
            }

        with trace.span("analysis.tblconst"):
            self._build_region_tables(root)
        return self.entry, self.unit

    # -- ITEMGEN traversal -------------------------------------------------------

    def _gen(
        self,
        accesses: list[Access],
        region: Region,
        exprs: list[ast.Expr] | None = None,
        stmt: ast.Stmt | None = None,
    ) -> None:
        """Generate items for one statement-group of accesses.

        ``exprs`` are the group's expressions; scalars they assign taint
        the group's items (no epoch rescue) and bump the epoch counters
        afterwards, in walk order — which mirrors execution order within
        one iteration.
        """
        from .items import assigned_in_stmt, assigned_scalars

        assigned: set[int] = set()
        for e in exprs or ():
            assigned |= assigned_scalars(e)
        if stmt is not None:
            assigned |= assigned_in_stmt(stmt)
        items = self.gen.gen_for_accesses(accesses, region, tainted=assigned)
        self.unit.region_items[region.region_id].extend(items)
        self.gen.bump_epochs(assigned)

    def _gen_entry_param_items(self, root: Region) -> None:
        """ABI-induced items at function entry (paper Section 3.1.1)."""
        for idx, p in enumerate(self.fn.params):
            sym = p.symbol
            if not isinstance(sym, Symbol):
                continue
            if idx >= NUM_ARG_REGS:
                # Stack parameter: a load from the incoming arg area.
                name = ast.Name(line=self.fn.line, ident=p.name)
                name.symbol = sym
                name.ty = sym.ty
                acc = Access(
                    name,
                    AccessKind.LOAD,
                    self.fn.line,
                    AccessRole.ENTRY_PARAM,
                    arg_index=idx,
                )
                self._gen([acc], root)
            elif sym.in_memory and not sym.ty.is_array:
                # Register parameter spilled to memory (address taken).
                name = ast.Name(line=self.fn.line, ident=p.name)
                name.symbol = sym
                name.ty = sym.ty
                self._gen([Access(name, AccessKind.STORE, self.fn.line)], root)

    def _visit(self, stmt: ast.Stmt, region: Region) -> None:
        if isinstance(stmt, ast.For):
            loop_region = self.tree.loop_regions[id(stmt)]
            if stmt.init is not None:
                self._gen(
                    list(walk_stmt_accesses(stmt.init)),
                    region,
                    stmt=stmt.init,
                )
            if stmt.cond is not None:
                self._gen(list(walk_rvalue(stmt.cond)), loop_region, [stmt.cond])
            if stmt.body is not None:
                self._visit_body(stmt.body, loop_region)
            if stmt.step is not None:
                self._gen(list(walk_rvalue(stmt.step)), loop_region, [stmt.step])
            return
        if isinstance(stmt, ast.While):
            loop_region = self.tree.loop_regions[id(stmt)]
            self._gen(
                list(walk_rvalue(stmt.cond)) if stmt.cond else [],
                loop_region,
                [stmt.cond] if stmt.cond else [],
            )
            if stmt.body is not None:
                self._visit_body(stmt.body, loop_region)
            return
        if isinstance(stmt, ast.DoWhile):
            loop_region = self.tree.loop_regions[id(stmt)]
            if stmt.body is not None:
                self._visit_body(stmt.body, loop_region)
            self._gen(
                list(walk_rvalue(stmt.cond)) if stmt.cond else [],
                loop_region,
                [stmt.cond] if stmt.cond else [],
            )
            return
        if isinstance(stmt, ast.If):
            if stmt.cond is not None:
                self._gen(list(walk_rvalue(stmt.cond)), region, [stmt.cond])
            if stmt.then is not None:
                self._visit(stmt.then, region)
            if stmt.otherwise is not None:
                self._visit(stmt.otherwise, region)
            return
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self._visit(s, region)
            return
        if isinstance(stmt, ast.DeclGroup):
            for d in stmt.decls:
                self._visit(d, region)
            return
        self._gen(list(walk_stmt_accesses(stmt)), region, stmt=stmt)

    def _visit_body(self, body: ast.Stmt, region: Region) -> None:
        if isinstance(body, ast.Block):
            for s in body.stmts:
                self._visit(s, region)
        else:
            self._visit(body, region)

    # -- TBLCONST ---------------------------------------------------------------

    def _build_region_tables(self, root: Region) -> None:
        lifted: dict[int, list[ClassInfo]] = {}

        def rec(region: Region) -> list[ClassInfo]:
            sub_classes: list[ClassInfo] = []
            for child in region.children:
                sub_classes.extend(rec(child))
            part = RegionPartitioner(
                region=region,
                items=self.unit.region_items[region.region_id],
                lifted=sub_classes,
                pts=self.parent.pts,
                next_id=self._next_id,
                options=self.parent.partition_options,
            )
            result = part.run()
            self._emit_region_entry(region, result)
            for c in result.classes:
                self.unit.class_info[c.class_id] = c
            lifted[region.region_id] = result.classes
            return result.classes

        rec(root)

    def _emit_region_entry(self, region: Region, result) -> None:
        lines = [it.line for it in self.unit.region_items[region.region_id]]
        sub_ids = [c.region_id for c in region.children]
        line_start = region.line
        line_end = max(lines + [region.line] + [
            self.entry.regions[s].line_end for s in sub_ids if s in self.entry.regions
        ])
        loop_step = 0
        loop_trip = -1
        if region.loop is not None:
            loop_step = region.loop.step or 0
            trip = region.loop.trip_count()
            loop_trip = trip if trip is not None else -1
        entry = RegionEntry(
            region_id=region.region_id,
            region_type=RegionType.LOOP if region.kind.value == "loop" else RegionType.UNIT,
            parent_id=region.parent.region_id if region.parent else None,
            line_start=line_start,
            line_end=line_end,
            sub_region_ids=sub_ids,
            loop_step=loop_step,
            loop_trip=loop_trip,
        )
        for c in result.classes:
            entry.eq_classes.append(
                EqClass(
                    class_id=c.class_id,
                    equiv_type=c.equiv,
                    member_items=sorted(c.member_items),
                    member_classes=sorted(c.member_classes),
                    label=c.label,
                )
            )
        for a, b in result.alias_pairs:
            entry.alias_entries.append(AliasEntry(class_ids=frozenset((a, b))))
        entry.lcdd_entries.extend(result.lcdd)
        self._emit_refmod(region, entry, result.classes)
        self.entry.regions[region.region_id] = entry

    # -- REF/MOD table ------------------------------------------------------------

    def _effects_of_call_item(self, item: MemoryItem) -> EffectSet:
        assert item.callee is not None
        eff = self.parent.refmod.get(item.callee)
        if eff is None:
            return EffectSet(ref={TOP}, mod={TOP})
        return eff

    def _region_call_effects(self, region: Region) -> EffectSet:
        """Union of effects of every call transitively inside ``region``."""
        total = EffectSet()
        found = False
        for r in region.walk():
            for it in self.unit.region_items[r.region_id]:
                if it.kind is AccessKind.CALL:
                    total.union_update(self._effects_of_call_item(it))
                    found = True
        if not found:
            return EffectSet()
        return total

    def _classes_touched(self, objs: set, classes: list[ClassInfo]) -> list[int]:
        foreign = any(isinstance(o, ForeignObject) for o in objs)
        out: list[int] = []
        for c in classes:
            if c.base is None:
                out.append(c.class_id)
                continue
            if c.is_deref:
                if self.parent.pts.targets(c.base) & objs:
                    out.append(c.class_id)
                elif foreign and TOP in self.parent.pts.points_to.get(c.base, {TOP}):
                    # A pointer that may point anywhere may reach storage
                    # owned by another unit, so a foreign effect touches it.
                    out.append(c.class_id)
            elif c.base in objs:
                out.append(c.class_id)
        return sorted(set(out))

    def _emit_refmod(
        self, region: Region, entry: RegionEntry, classes: list[ClassInfo]
    ) -> None:
        # Calls immediately in this region: one entry per call item.
        for it in self.unit.region_items[region.region_id]:
            if it.kind is not AccessKind.CALL:
                continue
            eff = self._effects_of_call_item(it)
            entry.refmod_entries.append(
                RefModEntry(
                    key_kind=RefModKey.CALL_ITEM,
                    key_id=it.item_id,
                    ref_classes=[] if eff.reads_all else self._classes_touched(eff.ref, classes),
                    mod_classes=[] if eff.clobbers_all else self._classes_touched(eff.mod, classes),
                    ref_all=eff.reads_all,
                    mod_all=eff.clobbers_all,
                )
            )
        # Calls inside each immediate sub-region: one entry per sub-region.
        for child in region.children:
            eff = self._region_call_effects(child)
            if not eff.ref and not eff.mod:
                continue
            entry.refmod_entries.append(
                RefModEntry(
                    key_kind=RefModKey.SUBREGION,
                    key_id=child.region_id,
                    ref_classes=[] if eff.reads_all else self._classes_touched(eff.ref, classes),
                    mod_classes=[] if eff.clobbers_all else self._classes_touched(eff.mod, classes),
                    ref_all=eff.reads_all,
                    mod_all=eff.clobbers_all,
                )
            )


def build_hli(
    program: ast.Program,
    table: SymbolTable,
    partition_options: PartitionOptions | None = None,
    external_effects: dict[str, EffectSet] | None = None,
) -> tuple[HLIFile, FrontEndInfo]:
    """Convenience wrapper: build HLI for a checked program.

    ``external_effects`` (whole-program mode) carries linker-computed
    summaries for extern functions; see :mod:`repro.linker`.
    """
    with trace.span("analysis.build_hli", file=program.filename):
        return HLIBuilder(
            program, table, partition_options, external_effects=external_effects
        ).build()
