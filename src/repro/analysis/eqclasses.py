"""Equivalent access class construction for one region (Section 2.2.1).

The partition rules implemented here follow the paper's construction
(Section 3.1.2) and reproduce the worked example of Figure 2:

* immediate items with *identical* symbolic references form one
  (definite) proto-class — multiple references to the same location in
  one iteration collapse immediately;
* proto-classes whose references are proven to touch the same location
  within one iteration (the "SUIF test returns zero distance" rule) are
  merged and stay definite;
* classes lifted from sub-regions that merely *may* overlap are merged
  into a single ``maybe`` class — the paper's size-reduction rule — while
  immediate items are kept separate from maybe-overlapping classes and
  related through the alias table instead (this is exactly the
  ``b[0]`` vs ``b[0..9]`` situation in Figure 2);
* classes that may overlap but are not merged produce alias entries;
* for loop regions, surviving class pairs are tested for loop-carried
  dependences and recorded in the LCDD table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..frontend.symbols import Symbol
from ..hli.tables import DepType, EquivType, LCDDEntry
from .alias import PointsToResult
from .depend import (
    DepResult,
    MemberRef,
    class_loop_carried,
    may_overlap,
)
from .items import AccessKind, MemoryItem
from .regions import Region, RegionKind


@dataclass
class ClassInfo:
    """Builder-side view of one equivalence class."""

    class_id: int
    region: Region
    members: list[MemberRef] = field(default_factory=list)
    member_items: list[int] = field(default_factory=list)
    member_classes: list[int] = field(default_factory=list)
    equiv: EquivType = EquivType.DEFINITE
    base: Optional[Symbol] = None
    is_deref: bool = False
    has_store: bool = False
    label: str = ""
    #: True when this ClassInfo was lifted from a sub-region (vs formed
    #: from items immediately in the current region).
    lifted: bool = False


@dataclass
class RegionClassResult:
    """Classes plus alias/LCDD facts computed for one region."""

    classes: list[ClassInfo]
    alias_pairs: list[tuple[int, int]]
    lcdd: list[LCDDEntry]


@dataclass(frozen=True)
class PartitionOptions:
    """Ablation knobs for class construction (see DESIGN.md §5).

    ``merge_zero_distance`` — the paper's Section 3.1.2 rule: classes whose
    references definitely touch the same location in one iteration merge.
    ``merge_maybe_lifted`` — the size-reduction rule: maybe-overlapping
    *lifted* classes merge into one maybe class.
    Both default to the paper's behaviour; disabling them keeps classes
    apart (precision unchanged — alias entries compensate — but the HLI
    grows).
    """

    merge_zero_distance: bool = True
    merge_maybe_lifted: bool = True


def _group_key(c: ClassInfo) -> tuple:
    base_uid = c.base.uid if c.base is not None else -1
    return (base_uid, c.is_deref)


def _pair_relation(u: ClassInfo, v: ClassInfo, region: Region) -> DepResult:
    """Combined overlap relation over all member cross pairs."""
    worst = DepResult.NONE
    all_def = True
    for m1 in u.members:
        for m2 in v.members:
            rel = may_overlap(m1, m2, region)
            if rel is not DepResult.DEF:
                all_def = False
            if rel is DepResult.MAYBE:
                worst = DepResult.MAYBE
            elif rel is DepResult.DEF and worst is DepResult.NONE:
                worst = DepResult.DEF
    if worst is DepResult.DEF and not all_def:
        return DepResult.MAYBE
    return worst


class RegionPartitioner:
    """Build the final classes of one region from items + lifted classes."""

    def __init__(
        self,
        region: Region,
        items: list[MemoryItem],
        lifted: list[ClassInfo],
        pts: PointsToResult,
        next_id: Callable[[], int],
        options: PartitionOptions | None = None,
    ) -> None:
        self.region = region
        self.items = [
            it for it in items if it.kind is not AccessKind.CALL and it.ref is not None
        ]
        self.lifted = lifted
        self.pts = pts
        self.next_id = next_id
        self.options = options or PartitionOptions()

    def run(self) -> RegionClassResult:
        units = self._proto_classes() + [self._relabel(c) for c in self.lifted]
        classes = self._merge(units)
        alias_pairs = self._alias_pairs(classes)
        lcdd = self._lcdd(classes) if self.region.kind is RegionKind.LOOP else []
        return RegionClassResult(classes=classes, alias_pairs=alias_pairs, lcdd=lcdd)

    # -- step 1: proto classes from immediate items ------------------------

    def _proto_classes(self) -> list[ClassInfo]:
        groups: dict[tuple, ClassInfo] = {}
        order: list[ClassInfo] = []
        for it in self.items:
            assert it.ref is not None
            # Epochs are part of identity: two syntactically equal
            # subscripts straddling an assignment to a subscript symbol
            # denote different locations.
            key = (it.ref.key(), it.epochs)
            info = groups.get(key)
            if info is None:
                info = ClassInfo(
                    class_id=self.next_id(),
                    region=self.region,
                    base=it.ref.base,
                    is_deref=it.ref.is_deref,
                    label=str(it.ref),
                )
                groups[key] = info
                order.append(info)
            info.member_items.append(it.item_id)
            info.members.append(
                MemberRef(
                    ref=it.ref,
                    is_store=it.kind is AccessKind.STORE,
                    home=self.region,
                    epochs=it.epochs,
                )
            )
            info.has_store = info.has_store or it.kind is AccessKind.STORE
        return order

    def _relabel(self, c: ClassInfo) -> ClassInfo:
        """Wrap a sub-region class as a unit at this region."""
        return ClassInfo(
            class_id=c.class_id,  # placeholder; real id given if it survives alone
            region=self.region,
            members=list(c.members),
            member_items=[],
            member_classes=[c.class_id],
            equiv=c.equiv,
            base=c.base,
            is_deref=c.is_deref,
            has_store=c.has_store,
            label=c.label,
            lifted=True,
        )

    # -- step 2: merging ------------------------------------------------------

    def _merge(self, units: list[ClassInfo]) -> list[ClassInfo]:
        n = len(units)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        maybe_merged: set[int] = set()
        # Only same-base, same-shape units are merge candidates.
        by_group: dict[tuple, list[int]] = {}
        for idx, u in enumerate(units):
            if u.base is not None:
                by_group.setdefault(_group_key(u), []).append(idx)
        for group in by_group.values():
            for ai in range(len(group)):
                for bi in range(ai + 1, len(group)):
                    i, j = group[ai], group[bi]
                    u, v = units[i], units[j]
                    rel = _pair_relation(u, v, self.region)
                    if rel is DepResult.DEF and self.options.merge_zero_distance:
                        union(i, j)
                    elif (
                        rel is DepResult.MAYBE
                        and u.lifted
                        and v.lifted
                        and self.options.merge_maybe_lifted
                    ):
                        # Size-reduction rule: merge maybe-overlapping
                        # lifted classes into one maybe class.
                        union(i, j)
                        maybe_merged.add(find(i))
        # Build merged classes.
        comps: dict[int, list[int]] = {}
        for idx in range(n):
            comps.setdefault(find(idx), []).append(idx)
        out: list[ClassInfo] = []
        for root, idxs in comps.items():
            members = [units[k] for k in idxs]
            merged = ClassInfo(
                class_id=self.next_id(),
                region=self.region,
                base=members[0].base,
                is_deref=members[0].is_deref,
                lifted=all(m.lifted for m in members),
            )
            for m in members:
                merged.members.extend(m.members)
                merged.member_items.extend(m.member_items)
                merged.member_classes.extend(m.member_classes)
                merged.has_store = merged.has_store or m.has_store
                if m.equiv is EquivType.MAYBE:
                    merged.equiv = EquivType.MAYBE
            if find(idxs[0]) in maybe_merged and len(idxs) > 1:
                merged.equiv = EquivType.MAYBE
            merged.label = self._label(merged, members)
            out.append(merged)
        return out

    def _label(self, merged: ClassInfo, parts: list[ClassInfo]) -> str:
        if len(parts) == 1:
            return parts[0].label
        base = merged.base.name if merged.base else "?"
        return f"{base}[*]" if any("[" in p.label for p in parts) else base

    # -- step 3: alias entries ---------------------------------------------------

    def _alias_pairs(self, classes: list[ClassInfo]) -> list[tuple[int, int]]:
        pairs: list[tuple[int, int]] = []
        for i in range(len(classes)):
            for j in range(i + 1, len(classes)):
                u, v = classes[i], classes[j]
                if self._may_alias_classes(u, v):
                    pairs.append((u.class_id, v.class_id))
        return pairs

    def _may_alias_classes(self, u: ClassInfo, v: ClassInfo) -> bool:
        # Unknown-base classes alias everything.
        if u.base is None or v.base is None:
            return True
        if u.is_deref and v.is_deref:
            return bool(self.pts.targets(u.base) & self.pts.targets(v.base))
        if u.is_deref != v.is_deref:
            deref, plain = (u, v) if u.is_deref else (v, u)
            assert deref.base is not None and plain.base is not None
            return plain.base in self.pts.targets(deref.base)
        if u.base is not v.base:
            return False
        # Same base, both direct: alias iff they may overlap in-iteration.
        rel = _pair_relation(u, v, self.region)
        return rel is not DepResult.NONE

    # -- step 4: loop-carried dependences -------------------------------------

    def _lcdd(self, classes: list[ClassInfo]) -> list[LCDDEntry]:
        entries: list[LCDDEntry] = []
        seen: set[tuple[int, int, Optional[int]]] = set()

        def add(src: int, dst: int, dep: DepType, dist: Optional[int]) -> None:
            key = (src, dst, dist)
            if key not in seen:
                seen.add(key)
                entries.append(
                    LCDDEntry(src_class=src, dst_class=dst, dep_type=dep, distance=dist)
                )

        for i in range(len(classes)):
            for j in range(i, len(classes)):
                u, v = classes[i], classes[j]
                if not (u.has_store or v.has_store):
                    continue
                if u.base is None or v.base is None or u.is_deref or v.is_deref:
                    if self._may_alias_classes(u, v) or u is v:
                        add(u.class_id, v.class_id, DepType.MAYBE, None)
                    continue
                if u.base is not v.base:
                    continue
                self._lcdd_pair(u, v, add)
        return entries

    def _lcdd_pair(self, u: ClassInfo, v: ClassInfo, add) -> None:
        got_maybe = False
        distances: set[tuple[int, bool]] = set()
        any_dist = False
        for m1 in u.members:
            for m2 in v.members:
                if not (m1.is_store or m2.is_store):
                    continue
                res = class_loop_carried(m1, m2, self.region)
                if res.result is DepResult.NONE:
                    continue
                if res.result is DepResult.MAYBE or res.distance is None:
                    got_maybe = True
                elif res.any_distance:
                    any_dist = True
                else:
                    distances.add((res.distance, res.src_first))
        for dist, src_first in sorted(distances):
            if src_first:
                add(u.class_id, v.class_id, DepType.DEFINITE, dist)
            else:
                add(v.class_id, u.class_id, DepType.DEFINITE, dist)
        if any_dist:
            add(u.class_id, v.class_id, DepType.DEFINITE, 1)
        if got_maybe:
            add(u.class_id, v.class_id, DepType.MAYBE, None)
