"""Named, versioned benchmark workload sets (SPEC-style registry).

Every perf or precision number this repo reports should name the
workload population it was measured on.  This module is that naming
authority: a **set** is an immutable, versioned list of programs —
either the curated MiniC suite, parametric kernels, or corpora derived
from the seeded generators with a declared **profile** (pointer-heavy,
float-heavy, branchy, deep-call-graph, multi-unit).

Reproducibility is enforced, not assumed:

* every generated program comes from a pinned seed flowing through one
  explicit ``random.Random`` — no module-global RNG state;
* profile membership is checked by a predicate at materialization time,
  and seeds that fail the predicate are skipped deterministically, so a
  set is a pure function of this file's code;
* a **digest manifest** (:mod:`repro.bench.manifest_data`, regenerated
  with ``python -m repro.bench.registry --write-manifests``) pins the
  sha256 of every program's source; :func:`verify_manifest` regenerates
  a set and diffs it against the pinned digests, and CI runs it so a
  drive-by generator change cannot silently redefine what "suite-v1"
  means.  Changing a generator on purpose means bumping the set version
  and rewriting the manifest in the same commit.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Optional

from ..difftest.gen import GenConfig, generate, generate_units
from ..workloads.generators import (
    ReductionParams,
    StencilParams,
    random_affine_loop,
    reduction_program,
    stencil_program,
)
from ..workloads.suite import BENCHMARKS, BenchmarkSpec

__all__ = [
    "DEEPCALL_DEPTH_FLOOR",
    "Profile",
    "PROFILES",
    "WorkloadProgram",
    "WorkloadSet",
    "REGISTRY",
    "get_set",
    "set_names",
    "materialize",
    "set_digest",
    "program_digests",
    "verify_manifest",
    "write_manifests",
    "suite_specs",
    "call_depth",
    "pointer_op_count",
    "float_op_count",
    "branch_count",
]

#: Declared floor for the deep-call-graph profile: the longest call
#: chain from ``main`` must be at least this many edges.
DEEPCALL_DEPTH_FLOOR = 4

#: Minimum body statements of the shape a profile is named after.
POINTER_OP_FLOOR = 3
FLOAT_OP_FLOOR = 3
BRANCH_FLOOR = 4


@dataclass(frozen=True)
class WorkloadProgram:
    """One runnable program: one or more (filename, source) units."""

    name: str
    profile: str
    units: tuple[tuple[str, str], ...]
    #: generator seed for generated programs; ``None`` for curated ones
    seed: Optional[int] = None

    @property
    def multi_unit(self) -> bool:
        return len(self.units) > 1

    @property
    def source(self) -> str:
        """The single-unit source (raises for multi-unit programs)."""
        if self.multi_unit:
            raise ValueError(f"{self.name} is multi-unit; iterate .units")
        return self.units[0][1]

    def digest(self) -> str:
        h = hashlib.sha256()
        for fname, source in self.units:
            h.update(fname.encode())
            h.update(b"\x00")
            h.update(source.encode())
            h.update(b"\x00")
        return h.hexdigest()


# ---------------------------------------------------------------------------
# profile predicates (pure text analysis; generated programs only)
# ---------------------------------------------------------------------------

_FN_DEF_RE = re.compile(r"^int (f\d+|main)\(", re.M)
_CALL_RE = re.compile(r"\b(f\d+)\s*\(")


def _whole_source(prog: WorkloadProgram) -> str:
    return "\n".join(src for _, src in prog.units)


def call_depth(source: str) -> int:
    """Longest call chain (in edges) from ``main`` through the ``f<k>``
    helpers, computed from the source text.  Generated programs name
    helpers ``f0..fN`` and never shadow them, so a textual scan is
    exact for them."""
    defs = list(_FN_DEF_RE.finditer(source))
    calls: dict[str, set[str]] = {}
    for i, m in enumerate(defs):
        end = defs[i + 1].start() if i + 1 < len(defs) else len(source)
        body = source[m.start():end]
        body = body[body.index("{") + 1:] if "{" in body else body
        calls[m.group(1)] = set(_CALL_RE.findall(body))

    depth_memo: dict[str, int] = {}

    def depth(fn: str, seen: frozenset[str]) -> int:
        if fn in depth_memo:
            return depth_memo[fn]
        best = 0
        for callee in calls.get(fn, ()):
            if callee in seen or callee not in calls:
                continue
            best = max(best, 1 + depth(callee, seen | {callee}))
        depth_memo[fn] = best
        return best

    return depth("main", frozenset({"main"})) if "main" in calls else 0


def pointer_op_count(source: str) -> int:
    """Pointer operations in the body: dereferences, bumps, re-aims."""
    return source.count("*gp") + source.count("gp++") + source.count("gp =")


def float_op_count(source: str) -> int:
    """Float-typed body statements: lines touching a ``gd<k>`` global,
    excluding the declarations, the deterministic init, and the
    checksum epilogue every floats-enabled program shares."""
    count = 0
    for line in source.splitlines():
        s = line.strip()
        if not re.search(r"\bgd\d", s):
            continue
        if s.startswith("double ") or s.startswith("extern double "):
            continue
        if re.fullmatch(r"gd\d = \d\.5;", s):
            continue
        if "chk" in s:
            continue
        count += 1
    return count


def branch_count(source: str) -> int:
    return source.count("if (")


@dataclass(frozen=True)
class Profile:
    """A program-shape class with a generator config and a membership
    predicate the registry enforces at materialization time."""

    name: str
    description: str
    config: Optional[GenConfig]
    predicate: Callable[[WorkloadProgram], bool]


def _always(_: WorkloadProgram) -> bool:
    return True


PROFILES: dict[str, Profile] = {
    "pointer": Profile(
        "pointer",
        f"pointer walks and dereferences (>= {POINTER_OP_FLOOR} pointer ops)",
        GenConfig(
            pointers=True, structs=False, floats=False, calls=False,
            prints=False, max_stmts=12,
        ),
        lambda p: pointer_op_count(_whole_source(p)) >= POINTER_OP_FLOOR,
    ),
    "float": Profile(
        "float",
        f"double arithmetic and compares (>= {FLOAT_OP_FLOOR} float stmts)",
        GenConfig(
            floats=True, pointers=False, structs=False, calls=False,
            prints=False, max_stmts=12,
        ),
        lambda p: float_op_count(_whole_source(p)) >= FLOAT_OP_FLOOR,
    ),
    "branchy": Profile(
        "branchy",
        f"dense control flow (>= {BRANCH_FLOOR} conditionals)",
        GenConfig(
            pointers=False, structs=False, floats=False, calls=False,
            prints=False, max_stmts=14, max_depth=3,
        ),
        lambda p: branch_count(_whole_source(p)) >= BRANCH_FLOOR,
    ),
    "deepcall": Profile(
        "deepcall",
        f"chained helper calls (call depth >= {DEEPCALL_DEPTH_FLOOR})",
        GenConfig(
            functions=6, chain_calls=True, pointers=False, structs=False,
            prints=False, max_stmts=12,
        ),
        lambda p: call_depth(_whole_source(p)) >= DEEPCALL_DEPTH_FLOOR,
    ),
    "multiunit": Profile(
        "multiunit",
        "3 translation units with cross-unit calls and extern globals",
        GenConfig(functions=4, structs=False, prints=False),
        lambda p: p.multi_unit,
    ),
    "multiunit-large": Profile(
        "multiunit-large",
        "8-16 translation units with cross-unit calls and extern globals "
        "(partitioner-scale whole programs)",
        GenConfig(functions=15, structs=False, prints=False),
        lambda p: p.multi_unit and len(p.units) >= 8,
    ),
    # curated / parametric profiles (no generator config, no filtering)
    "int": Profile("int", "curated integer suite programs", None, _always),
    "fp": Profile("fp", "curated floating-point suite programs", None, _always),
    "stencil": Profile("stencil", "parametric 1-D stencil kernels", None, _always),
    "reduction": Profile("reduction", "parametric reduction chains", None, _always),
    "affine": Profile("affine", "seeded affine-subscript loops", None, _always),
}


# ---------------------------------------------------------------------------
# set definitions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSet:
    """A named, versioned workload population."""

    name: str
    version: int
    description: str
    builder: Callable[[], list[WorkloadProgram]] = field(repr=False)
    profiles: tuple[str, ...] = ()

    @property
    def full_name(self) -> str:
        return f"{self.name}-v{self.version}"


def _generated(profile_name: str, count: int, seed_base: int) -> list[WorkloadProgram]:
    """``count`` programs of ``profile_name``, scanning seeds from
    ``seed_base`` upward and keeping exactly those the profile predicate
    admits — a pure function of the registry code."""
    profile = PROFILES[profile_name]
    assert profile.config is not None
    out: list[WorkloadProgram] = []
    seed = seed_base
    budget = max(1000, count * 400)
    while len(out) < count:
        if seed - seed_base >= budget:
            raise RuntimeError(
                f"profile '{profile_name}' admitted only {len(out)}/{count} "
                f"programs in {budget} seeds — predicate/config mismatch"
            )
        if profile_name == "multiunit":
            units = tuple(generate_units(seed, profile.config, n_units=3))
        elif profile_name == "multiunit-large":
            # 8-16 units, deterministic in the seed; the generator clamps
            # at 1 + helper count, so functions=15 admits the full range.
            units = tuple(
                generate_units(seed, profile.config, n_units=8 + seed % 9)
            )
        else:
            units = ((f"{profile_name}_{seed}.c", generate(seed, profile.config)),)
        prog = WorkloadProgram(
            name=f"{profile_name}-{len(out):03d}",
            profile=profile_name,
            units=units,
            seed=seed,
        )
        if profile.predicate(prog):
            out.append(prog)
        seed += 1
    return out


def _suite() -> list[WorkloadProgram]:
    return [
        WorkloadProgram(
            name=b.name,
            profile="fp" if b.is_float else "int",
            units=((f"{b.name}.c", b.source),),
        )
        for b in BENCHMARKS
    ]


def _kernels() -> list[WorkloadProgram]:
    out: list[WorkloadProgram] = []
    for arrays in (2, 3, 4):
        for size in (32, 64):
            p = StencilParams(arrays=arrays, size=size)
            out.append(
                WorkloadProgram(
                    name=f"stencil-a{arrays}-s{size}",
                    profile="stencil",
                    units=((f"stencil_a{arrays}_s{size}.c", stencil_program(p)),),
                )
            )
    for arrays in (1, 2, 4):
        p = ReductionParams(arrays=arrays, size=64)
        out.append(
            WorkloadProgram(
                name=f"reduction-a{arrays}",
                profile="reduction",
                units=((f"reduction_a{arrays}.c", reduction_program(p)),),
            )
        )
    for seed in range(6):
        src, _ = random_affine_loop(seed)
        out.append(
            WorkloadProgram(
                name=f"affine-{seed:03d}",
                profile="affine",
                units=((f"affine_{seed}.c", src),),
                seed=seed,
            )
        )
    return out


def _quick() -> list[WorkloadProgram]:
    """Small mixed set for CI gating: two curated programs plus a couple
    of each generated profile.  Seed bases are offset from the big sets
    so quick-v1 stays stable even if those grow."""
    curated = [p for p in _suite() if p.name in ("wc", "129.compress")]
    return (
        curated
        + _generated("pointer", 2, seed_base=10_000)
        + _generated("float", 2, seed_base=11_000)
        + _generated("branchy", 2, seed_base=12_000)
        + _generated("deepcall", 1, seed_base=13_000)
        + _generated("multiunit", 1, seed_base=14_000)
    )


def _corpus() -> list[WorkloadProgram]:
    """The big mixed population: 30 programs per generated profile."""
    progs: list[WorkloadProgram] = []
    for i, name in enumerate(("pointer", "float", "branchy", "deepcall")):
        progs.extend(_generated(name, 30, seed_base=20_000 + 1_000 * i))
    return progs


REGISTRY: dict[str, WorkloadSet] = {
    s.full_name: s
    for s in [
        WorkloadSet(
            "suite", 1,
            "the 14 curated SPEC-shaped MiniC programs (paper Tables 1/2)",
            _suite, ("int", "fp"),
        ),
        WorkloadSet(
            "kernels", 1,
            "parametric stencil / reduction / affine-loop kernels",
            _kernels, ("stencil", "reduction", "affine"),
        ),
        WorkloadSet(
            "quick", 1,
            "small mixed set for CI regression gating",
            _quick, ("int", "pointer", "float", "branchy", "deepcall", "multiunit"),
        ),
        WorkloadSet(
            "gen-pointer", 1,
            "24 seeded pointer-heavy programs",
            lambda: _generated("pointer", 24, seed_base=100_000), ("pointer",),
        ),
        WorkloadSet(
            "gen-float", 1,
            "24 seeded float-heavy programs",
            lambda: _generated("float", 24, seed_base=110_000), ("float",),
        ),
        WorkloadSet(
            "gen-branchy", 1,
            "24 seeded branch-dense programs",
            lambda: _generated("branchy", 24, seed_base=120_000), ("branchy",),
        ),
        WorkloadSet(
            "gen-deepcall", 1,
            f"16 seeded programs with call depth >= {DEEPCALL_DEPTH_FLOOR}",
            lambda: _generated("deepcall", 16, seed_base=130_000), ("deepcall",),
        ),
        WorkloadSet(
            "gen-multiunit", 1,
            "12 seeded 3-unit + 6 seeded 8-16-unit whole-program workloads",
            lambda: _generated("multiunit", 12, seed_base=140_000)
            + _generated("multiunit-large", 6, seed_base=150_000),
            ("multiunit", "multiunit-large"),
        ),
        WorkloadSet(
            "corpus", 1,
            "120 seeded programs, 30 per generated profile",
            _corpus, ("pointer", "float", "branchy", "deepcall"),
        ),
    ]
}


def set_names() -> list[str]:
    return sorted(REGISTRY)


def get_set(name: str) -> WorkloadSet:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload set '{name}' (have: {', '.join(set_names())})"
        ) from None


@lru_cache(maxsize=None)
def materialize(name: str) -> tuple[WorkloadProgram, ...]:
    """Build the set's program list (deterministic; cached per process)."""
    return tuple(get_set(name).builder())


def suite_specs() -> list[BenchmarkSpec]:
    """The :class:`BenchmarkSpec` rows backing ``suite-v1`` — the paper
    tables and validation claims consume the suite through this registry
    hook rather than importing the raw list."""
    materialize("suite-v1")  # assert the set still builds
    return list(BENCHMARKS)


# ---------------------------------------------------------------------------
# digest manifest
# ---------------------------------------------------------------------------

def program_digests(name: str) -> dict[str, str]:
    return {p.name: p.digest() for p in materialize(name)}


def set_digest(name: str) -> str:
    h = hashlib.sha256()
    for pname, digest in sorted(program_digests(name).items()):
        h.update(pname.encode())
        h.update(b"\x00")
        h.update(digest.encode())
        h.update(b"\x00")
    return h.hexdigest()


def verify_manifest(name: str) -> list[str]:
    """Regenerate ``name`` and diff it against the pinned manifest.
    Returns a list of human-readable mismatches (empty = reproducible)."""
    from . import manifest_data

    problems: list[str] = []
    pinned = manifest_data.MANIFESTS.get(name)
    if pinned is None:
        return [f"{name}: no pinned manifest (run --write-manifests)"]
    fresh = program_digests(name)
    for pname in sorted(set(pinned) | set(fresh)):
        a, b = pinned.get(pname), fresh.get(pname)
        if a != b:
            problems.append(f"{name}/{pname}: pinned {a} != regenerated {b}")
    pinned_set = manifest_data.SET_DIGESTS.get(name)
    if pinned_set != set_digest(name):
        problems.append(
            f"{name}: set digest {set_digest(name)} != pinned {pinned_set}"
        )
    return problems


_MANIFEST_HEADER = '''\
"""Pinned source digests for every registry workload set.

GENERATED by ``python -m repro.bench.registry --write-manifests`` —
do not edit by hand.  A mismatch between these digests and a freshly
materialized set means a generator or set definition changed without a
version bump; :func:`repro.bench.registry.verify_manifest` (run by the
test suite and the validation gate) will fail until the manifest is
regenerated in the same commit as the intentional change.
"""

from __future__ import annotations
'''


def write_manifests(path: Optional[str] = None) -> str:
    """Regenerate :mod:`repro.bench.manifest_data` next to this module
    (or at ``path``) and return the file's location."""
    import pathlib

    target = (
        pathlib.Path(path)
        if path is not None
        else pathlib.Path(__file__).with_name("manifest_data.py")
    )
    lines = [_MANIFEST_HEADER]
    lines.append("MANIFESTS: dict[str, dict[str, str]] = {")
    for name in set_names():
        lines.append(f"    {name!r}: {{")
        for pname, digest in sorted(program_digests(name).items()):
            lines.append(f"        {pname!r}: {digest!r},")
        lines.append("    },")
    lines.append("}")
    lines.append("")
    lines.append("SET_DIGESTS: dict[str, str] = {")
    for name in set_names():
        lines.append(f"    {name!r}: {set_digest(name)!r},")
    lines.append("}")
    target.write_text("\n".join(lines) + "\n")
    return str(target)


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.registry",
        description="Inspect or re-pin the workload-set digest manifests.",
    )
    parser.add_argument(
        "--write-manifests", action="store_true",
        help="regenerate manifest_data.py from the current definitions",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="regenerate every set and diff against the pinned manifest",
    )
    args = parser.parse_args(argv)
    if args.write_manifests:
        print(f"wrote {write_manifests()}")
        return 0
    failures = 0
    for name in set_names():
        progs = materialize(name)
        profiles = sorted({p.profile for p in progs})
        line = f"{name}: {len(progs)} programs, profiles {', '.join(profiles)}"
        if args.verify:
            problems = verify_manifest(name)
            line += "  [reproducible]" if not problems else "  [MISMATCH]"
            failures += len(problems)
            for p in problems:
                line += f"\n    {p}"
        print(line)
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
