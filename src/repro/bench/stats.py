"""Statistical primitives for benchmark reporting.

One implementation of median / quartile / spread math, shared by the
``repro-bench`` runner, the standalone ``benchmarks/bench_*.py``
harnesses, and the load-test percentile reports — so every number in
TRAJECTORY.md is computed the same way.

Conventions (kept deliberately boring so fixtures can be hand-checked):

* ``median`` — the usual midpoint rule (mean of the two central values
  for even ``n``);
* quartiles — the *inclusive* linear-interpolation rule
  (``statistics.quantiles(..., method="inclusive")``), i.e. Q1 of
  ``[1, 2, 3, 4]`` is 1.75;
* ``stddev`` — the **sample** standard deviation (``n - 1`` divisor),
  0.0 for fewer than two values;
* ``percentile(p)`` — nearest-rank with linear interpolation between
  the two neighbouring order statistics, so ``percentile(50)`` equals
  ``median`` exactly.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Summary", "geomean", "percentile", "summarize"]


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile {p} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = p / 100.0 * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; every value must be positive."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass(frozen=True)
class Summary:
    """Distribution summary of one measured metric."""

    count: int
    mean: float
    median: float
    stddev: float
    min: float
    max: float
    q1: float
    q3: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "Summary":
        if not values:
            raise ValueError("cannot summarize an empty sequence")
        vals = [float(v) for v in values]
        if len(vals) == 1:
            v = vals[0]
            return cls(1, v, v, 0.0, v, v, v, v)
        q1, _, q3 = statistics.quantiles(vals, n=4, method="inclusive")
        return cls(
            count=len(vals),
            mean=statistics.fmean(vals),
            median=statistics.median(vals),
            stddev=statistics.stdev(vals),
            min=min(vals),
            max=max(vals),
            q1=q1,
            q3=q3,
        )

    def to_dict(self, digits: int = 6) -> dict:
        doc = {
            "count": self.count,
            "mean": round(self.mean, digits),
            "median": round(self.median, digits),
            "stddev": round(self.stddev, digits),
            "iqr": round(self.iqr, digits),
            "min": round(self.min, digits),
            "max": round(self.max, digits),
            "q1": round(self.q1, digits),
            "q3": round(self.q3, digits),
        }
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "Summary":
        return cls(
            count=int(doc["count"]),
            mean=float(doc["mean"]),
            median=float(doc["median"]),
            stddev=float(doc["stddev"]),
            min=float(doc["min"]),
            max=float(doc["max"]),
            q1=float(doc["q1"]),
            q3=float(doc["q3"]),
        )


def summarize(values: Sequence[float]) -> Summary:
    """Shorthand for :meth:`Summary.from_values`."""
    return Summary.from_values(values)
