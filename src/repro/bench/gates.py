"""Regression gates: declared thresholds over report metrics.

A gate names a metric in a :class:`~repro.bench.report.Report` — either
a statistical summary over a path (``path.metric`` with a ``stat`` and
optional ``profile`` restriction) or a scalar fact recorded by the
runner (``fact:key``) — an operator, and a threshold.  Baseline files
(committed under ``benchmarks/baselines/``) carry a list of gates plus
a ``why`` string tying each threshold to its TRAJECTORY.md entry, so a
number in CI is never an orphan.

Exit-code contract (enforced by the ``repro-bench`` CLI and asserted by
``tests/bench/test_gates.py``):

* ``0`` — every gate passed;
* ``1`` — at least one gate failed (a measured regression);
* ``2`` — the gates could not be evaluated (unknown metric, malformed
  baseline file): a broken harness must not masquerade as a pass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from .report import Report

__all__ = ["Gate", "GateError", "GateResult", "evaluate", "load_gates"]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2

_OPS = {
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    "==": lambda a, b: a == b,
}

_STATS = ("median", "mean", "stddev", "iqr", "min", "max", "q1", "q3", "count")


class GateError(Exception):
    """The gate could not be evaluated against this report."""


@dataclass(frozen=True)
class Gate:
    """One declared threshold."""

    #: report path the metric lives on, or the literal ``"fact"``
    path: str
    #: metric name (``warm_speedup``) or fact key (``facts["..."]``)
    metric: str
    op: str
    value: float
    #: summary statistic to compare (ignored for facts)
    stat: str = "median"
    #: restrict to one profile class; ``None`` = all programs
    profile: Optional[str] = None
    #: provenance, e.g. "TRAJECTORY.md 2026-08-06: warm suite ~5x"
    why: str = ""

    @property
    def name(self) -> str:
        prof = f"[{self.profile}]" if self.profile else ""
        stat = f".{self.stat}" if self.path != "fact" else ""
        return f"{self.path}.{self.metric}{prof}{stat}"

    def measure(self, report: Report) -> float:
        if self.op not in _OPS:
            raise GateError(f"{self.name}: unknown operator {self.op!r}")
        if self.path == "fact":
            try:
                value = report.facts[self.metric]
            except KeyError:
                raise GateError(
                    f"{self.name}: fact {self.metric!r} not in report"
                ) from None
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise GateError(f"{self.name}: fact {self.metric!r} is not numeric")
            return float(value)
        if self.stat not in _STATS:
            raise GateError(f"{self.name}: unknown stat {self.stat!r}")
        if self.profile is None:
            summary = report.overall_summary(self.path, self.metric)
        else:
            summary = report.profile_summary(self.path, self.metric).get(self.profile)
        if summary is None:
            raise GateError(
                f"{self.name}: no measurements for {self.path}/{self.metric}"
                + (f" profile {self.profile}" if self.profile else "")
            )
        return float(getattr(summary, self.stat))


@dataclass(frozen=True)
class GateResult:
    gate: Gate
    measured: float
    passed: bool

    def to_dict(self) -> dict:
        return {
            "name": self.gate.name,
            "op": self.gate.op,
            "value": self.gate.value,
            "measured": round(self.measured, 6),
            "passed": self.passed,
            "why": self.gate.why,
        }


def evaluate(report: Report, gates: list[Gate]) -> list[GateResult]:
    """Evaluate every gate; raises :class:`GateError` if any gate cannot
    be measured (the CLI maps that to exit code 2, not a pass)."""
    results = []
    for gate in gates:
        measured = gate.measure(report)
        results.append(
            GateResult(gate, measured, _OPS[gate.op](measured, gate.value))
        )
    return results


def load_gates(path: str) -> tuple[str, list[Gate]]:
    """Load a baseline file; returns ``(set_name, gates)``."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise GateError(f"cannot load baseline {path}: {exc}") from exc
    try:
        gates = [
            Gate(
                path=g["path"],
                metric=g["metric"],
                op=g["op"],
                value=float(g["value"]),
                stat=g.get("stat", "median"),
                profile=g.get("profile"),
                why=g.get("why", ""),
            )
            for g in doc["gates"]
        ]
        return doc["set"], gates
    except (KeyError, TypeError, ValueError) as exc:
        raise GateError(f"malformed baseline {path}: {exc}") from exc
