"""Measurement collection and rendering for benchmark runs.

A :class:`Report` is a flat bag of :class:`Measurement` rows — one per
``(path, program, metric)`` with the raw per-iteration values — plus
enough set metadata (name, digests, iteration counts) to make the run
reproducible.  Aggregation (per-profile medians and spread) is computed
*from* the rows, never stored separately, so the four output modes can
not drift apart:

* ``brief`` — one line per path with the headline medians;
* ``full``  — per-profile tables with median, IQR, and stddev;
* ``csv``   — one row per measurement with its summary statistics;
* ``json``  — full fidelity (raw values included), round-trippable via
  :meth:`Report.from_json`.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .stats import Summary

__all__ = ["Measurement", "Report"]

#: schema tag written into every JSON report
SCHEMA = "repro-bench/v1"


@dataclass(frozen=True)
class Measurement:
    """Raw values of one metric for one program on one path."""

    path: str
    program: str
    profile: str
    metric: str
    values: tuple[float, ...]

    @property
    def summary(self) -> Summary:
        return Summary.from_values(self.values)


@dataclass
class Report:
    """One benchmark run over one named workload set."""

    set_name: str
    set_digest: str
    iterations: int
    warmup: int
    program_digests: dict[str, str] = field(default_factory=dict)
    measurements: list[Measurement] = field(default_factory=list)
    #: non-statistical facts (cache states, invalidation sets, failures)
    facts: dict = field(default_factory=dict)
    #: gate evaluation results, attached by the runner when gating
    gates: list[dict] = field(default_factory=list)

    # -- collection --------------------------------------------------------

    def add(
        self,
        path: str,
        program: str,
        profile: str,
        metric: str,
        values: Sequence[float],
    ) -> None:
        if not values:
            raise ValueError(f"no values for {path}/{program}/{metric}")
        self.measurements.append(
            Measurement(path, program, profile, metric, tuple(float(v) for v in values))
        )

    # -- queries -----------------------------------------------------------

    def paths(self) -> list[str]:
        return sorted({m.path for m in self.measurements})

    def metrics(self, path: str) -> list[str]:
        return sorted({m.metric for m in self.measurements if m.path == path})

    def rows(self, path: str, metric: str) -> list[Measurement]:
        return [
            m for m in self.measurements if m.path == path and m.metric == metric
        ]

    def profile_summary(self, path: str, metric: str) -> dict[str, Summary]:
        """Per-profile spread of the per-program **medians** — the
        program population is the sample, not the repeated iterations."""
        by_profile: dict[str, list[float]] = {}
        for m in self.rows(path, metric):
            by_profile.setdefault(m.profile, []).append(m.summary.median)
        return {
            prof: Summary.from_values(vals)
            for prof, vals in sorted(by_profile.items())
        }

    def overall_summary(self, path: str, metric: str) -> Optional[Summary]:
        vals = [m.summary.median for m in self.rows(path, metric)]
        return Summary.from_values(vals) if vals else None

    # -- rendering ---------------------------------------------------------

    def render_brief(self) -> str:
        lines = [
            f"set {self.set_name} ({len(self.program_digests)} programs, "
            f"digest {self.set_digest[:12]}…, {self.iterations} iterations"
            f" + {self.warmup} warmup)"
        ]
        for path in self.paths():
            parts = []
            for metric in self.metrics(path):
                s = self.overall_summary(path, metric)
                if s is not None:
                    parts.append(f"{metric} median {s.median:.6g} (iqr {s.iqr:.3g})")
            lines.append(f"  {path}: " + "; ".join(parts))
        for gate in self.gates:
            mark = "PASS" if gate["passed"] else "FAIL"
            lines.append(
                f"  gate {mark} {gate['name']}: measured {gate['measured']} "
                f"{gate['op']} {gate['value']}"
            )
        return "\n".join(lines)

    def render_full(self) -> str:
        out = [self.render_brief(), ""]
        for path in self.paths():
            for metric in self.metrics(path):
                out.append(f"[{path}] {metric} — per profile (program medians)")
                out.append(
                    f"  {'profile':<10} {'n':>4} {'median':>12} {'iqr':>12} "
                    f"{'stddev':>12} {'min':>12} {'max':>12}"
                )
                for prof, s in self.profile_summary(path, metric).items():
                    out.append(
                        f"  {prof:<10} {s.count:>4} {s.median:>12.6g} "
                        f"{s.iqr:>12.6g} {s.stddev:>12.6g} "
                        f"{s.min:>12.6g} {s.max:>12.6g}"
                    )
                out.append("")
        return "\n".join(out)

    _CSV_FIELDS = [
        "set", "path", "program", "profile", "metric",
        "count", "mean", "median", "stddev", "iqr", "min", "max", "q1", "q3",
    ]

    def render_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self._CSV_FIELDS)
        writer.writeheader()
        for m in self.measurements:
            s = m.summary
            writer.writerow(
                {
                    "set": self.set_name,
                    "path": m.path,
                    "program": m.program,
                    "profile": m.profile,
                    "metric": m.metric,
                    **s.to_dict(digits=9),
                }
            )
        return buf.getvalue()

    @classmethod
    def summaries_from_csv(cls, text: str) -> list[dict]:
        """Parse a :meth:`render_csv` document back into row dicts with
        typed summary fields (CSV carries summaries, not raw values)."""
        rows = []
        for row in csv.DictReader(io.StringIO(text)):
            parsed = dict(row)
            parsed["count"] = int(row["count"])
            for k in ("mean", "median", "stddev", "iqr", "min", "max", "q1", "q3"):
                parsed[k] = float(row[k])
            rows.append(parsed)
        return rows

    # -- JSON round trip ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "set": self.set_name,
            "set_digest": self.set_digest,
            "iterations": self.iterations,
            "warmup": self.warmup,
            "program_digests": dict(sorted(self.program_digests.items())),
            "measurements": [
                {
                    "path": m.path,
                    "program": m.program,
                    "profile": m.profile,
                    "metric": m.metric,
                    "values": list(m.values),
                    "summary": m.summary.to_dict(digits=9),
                }
                for m in self.measurements
            ],
            "profiles": {
                path: {
                    metric: {
                        prof: s.to_dict(digits=9)
                        for prof, s in self.profile_summary(path, metric).items()
                    }
                    for metric in self.metrics(path)
                }
                for path in self.paths()
            },
            "facts": self.facts,
            "gates": self.gates,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_dict(cls, doc: dict) -> "Report":
        if doc.get("schema") != SCHEMA:
            raise ValueError(f"unknown report schema {doc.get('schema')!r}")
        report = cls(
            set_name=doc["set"],
            set_digest=doc["set_digest"],
            iterations=doc["iterations"],
            warmup=doc["warmup"],
            program_digests=dict(doc.get("program_digests", {})),
            facts=doc.get("facts", {}),
            gates=list(doc.get("gates", [])),
        )
        for m in doc["measurements"]:
            report.add(m["path"], m["program"], m["profile"], m["metric"], m["values"])
        return report

    @classmethod
    def from_json(cls, text: str) -> "Report":
        return cls.from_dict(json.loads(text))
