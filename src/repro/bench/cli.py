"""``repro-bench`` — run a named workload set and gate on baselines.

Examples::

    repro-bench --list
    repro-bench --set quick-v1 --out BENCH_quick.json
    repro-bench --set suite-v1 --format full --iterations 5
    repro-bench --set quick-v1 --gate            # CI regression gate
    repro-bench --verify-manifests               # digest reproducibility

Exit codes: ``0`` success / all gates pass, ``1`` gate regression or
manifest mismatch, ``2`` usage or evaluation error (see
:mod:`repro.bench.gates`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from . import gates as gates_mod
from . import registry
from .runner import PATHS, WPA_BENCH_JOBS, run_set

#: default location of committed baseline files, relative to the
#: repository root (where CI invokes the CLI from)
BASELINE_DIR = Path("benchmarks") / "baselines"


def _default_baseline(set_name: str) -> Path:
    return BASELINE_DIR / f"{set_name}.json"


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run a named, versioned benchmark set through the "
        "session / incremental / serve paths with statistical reporting "
        "and regression gates.",
    )
    parser.add_argument("--set", dest="set_name", metavar="NAME",
                        help="workload set to run (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list registered workload sets and exit")
    parser.add_argument("--verify-manifests", action="store_true",
                        help="regenerate every set and verify the pinned "
                        "source digests; exit 1 on any mismatch")
    parser.add_argument("--iterations", type=int, default=3, metavar="N",
                        help="timed iterations per measurement (default %(default)s)")
    parser.add_argument("--warmup", type=int, default=1, metavar="N",
                        help="discarded warmup iterations (default %(default)s)")
    parser.add_argument("--paths", default=",".join(PATHS), metavar="P1,P2",
                        help="comma-separated compilation paths to exercise "
                        f"(default: %(default)s; choices: {', '.join(PATHS)})")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the wpa path's partitioned "
                        "arm (default: 4, clamped to the machine)")
    parser.add_argument("--server", default=None, metavar="HOST:PORT",
                        help="route the serve path through a live repro-serve "
                        "daemon (default: in-process fallback)")
    parser.add_argument("--format", default="brief",
                        choices=("brief", "full", "csv", "json"),
                        help="stdout rendering (default %(default)s)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the full JSON report to PATH")
    parser.add_argument("--gate", nargs="?", const="", default=None,
                        metavar="BASELINE",
                        help="evaluate regression gates from BASELINE (default: "
                        "benchmarks/baselines/<set>.json); exit 1 on regression")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-program progress lines")
    args = parser.parse_args(argv)

    if args.list:
        for name in registry.set_names():
            s = registry.get_set(name)
            progs = registry.materialize(name)
            print(f"{name:<18} {len(progs):>4} programs  "
                  f"[{', '.join(s.profiles)}]  {s.description}")
        return 0

    if args.verify_manifests:
        failures = 0
        for name in registry.set_names():
            problems = registry.verify_manifest(name)
            status = "reproducible" if not problems else "MISMATCH"
            print(f"{name}: {status}")
            for p in problems:
                print(f"  {p}")
            failures += len(problems)
        return gates_mod.EXIT_REGRESSION if failures else gates_mod.EXIT_OK

    if not args.set_name:
        parser.error("--set NAME required (or --list / --verify-manifests)")
    if args.iterations < 1 or args.warmup < 0:
        parser.error("--iterations must be >= 1 and --warmup >= 0")

    paths = tuple(p.strip() for p in args.paths.split(",") if p.strip())
    try:
        registry.get_set(args.set_name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return gates_mod.EXIT_ERROR

    progress = None if args.quiet else (
        lambda msg: print(f"  {msg}", file=sys.stderr, flush=True)
    )
    try:
        report = run_set(
            args.set_name,
            iterations=args.iterations,
            warmup=args.warmup,
            paths=paths,
            server=args.server,
            progress=progress,
            wpa_jobs=args.jobs if args.jobs is not None else WPA_BENCH_JOBS,
        )
    except (ValueError, RuntimeError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return gates_mod.EXIT_ERROR

    exit_code = gates_mod.EXIT_OK
    if args.gate is not None:
        baseline = args.gate or str(_default_baseline(args.set_name))
        try:
            gate_set, gate_list = gates_mod.load_gates(baseline)
            if gate_set != report.set_name:
                raise gates_mod.GateError(
                    f"baseline {baseline} is for set {gate_set!r}, "
                    f"not {report.set_name!r}"
                )
            results = gates_mod.evaluate(report, gate_list)
        except gates_mod.GateError as exc:
            print(f"repro-bench: {exc}", file=sys.stderr)
            return gates_mod.EXIT_ERROR
        report.gates = [r.to_dict() for r in results]
        if any(not r.passed for r in results):
            exit_code = gates_mod.EXIT_REGRESSION

    if args.out:
        Path(args.out).write_text(report.to_json())

    if args.format == "brief":
        print(report.render_brief())
    elif args.format == "full":
        print(report.render_full())
    elif args.format == "csv":
        sys.stdout.write(report.render_csv())
    else:
        sys.stdout.write(report.to_json())

    if args.gate is not None:
        failed = [g for g in report.gates if not g["passed"]]
        if failed:
            print(f"\nrepro-bench: {len(failed)} gate(s) FAILED", file=sys.stderr)
        else:
            print(f"\nrepro-bench: all {len(report.gates)} gate(s) pass",
                  file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
