"""SPEC-style workload registry, statistical benchmarking, and gates.

Four layers, consumed together by the ``repro-bench`` CLI:

* :mod:`repro.bench.registry` — named, versioned workload sets with
  pinned seeds and a source-digest manifest;
* :mod:`repro.bench.stats` — one implementation of median / IQR /
  percentile math for every reporter in the repo;
* :mod:`repro.bench.report` — measurement collection with per-profile
  breakdowns and brief/full/CSV/JSON rendering;
* :mod:`repro.bench.gates` — declared regression thresholds keyed to
  TRAJECTORY.md baselines, with a CI-friendly exit-code contract.

See docs/BENCHMARKING.md for the workflow.
"""

from .gates import Gate, GateError, GateResult, evaluate, load_gates
from .registry import (
    PROFILES,
    REGISTRY,
    WorkloadProgram,
    WorkloadSet,
    get_set,
    materialize,
    program_digests,
    set_digest,
    set_names,
    suite_specs,
    verify_manifest,
    write_manifests,
)
from .report import Measurement, Report
from .stats import Summary, geomean, percentile, summarize
from .runner import PATHS, run_set

__all__ = [
    "Gate",
    "GateError",
    "GateResult",
    "Measurement",
    "PATHS",
    "PROFILES",
    "REGISTRY",
    "Report",
    "Summary",
    "WorkloadProgram",
    "WorkloadSet",
    "evaluate",
    "geomean",
    "get_set",
    "load_gates",
    "materialize",
    "percentile",
    "program_digests",
    "run_set",
    "set_digest",
    "set_names",
    "suite_specs",
    "summarize",
    "verify_manifest",
    "write_manifests",
]
