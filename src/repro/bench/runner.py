"""Run a registry workload set through the compilation paths.

For every program in a named set the runner measures, with N timed
iterations after W discarded warmup iterations:

* **session** — cold compile latency (fresh
  :class:`~repro.driver.session.CompilationSession` per observation),
  warm compile latency against a populated session, the warm/cold
  speedup, and the DDG edge-reduction percentage (the paper's headline
  precision claim, now characterized per profile class instead of per
  anecdote).  Multi-unit programs go through
  :func:`~repro.driver.wpa.compile_whole_program` twice (linked vs
  per-file) and report the cross-module edge deletion and link
  overhead; the two images must agree semantically or the run aborts —
  the bench refuses to report numbers for an unsound configuration.
* **incremental** — edit-one-function rebuild latency: a
  line-count-preserving edit to ``main`` against a warm session, with
  the invalidation invariant (back-end re-runs *exactly* ``main``)
  checked every iteration.
* **serve** — request latency through a
  :class:`~repro.serve.client.RemoteSession` (a live ``repro-serve``
  daemon when ``server`` is given, the in-process fallback otherwise,
  so the path always completes).
* **decode** — codec throughput per blob kind: the hand-packed RTL
  function codec, the generic :mod:`repro.binfmt` object graph (the
  serve wire payload), and the linker's persisted summary table, each
  verified on every decode (the ``decode-v1`` microbenchmark).
* **wpa** — partitioned parallel whole-program back end: cold serial
  (``jobs=1``) vs cold partitioned (``jobs=N, partition=balanced``)
  latency per multi-unit program, the resulting ``parallel_speedup``,
  and a hard parity oracle — alpha-equivalent per-unit RTL, equal
  ``DepStats``, and an alpha-equivalent merged image — rolled up into
  the ``wpa.parity_ok`` fact (the ``wpa-v1`` regression gate).

Everything lands in a :class:`~repro.bench.report.Report`; regression
gates from a committed baseline file are evaluated by the CLI.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

from ..backend.ddg import DDGMode
from ..driver.compile import CompileOptions
from ..driver.session import CompilationSession
from ..obs import metrics
from .registry import WorkloadProgram, get_set, materialize, program_digests, set_digest
from .report import Report

__all__ = ["PATHS", "WPA_BENCH_JOBS", "run_set"]

PATHS = ("session", "incremental", "serve", "decode", "wpa")

#: the deterministic, line-count-preserving edit the incremental path
#: applies: an unused declaration at the head of ``main``'s body, so
#: only ``main``'s local fingerprint changes
_EDIT_ANCHOR = "int main() {"
_EDIT_REPLACEMENT = "int main() { int zzbench0;"


def _timed(fn: Callable[[], object]) -> tuple[float, object]:
    t0 = perf_counter()
    out = fn()
    return perf_counter() - t0, out


def _observe(fn: Callable[[], object], iterations: int, warmup: int):
    """``warmup`` discarded runs, then ``iterations`` timed ones.
    Returns ``(seconds_list, last_result)``."""
    last = None
    for _ in range(warmup):
        last = fn()
    seconds = []
    for _ in range(iterations):
        dt, last = _timed(fn)
        seconds.append(dt)
    return seconds, last


def _options() -> CompileOptions:
    return CompileOptions(mode=DDGMode.COMBINED)


def _reduction_pct(comp) -> float:
    stats = comp.total_dep_stats()
    return 100.0 * stats.reduction


# ---------------------------------------------------------------------------
# session path
# ---------------------------------------------------------------------------

def _session_single(report: Report, prog: WorkloadProgram, n: int, w: int) -> dict:
    fname = prog.units[0][0]

    def cold():
        return CompilationSession().compile(prog.source, fname, _options())

    cold_secs, comp = _observe(cold, n, w)
    metrics.inc("bench.compiles", "cold", n + w)

    sess = CompilationSession()
    sess.compile(prog.source, fname, _options())

    def warm():
        return sess.compile(prog.source, fname, _options())

    warm_secs, warm_comp = _observe(warm, n, w)
    metrics.inc("bench.compiles", "warm", n + w)

    from .stats import Summary

    cold_med = Summary.from_values(cold_secs).median
    warm_med = Summary.from_values(warm_secs).median
    report.add("session", prog.name, prog.profile, "cold_seconds", cold_secs)
    report.add("session", prog.name, prog.profile, "warm_seconds", warm_secs)
    report.add(
        "session", prog.name, prog.profile, "warm_speedup",
        [cold_med / warm_med if warm_med > 0 else float("inf")],
    )
    report.add(
        "session", prog.name, prog.profile, "ddg_reduction_pct",
        [_reduction_pct(comp)],
    )
    return {"warm_hit": warm_comp.cache_state in ("memory", "disk")}


def _session_multiunit(report: Report, prog: WorkloadProgram, n: int, w: int) -> dict:
    from ..driver.wpa import compile_whole_program
    from ..machine.executor import execute

    sources = list(prog.units)
    opts = _options()

    def wp():
        return compile_whole_program(sources, opts, whole_program=True)

    def pf():
        return compile_whole_program(sources, opts, whole_program=False)

    wp_secs, wp_res = _observe(wp, n, w)
    pf_secs, pf_res = _observe(pf, n, w)
    metrics.inc("bench.compiles", "whole_program", 2 * (n + w))

    run_wp = execute(wp_res.image, collect_trace=False)
    run_pf = execute(pf_res.image, collect_trace=False)
    agree = run_wp.ret == run_pf.ret and list(run_wp.output) == list(run_pf.output)
    if not agree:
        raise RuntimeError(
            f"{prog.name}: whole-program image diverges from per-file baseline"
        )
    s_wp, s_pf = wp_res.total_dep_stats(), pf_res.total_dep_stats()
    deleted_pct = (
        100.0 * (s_pf.call_dep - s_wp.call_dep) / s_pf.call_dep
        if s_pf.call_dep
        else 0.0
    )
    report.add("session", prog.name, prog.profile, "wp_seconds", wp_secs)
    report.add("session", prog.name, prog.profile, "pf_seconds", pf_secs)
    report.add(
        "session", prog.name, prog.profile, "wp_edges_deleted_pct", [deleted_pct]
    )
    return {"wp_agree": agree}


# ---------------------------------------------------------------------------
# incremental path
# ---------------------------------------------------------------------------

def _incremental(report: Report, prog: WorkloadProgram, n: int, w: int) -> dict:
    fname = prog.units[0][0]
    base = prog.source
    edited = base.replace(_EDIT_ANCHOR, _EDIT_REPLACEMENT, 1)

    recompiled_ok = True

    def rebuild():
        nonlocal recompiled_ok
        sess = CompilationSession()
        sess.compile(base, fname, _options())
        dt, comp = _timed(lambda: sess.compile(edited, fname, _options()))
        ran: set[str] = set()
        for units in comp.pipeline_stats.function_runs.values():
            ran |= set(units)
        if ran != {"main"}:
            recompiled_ok = False
        return dt

    # the session setup dominates wall time, so time inside the closure
    secs = []
    for _ in range(w):
        rebuild()
    for _ in range(n):
        secs.append(rebuild())
    metrics.inc("bench.compiles", "incremental", n + w)
    report.add("incremental", prog.name, prog.profile, "rebuild_seconds", secs)
    return {"exact_invalidation": recompiled_ok}


# ---------------------------------------------------------------------------
# serve path
# ---------------------------------------------------------------------------

def _serve(
    report: Report,
    progs: list[WorkloadProgram],
    n: int,
    w: int,
    server: Optional[str],
) -> dict:
    from ..serve.client import RemoteSession

    fallback = CompilationSession()
    # with no daemon given, point at a closed port: the first request
    # fails fast and every compile rides the in-process fallback, so
    # the path is always runnable (CI has no daemon)
    session = RemoteSession(server or "127.0.0.1:1", fallback=fallback)
    for prog in progs:
        if prog.multi_unit:
            continue
        fname = prog.units[0][0]

        def request():
            return session.compile(prog.source, fname, _options())

        secs, _ = _observe(request, n, w)
        metrics.inc("bench.compiles", "serve", n + w)
        report.add("serve", prog.name, prog.profile, "request_seconds", secs)
    return {
        "remote_compiles": session.remote_compiles,
        "fallback_compiles": session.fallback_compiles,
        "using_remote": session.using_remote,
    }


# ---------------------------------------------------------------------------
# decode path
# ---------------------------------------------------------------------------

def _decode(report: Report, progs: list[WorkloadProgram], n: int, w: int) -> dict:
    """Codec throughput per blob kind (the ``decode-v1`` microbenchmark).

    Measures, for every single-unit program, the encode and decode cost
    of the two blob kinds the warm path lives on — the hand-packed RTL
    function codec (per-function cache blobs) and the generic
    :mod:`repro.binfmt` object graph (the serve wire's full
    ``Compilation`` payload) — plus, for multi-unit programs, the
    linker's persisted summary table.  Each observation covers the whole
    program (all functions), so medians track suite-shaped work, not
    single-blob micronoise.  Every decode is verified against the
    encoded original's shape; a mismatch fails the run via the
    ``decode.roundtrip_ok`` fact.
    """
    from .. import binfmt
    from ..binfmt.rtlcodec import decode_rtl_function, encode_rtl_function
    from ..driver.compile import compile_source
    from ..frontend import parse_and_check
    from ..linker import analyze_unit, compute_summaries
    from ..linker.persist import decode_summaries, encode_summaries

    ok = True
    total_blob_bytes = 0
    for prog in progs:
        if prog.multi_unit:
            units = []
            for fname, source in prog.units:
                program, table = parse_and_check(source, fname)
                units.append(analyze_unit(program, table, filename=fname))
            result = compute_summaries(units)
            enc_secs, blob = _observe(lambda: encode_summaries(result, "bench"), n, w)
            dec_secs, back = _observe(lambda: decode_summaries(blob), n, w)
            ok &= sorted(back[1].summaries) == sorted(result.summaries)
            total_blob_bytes += len(blob)
            report.add(
                "decode", prog.name, prog.profile, "summary_encode_seconds", enc_secs
            )
            report.add(
                "decode", prog.name, prog.profile, "summary_decode_seconds", dec_secs
            )
            continue

        comp = compile_source(prog.source, prog.units[0][0], _options())
        fns = list(comp.rtl.functions.values())

        def rtl_encode():
            return [encode_rtl_function(fn) for fn in fns]

        enc_secs, blobs = _observe(rtl_encode, n, w)
        dec_secs, decoded = _observe(
            lambda: [decode_rtl_function(b) for b in blobs], n, w
        )
        ok &= [f.name for f in decoded] == [f.name for f in fns]
        ok &= all(
            len(a.insns) == len(b.insns) for a, b in zip(decoded, fns)
        )
        total_blob_bytes += sum(len(b) for b in blobs)
        report.add("decode", prog.name, prog.profile, "rtl_encode_seconds", enc_secs)
        report.add("decode", prog.name, prog.profile, "rtl_decode_seconds", dec_secs)

        obj_enc_secs, obj_blob = _observe(lambda: binfmt.encode(comp), n, w)
        obj_dec_secs, obj_back = _observe(lambda: binfmt.decode(obj_blob), n, w)
        ok &= sorted(obj_back.rtl.functions) == sorted(comp.rtl.functions)
        total_blob_bytes += len(obj_blob)
        report.add(
            "decode", prog.name, prog.profile, "object_encode_seconds", obj_enc_secs
        )
        report.add(
            "decode", prog.name, prog.profile, "object_decode_seconds", obj_dec_secs
        )
    metrics.inc("bench.compiles", "decode", len(progs))
    return {"roundtrip_ok": ok, "blob_bytes": total_blob_bytes}


# ---------------------------------------------------------------------------
# wpa path
# ---------------------------------------------------------------------------

#: worker count the partitioned observation requests; on a small CI box
#: :func:`~repro.driver.session.resolve_workers` clamps this to the
#: machine, so the measurement stays honest rather than oversubscribed
WPA_BENCH_JOBS = 4


def _wpa(report: Report, prog: WorkloadProgram, n: int, w: int, jobs: int) -> dict:
    """Cold serial vs cold partitioned whole-program compile + parity oracle."""
    from ..difftest.incremental import canonical_rtl
    from ..driver.wpa import compile_whole_program

    sources = list(prog.units)
    opts = _options()

    # a fresh memory-only session per observation keeps both arms cold;
    # the partitioned arm still exercises the cross-partition cache path
    # because workers share nothing and ship results back to the parent
    def serial():
        return compile_whole_program(
            sources, opts, session=CompilationSession(), jobs=1, partition="none"
        )

    def partitioned():
        return compile_whole_program(
            sources, opts, session=CompilationSession(),
            jobs=jobs, partition="balanced",
        )

    serial_secs, s_res = _observe(serial, n, w)
    par_secs, p_res = _observe(partitioned, n, w)
    metrics.inc("bench.compiles", "wpa", 2 * (n + w))

    parity = (
        list(s_res.units) == list(p_res.units)
        and all(
            canonical_rtl(s_res.units[f].rtl) == canonical_rtl(p_res.units[f].rtl)
            for f in s_res.units
        )
        and s_res.total_dep_stats() == p_res.total_dep_stats()
        and canonical_rtl(s_res.image) == canonical_rtl(p_res.image)
    )

    from .stats import Summary

    s_med = Summary.from_values(serial_secs).median
    p_med = Summary.from_values(par_secs).median
    plan = p_res.partition_plan
    report.add("wpa", prog.name, prog.profile, "serial_seconds", serial_secs)
    report.add("wpa", prog.name, prog.profile, "partitioned_seconds", par_secs)
    report.add(
        "wpa", prog.name, prog.profile, "parallel_speedup",
        [s_med / p_med if p_med > 0 else float("inf")],
    )
    report.add(
        "wpa", prog.name, prog.profile, "partition_skew",
        [plan.skew if plan is not None else 1.0],
    )
    return {
        "parity": parity,
        "partitions": plan.n_partitions if plan is not None else 1,
    }


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_set(
    name: str,
    iterations: int = 3,
    warmup: int = 1,
    paths: tuple[str, ...] = PATHS,
    server: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    wpa_jobs: int = WPA_BENCH_JOBS,
) -> Report:
    """Run workload set ``name`` and return the populated report."""
    unknown = [p for p in paths if p not in PATHS]
    if unknown:
        raise ValueError(f"unknown paths {unknown}; choose from {PATHS}")
    workload_set = get_set(name)
    progs = list(materialize(name))
    report = Report(
        set_name=workload_set.full_name,
        set_digest=set_digest(name),
        iterations=iterations,
        warmup=warmup,
        program_digests=program_digests(name),
    )
    metrics.inc("bench.sets_run")
    say = progress or (lambda _msg: None)

    if "session" in paths:
        hits = 0
        eligible = 0
        wp_agree = 0
        wp_total = 0
        for prog in progs:
            say(f"session: {prog.name}")
            if prog.multi_unit:
                facts = _session_multiunit(report, prog, iterations, warmup)
                wp_total += 1
                wp_agree += bool(facts["wp_agree"])
            else:
                facts = _session_single(report, prog, iterations, warmup)
                eligible += 1
                hits += bool(facts["warm_hit"])
        if eligible:
            report.facts["session.warm_hit_ratio"] = hits / eligible
        if wp_total:
            report.facts["session.wp_agree_ratio"] = wp_agree / wp_total

    if "incremental" in paths:
        exact = 0
        eligible = 0
        for prog in progs:
            if prog.multi_unit or _EDIT_ANCHOR not in prog.source:
                continue
            say(f"incremental: {prog.name}")
            facts = _incremental(report, prog, iterations, warmup)
            eligible += 1
            exact += bool(facts["exact_invalidation"])
        if eligible:
            report.facts["incremental.exact_invalidation"] = exact / eligible

    if "serve" in paths:
        say("serve: all programs")
        facts = _serve(report, progs, iterations, warmup, server)
        report.facts["serve.remote_compiles"] = facts["remote_compiles"]
        report.facts["serve.fallback_compiles"] = facts["fallback_compiles"]
        report.facts["serve.using_remote"] = facts["using_remote"]

    if "decode" in paths:
        say("decode: all programs")
        facts = _decode(report, progs, iterations, warmup)
        report.facts["decode.roundtrip_ok"] = float(facts["roundtrip_ok"])
        report.facts["decode.blob_bytes"] = facts["blob_bytes"]

    if "wpa" in paths:
        parity_ok = 0
        wpa_total = 0
        partitions = 0
        for prog in progs:
            if not prog.multi_unit:
                continue
            say(f"wpa: {prog.name}")
            facts = _wpa(report, prog, iterations, warmup, wpa_jobs)
            wpa_total += 1
            parity_ok += bool(facts["parity"])
            partitions += facts["partitions"]
        if wpa_total:
            report.facts["wpa.parity_ok"] = parity_ok / wpa_total
            report.facts["wpa.partitions"] = partitions

    report.facts["programs"] = len(progs)
    metrics.add("bench.programs_measured", len(progs))
    return report
