"""Machine timing models: functional executor plus R4600/R10000 analogs."""

from .executor import ExecResult, ExecutionError, Executor, TraceEvent, execute
from .latencies import r4600_latency, r10000_latency
from .pipeline import R4600Model, TimingResult
from .superscalar import R10000Config, R10000Model

__all__ = [
    "ExecResult",
    "ExecutionError",
    "Executor",
    "TraceEvent",
    "execute",
    "r4600_latency",
    "r10000_latency",
    "R4600Model",
    "TimingResult",
    "R10000Config",
    "R10000Model",
]
