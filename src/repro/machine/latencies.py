"""Instruction latency tables for the modelled MIPS-like processors.

Latencies are in cycles from issue to result availability.  The values
follow published R4600 / R10000 figures closely enough to reproduce the
paper's first-order effects: multi-cycle loads create load-use slots the
scheduler can fill, and long floating-point latencies reward overlap.
"""

from __future__ import annotations

from ..backend.rtl import Insn, Opcode

#: R4600 (in-order, single-issue) latencies.
R4600_INT: dict[Opcode, int] = {
    Opcode.LI: 1,
    Opcode.MOVE: 1,
    Opcode.LA: 1,
    Opcode.LOAD: 2,
    Opcode.STORE: 1,
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 8,
    Opcode.DIV: 32,
    Opcode.MOD: 32,
    Opcode.NEG: 1,
    Opcode.NOT: 1,
    Opcode.AND: 1,
    Opcode.OR: 1,
    Opcode.XOR: 1,
    Opcode.SHL: 1,
    Opcode.SHR: 1,
    Opcode.SLT: 1,
    Opcode.SLE: 1,
    Opcode.SEQ: 1,
    Opcode.SNE: 1,
    Opcode.CVT_IF: 4,
    Opcode.CVT_FI: 4,
    Opcode.J: 1,
    Opcode.BEQZ: 1,
    Opcode.BNEZ: 1,
    Opcode.CALL: 2,
    Opcode.RET: 1,
    Opcode.LABEL: 0,
    Opcode.NOP: 1,
}

R4600_FLOAT: dict[Opcode, int] = {
    Opcode.ADD: 4,
    Opcode.SUB: 4,
    Opcode.MUL: 8,
    Opcode.DIV: 32,
    Opcode.NEG: 2,
    Opcode.MOVE: 1,
    Opcode.LOAD: 2,
    Opcode.STORE: 1,
    Opcode.LI: 1,
    Opcode.SLT: 2,
    Opcode.SLE: 2,
    Opcode.SEQ: 2,
    Opcode.SNE: 2,
}

#: R10000 (4-issue out-of-order) latencies.
R10000_INT: dict[Opcode, int] = dict(R4600_INT)
R10000_INT.update(
    {
        Opcode.LOAD: 2,
        Opcode.MUL: 6,
        Opcode.DIV: 35,
        Opcode.MOD: 35,
        Opcode.CVT_IF: 3,
        Opcode.CVT_FI: 3,
        Opcode.CALL: 2,
    }
)

R10000_FLOAT: dict[Opcode, int] = dict(R4600_FLOAT)
R10000_FLOAT.update(
    {
        Opcode.ADD: 2,
        Opcode.SUB: 2,
        Opcode.MUL: 2,
        Opcode.DIV: 19,
    }
)


def latency_of(insn: Insn, int_table: dict[Opcode, int], float_table: dict[Opcode, int]) -> int:
    """Latency of one instruction under a machine's tables."""
    if insn.is_float and insn.op in float_table:
        return float_table[insn.op]
    return int_table.get(insn.op, 1)


def r4600_latency(insn: Insn) -> int:
    return latency_of(insn, R4600_INT, R4600_FLOAT)


def r10000_latency(insn: Insn) -> int:
    return latency_of(insn, R10000_INT, R10000_FLOAT)
