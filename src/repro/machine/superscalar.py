"""R10000-like 4-issue out-of-order timing model.

Models the features the paper invokes to explain why the R10000 rewards
HLI-guided scheduling more than the R4600 (Section 4.3):

* 4-wide in-order *fetch* into a reorder window (so the compile-time
  instruction order still matters: it decides when an instruction enters
  the window);
* out-of-order issue within the window once operands are ready;
* a load/store queue in which **a load is not issued to memory until all
  preceding stores in the queue have resolved addresses**, and a load
  that hits a preceding store to the same address waits for (and
  forwards from) that store's data;
* in-order retirement bounded by the window size.

The model times a dynamic trace with actual memory addresses (from the
functional executor), so store-to-load conflicts are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backend.rtl import Opcode
from ..obs import metrics, trace
from .executor import TraceEvent
from .latencies import r10000_latency
from .pipeline import TimingResult

_BRANCHES = {Opcode.J, Opcode.BEQZ, Opcode.BNEZ}


@dataclass
class R10000Config:
    width: int = 4
    window: int = 32
    branch_penalty: int = 2
    store_queue: bool = True


class R10000Model:
    """Windowed out-of-order timing over a dynamic trace."""

    name = "R10000"

    def __init__(self, config: R10000Config | None = None, cache=None) -> None:
        self.config = config or R10000Config()
        #: optional MemoryHierarchy adding cache-miss penalties
        self.cache = cache

    def time(self, events: list[TraceEvent]) -> TimingResult:
        with trace.span("machine.time", machine=self.name):
            result = self._time(events)
        if metrics.is_enabled():
            metrics.add("machine.cycles.r10000", result.cycles)
            metrics.add("machine.insns.r10000", result.instructions)
        return result

    def _time(self, trace: list[TraceEvent]) -> TimingResult:
        cfg = self.config
        cache = self.cache
        if cache is not None:
            cache.reset()
        ready: dict[int, int] = {}
        #: completion cycles of the instructions currently in the window
        window: list[int] = []
        #: pending stores in the window: (addr, addr_ready, data_ready)
        stores: list[tuple[int, int, int]] = []
        fetch_cycle = 0
        fetched_this_cycle = 0
        clock_last_retire = 0
        count = 0
        for ev in trace:
            insn = ev.insn
            op = insn.op
            if op is Opcode.LABEL:
                continue
            count += 1
            # ---- fetch: 4-wide, in-order, window-limited -------------------
            if fetched_this_cycle >= cfg.width:
                fetch_cycle += 1
                fetched_this_cycle = 0
            if len(window) >= cfg.window:
                # stall fetch until the oldest instruction retires
                oldest = window.pop(0)
                if oldest > fetch_cycle:
                    fetch_cycle = oldest
                    fetched_this_cycle = 0
            fetched_this_cycle += 1

            # ---- issue ------------------------------------------------------
            issue = fetch_cycle + 1
            for src in insn.src_regs():
                t = ready.get(src.rid, 0)
                if t > issue:
                    issue = t
            lat = r10000_latency(insn)
            if cache is not None and insn.mem is not None and ev.addr is not None:
                lat += cache.penalty(ev.addr)

            if op is Opcode.LOAD and cfg.store_queue:
                # The load waits until all preceding stores have resolved
                # addresses; a same-address store additionally forwards data.
                for s_addr, s_aready, s_dready in stores:
                    if s_aready > issue:
                        issue = s_aready
                    if ev.addr is not None and s_addr == ev.addr and s_dready > issue:
                        issue = s_dready
            complete = issue + lat
            if op is Opcode.STORE:
                addr_ready = issue
                data_ready = issue + 1
                stores.append((ev.addr if ev.addr is not None else -1, addr_ready, data_ready))
                if len(stores) > cfg.window:
                    stores.pop(0)
            elif op is Opcode.CALL:
                # Serialize at call boundaries (the real machine drains the
                # store queue and mispredicts returns often enough).
                stores.clear()
                if clock_last_retire > issue:
                    issue = clock_last_retire
                complete = issue + lat
            elif op in _BRANCHES:
                complete = issue + cfg.branch_penalty

            if insn.dst is not None:
                ready[insn.dst.rid] = complete
            # retire tracking: in-order retirement means completion order
            # can't regress below the previous retire cycle.
            if complete < clock_last_retire:
                complete = clock_last_retire
            clock_last_retire = complete
            window.append(complete)
            # age out stores whose data is long done
            if stores and stores[0][2] <= fetch_cycle - cfg.window:
                stores.pop(0)
        return TimingResult(cycles=clock_last_retire, instructions=count)
