"""Cache hierarchy model (optional extension).

The paper's R10000 host has 32 KB L1 caches and a 2 MB L2; its R4600
host 64 MB of plain DRAM.  The headline speedups in Table 2 are about
*scheduling*, not caching, so the timing models default to a flat
memory — but this module lets the harness add cache-induced stalls for
sensitivity studies (see ``benchmarks/bench_cache_sensitivity.py``).

A classic direct-mapped / set-associative cache with LRU replacement and
a write-allocate, write-back policy, plus a two-level wrapper matching
the paper's R10000 description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int = 32 * 1024
    line_bytes: int = 32
    associativity: int = 2
    hit_cycles: int = 0  # added on top of the pipeline's load latency
    miss_cycles: int = 20  # penalty to the next level / memory

    @property
    def num_sets(self) -> int:
        return max(1, self.size_bytes // (self.line_bytes * self.associativity))


class Cache:
    """One cache level with LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        #: set index -> list of tags, most recently used last
        self._sets: dict[int, list[int]] = {}
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._sets.clear()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Touch ``addr``; returns True on hit."""
        cfg = self.config
        line = addr // cfg.line_bytes
        index = line % cfg.num_sets
        tag = line // cfg.num_sets
        ways = self._sets.get(index)
        if ways is None:
            ways = []
            self._sets[index] = ways
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > cfg.associativity:
            ways.pop(0)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class MemoryHierarchy:
    """L1 + optional L2, as on the paper's R10000 host.

    ``penalty(addr)`` returns the extra cycles this access costs beyond
    the pipeline's base load/store latency.
    """

    l1: Cache = field(default_factory=lambda: Cache(CacheConfig()))
    l2: Optional[Cache] = field(
        default_factory=lambda: Cache(
            CacheConfig(
                size_bytes=2 * 1024 * 1024,
                line_bytes=64,
                associativity=4,
                miss_cycles=60,
            )
        )
    )

    def reset(self) -> None:
        self.l1.reset()
        if self.l2 is not None:
            self.l2.reset()

    def penalty(self, addr: int) -> int:
        if self.l1.access(addr):
            return self.l1.config.hit_cycles
        cost = self.l1.config.miss_cycles
        if self.l2 is not None:
            if not self.l2.access(addr):
                cost += self.l2.config.miss_cycles
        return cost

    def stats(self) -> dict[str, float]:
        out = {
            "l1_accesses": self.l1.accesses,
            "l1_miss_rate": round(self.l1.miss_rate, 4),
        }
        if self.l2 is not None:
            out["l2_accesses"] = self.l2.accesses
            out["l2_miss_rate"] = round(self.l2.miss_rate, 4)
        return out


def r10000_hierarchy() -> MemoryHierarchy:
    """32 KB 2-way L1 + 2 MB unified L2, per the paper's host description."""
    return MemoryHierarchy()


def r4600_hierarchy() -> MemoryHierarchy:
    """16 KB direct-mapped L1, no L2 (the R4600 board had plain DRAM)."""
    return MemoryHierarchy(
        l1=Cache(CacheConfig(size_bytes=16 * 1024, associativity=1, miss_cycles=12)),
        l2=None,
    )
