"""R4600-like in-order pipeline timing model.

The MIPS R4600 is a single-issue, five-stage, in-order pipeline with
interlocked load-use delays.  The model charges:

* one issue slot per instruction (IPC <= 1);
* operand interlocks: an instruction stalls until every source register
  is ready (register results become ready ``latency`` cycles after
  issue);
* a one-cycle taken-branch bubble.

This is exactly the machine behaviour that makes *basic-block
scheduling* profitable: hoisting a load away from its use hides the
load-use slot, which is where the paper's R4600 speedups come from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backend.rtl import Opcode
from ..obs import metrics, trace
from .executor import TraceEvent
from .latencies import r4600_latency

_BRANCHES = {Opcode.J, Opcode.BEQZ, Opcode.BNEZ}


@dataclass
class TimingResult:
    """Outcome of timing one dynamic trace."""

    cycles: int
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class R4600Model:
    """Single-issue in-order timing over a dynamic trace.

    Pass a :class:`~repro.machine.memory.MemoryHierarchy` to add
    cache-miss stalls; the default flat memory isolates the scheduling
    effect the paper measures.
    """

    name = "R4600"

    def __init__(self, branch_penalty: int = 1, cache=None) -> None:
        self.branch_penalty = branch_penalty
        self.cache = cache

    def time(self, events: list[TraceEvent]) -> TimingResult:
        with trace.span("machine.time", machine=self.name):
            result = self._time(events)
        if metrics.is_enabled():
            metrics.add("machine.cycles.r4600", result.cycles)
            metrics.add("machine.insns.r4600", result.instructions)
        return result

    def _time(self, trace: list[TraceEvent]) -> TimingResult:
        ready: dict[int, int] = {}
        clock = 0
        count = 0
        penalty = self.branch_penalty
        cache = self.cache
        if cache is not None:
            cache.reset()
        for ev in trace:
            insn = ev.insn
            op = insn.op
            if op is Opcode.LABEL:
                continue
            count += 1
            issue = clock + 1
            for src in insn.src_regs():
                t = ready.get(src.rid, 0)
                if t > issue:
                    issue = t
            extra = 0
            if cache is not None and insn.mem is not None and ev.addr is not None:
                extra = cache.penalty(ev.addr)
            if insn.dst is not None:
                ready[insn.dst.rid] = issue + r4600_latency(insn) + extra
            elif extra:
                issue += extra  # a missing store occupies the bus
            if op in _BRANCHES:
                issue += penalty
            elif op is Opcode.CALL:
                # Pipeline drain on call boundaries.
                issue += 1
            clock = issue
        return TimingResult(cycles=clock, instructions=count)
