"""Functional RTL executor.

Interprets lowered (and possibly rescheduled) RTL, producing:

* the program's observable results (return value, output, final memory) —
  used by tests to prove that HLI-guided scheduling preserves semantics;
* a dynamic instruction trace consumed by the timing models
  (:mod:`repro.machine.pipeline`, :mod:`repro.machine.superscalar`).

The machine is 32-bit MIPS-like: byte-addressed memory, C-style
truncating integer division, wrap-around 32-bit integer arithmetic.
External functions (printf, getchar, sqrt, malloc, ...) are serviced by
built-in handlers so SPEC-shaped workloads run without an OS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..backend.rtl import Insn, Opcode, Reg, RTLFunction, RTLProgram
from ..obs import metrics, trace


class ExecutionError(Exception):
    """Raised on runtime faults (bad opcode, step-limit, missing function)."""


class _ExitProgram(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


@dataclass
class TraceEvent:
    """One executed instruction, with its resolved memory address (if any)."""

    insn: Insn
    addr: Optional[int] = None


@dataclass
class ExecResult:
    """Observable outcome of one program run."""

    ret: object = None
    output: list[str] = field(default_factory=list)
    steps: int = 0
    trace: list[TraceEvent] = field(default_factory=list)
    memory: dict[int, object] = field(default_factory=dict)


def _s32(v: int) -> int:
    """Wrap to signed 32-bit."""
    v &= 0xFFFFFFFF
    return v - 0x100000000 if v >= 0x80000000 else v


def _cdiv(a: int, b: int) -> int:
    """C-style truncating division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _cmod(a: int, b: int) -> int:
    return a - _cdiv(a, b) * b


class Executor:
    """Interpret an RTL program."""

    def __init__(
        self,
        program: RTLProgram,
        input_text: str = "",
        max_steps: int = 50_000_000,
        collect_trace: bool = True,
    ) -> None:
        self.program = program
        self.memory: dict[int, object] = dict(program.init_data)
        self.input = input_text
        self.input_pos = 0
        self.max_steps = max_steps
        self.collect_trace = collect_trace
        self.steps = 0
        self.trace: list[TraceEvent] = []
        self.output: list[str] = []
        self._heap_next = 0x4000000
        self._rand_state = 12345

    # -- public API --------------------------------------------------------

    def run(self, entry: str = "main", args: tuple = ()) -> ExecResult:
        """Execute ``entry`` with integer/float arguments."""
        ret = None
        with trace.span("machine.execute", entry=entry):
            try:
                ret = self._call(entry, tuple(args))
            except _ExitProgram as e:
                ret = e.code
        if metrics.is_enabled():
            metrics.add("machine.dynamic_insns", len(self.trace))
            metrics.add("machine.steps", self.steps)
        return ExecResult(
            ret=ret,
            output=self.output,
            steps=self.steps,
            trace=self.trace,
            memory=self.memory,
        )

    # -- function invocation --------------------------------------------------

    def _call(self, name: str, args: tuple) -> object:
        handler = _EXTERNALS.get(name)
        if handler is not None:
            return handler(self, args)
        fn = self.program.functions.get(name)
        if fn is None:
            raise ExecutionError(f"call to unknown function '{name}'")
        return self._run_function(fn, args)

    def _run_function(self, fn: RTLFunction, args: tuple) -> object:
        regs: dict[int, object] = {}
        for reg, val in zip(fn.param_regs, args):
            regs[reg.rid] = val
        labels = fn.labels()
        insns = fn.insns
        pc = 0
        n = len(insns)
        mem = self.memory
        trace = self.trace
        collect = self.collect_trace
        while pc < n:
            self.steps += 1
            if self.steps > self.max_steps:
                raise ExecutionError(f"step limit exceeded in {fn.name}")
            insn = insns[pc]
            op = insn.op
            addr: Optional[int] = None
            if op is Opcode.LABEL or op is Opcode.NOP:
                pc += 1
                continue
            if op is Opcode.LI:
                regs[insn.dst.rid] = insn.imm
            elif op is Opcode.MOVE:
                regs[insn.dst.rid] = self._val(regs, insn.srcs[0])
            elif op is Opcode.LA:
                addr_v = self.program.globals_layout.get(insn.symbol)
                if addr_v is None:
                    raise ExecutionError(f"unknown symbol '{insn.symbol}'")
                regs[insn.dst.rid] = addr_v[0]
            elif op is Opcode.LOAD:
                addr = self._val(regs, insn.mem.addr)
                regs[insn.dst.rid] = mem.get(addr, 0.0 if insn.is_float else 0)
            elif op is Opcode.STORE:
                addr = self._val(regs, insn.mem.addr)
                mem[addr] = self._val(regs, insn.srcs[0])
            elif op is Opcode.J:
                if collect:
                    trace.append(TraceEvent(insn))
                pc = labels[insn.label]
                continue
            elif op is Opcode.BEQZ or op is Opcode.BNEZ:
                cond = self._val(regs, insn.srcs[0])
                taken = (cond == 0) if op is Opcode.BEQZ else (cond != 0)
                if collect:
                    trace.append(TraceEvent(insn))
                if taken:
                    pc = labels[insn.label]
                    continue
                pc += 1
                continue
            elif op is Opcode.CALL:
                if collect:
                    trace.append(TraceEvent(insn))
                call_args = tuple(self._val(regs, s) for s in insn.srcs)
                result = self._call(insn.callee, call_args)
                if insn.dst is not None:
                    regs[insn.dst.rid] = result
                pc += 1
                continue
            elif op is Opcode.RET:
                if collect:
                    trace.append(TraceEvent(insn))
                if fn.ret_reg is not None and fn.ret_reg.rid in regs:
                    return regs[fn.ret_reg.rid]
                return 0
            else:
                regs[insn.dst.rid] = self._alu(insn, regs)
            if collect:
                trace.append(TraceEvent(insn, addr))
            pc += 1
        return 0

    @staticmethod
    def _val(regs: dict[int, object], src) -> object:
        if isinstance(src, Reg):
            return regs.get(src.rid, 0)
        return src

    def _alu(self, insn: Insn, regs: dict[int, object]) -> object:
        op = insn.op
        a = self._val(regs, insn.srcs[0])
        b = self._val(regs, insn.srcs[1]) if len(insn.srcs) > 1 else None
        if op is Opcode.ADD:
            r = a + b
            return r if insn.is_float else _s32(int(r))
        if op is Opcode.SUB:
            r = a - b
            return r if insn.is_float else _s32(int(r))
        if op is Opcode.MUL:
            r = a * b
            return r if insn.is_float else _s32(int(r))
        if op is Opcode.DIV:
            if insn.is_float:
                return a / b if b != 0 else math.inf
            if b == 0:
                raise ExecutionError(f"integer division by zero at line {insn.line}")
            return _s32(_cdiv(int(a), int(b)))
        if op is Opcode.MOD:
            if b == 0:
                raise ExecutionError(f"integer modulo by zero at line {insn.line}")
            return _s32(_cmod(int(a), int(b)))
        if op is Opcode.NEG:
            return -a if insn.is_float else _s32(-int(a))
        if op is Opcode.NOT:
            return _s32(~int(a))
        if op is Opcode.AND:
            return _s32(int(a) & int(b))
        if op is Opcode.OR:
            return _s32(int(a) | int(b))
        if op is Opcode.XOR:
            return _s32(int(a) ^ int(b))
        if op is Opcode.SHL:
            return _s32(int(a) << (int(b) & 31))
        if op is Opcode.SHR:
            return _s32(int(a) >> (int(b) & 31))
        if op is Opcode.SLT:
            return 1 if a < b else 0
        if op is Opcode.SLE:
            return 1 if a <= b else 0
        if op is Opcode.SEQ:
            return 1 if a == b else 0
        if op is Opcode.SNE:
            return 1 if a != b else 0
        if op is Opcode.CVT_IF:
            return float(a)
        if op is Opcode.CVT_FI:
            return _s32(int(a))
        raise ExecutionError(f"unhandled opcode {op}")  # pragma: no cover

    # -- externals ----------------------------------------------------------------

    def _getchar(self) -> int:
        if self.input_pos >= len(self.input):
            return -1
        c = ord(self.input[self.input_pos])
        self.input_pos += 1
        return c

    def _malloc(self, size: int) -> int:
        addr = self._heap_next
        self._heap_next += max(8, (int(size) + 7) // 8 * 8)
        return addr

    def _rand(self) -> int:
        self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rand_state


def _ext_printf(ex: Executor, args: tuple) -> int:
    fmt = args[0] if args else ""
    try:
        rendered = str(fmt) % tuple(args[1:]) if args[1:] else str(fmt)
    except (TypeError, ValueError):
        rendered = " ".join(str(a) for a in args)
    ex.output.append(rendered)
    return len(rendered)


_EXTERNALS = {
    "printf": _ext_printf,
    "putchar": lambda ex, a: (ex.output.append(chr(int(a[0]) & 0xFF)), int(a[0]))[1],
    "getchar": lambda ex, a: ex._getchar(),
    "exit": lambda ex, a: (_ for _ in ()).throw(_ExitProgram(int(a[0]) if a else 0)),
    "malloc": lambda ex, a: ex._malloc(int(a[0])),
    "free": lambda ex, a: 0,
    "rand": lambda ex, a: ex._rand(),
    "abs": lambda ex, a: abs(int(a[0])),
    "sqrt": lambda ex, a: math.sqrt(abs(float(a[0]))),
    "fabs": lambda ex, a: abs(float(a[0])),
    "sin": lambda ex, a: math.sin(float(a[0])),
    "cos": lambda ex, a: math.cos(float(a[0])),
    "exp": lambda ex, a: math.exp(min(float(a[0]), 700.0)),
    "log": lambda ex, a: math.log(abs(float(a[0])) + 1e-300),
    "pow": lambda ex, a: math.pow(float(a[0]), float(a[1])),
}


def execute(
    program: RTLProgram,
    entry: str = "main",
    args: tuple = (),
    input_text: str = "",
    collect_trace: bool = True,
    max_steps: int = 50_000_000,
) -> ExecResult:
    """Run ``program`` from ``entry`` and return the observable result."""
    ex = Executor(
        program, input_text=input_text, max_steps=max_steps, collect_trace=collect_trace
    )
    return ex.run(entry, args)
