"""Per-key request coalescing: duplicate in-flight work runs once.

When N clients ask the daemon to compile the same (source, filename,
options) at the same moment, only the first request (the *leader*)
executes the pipeline; the other N-1 (*followers*) await the leader's
result and receive byte-identical responses.  This is the classic
"singleflight" pattern: it protects the cold path the artifact cache
cannot — the cache only helps *after* a result is stored, while the
coalescer collapses the thundering herd *while* it is being computed.

The shared computation runs in its own task, deliberately not tied to
any request's lifetime: a leader whose client disconnects (or whose
per-request deadline fires) must not cancel work that followers are
still waiting for — and even with no waiters left, finishing the
computation populates the cache for the next asker.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

__all__ = ["Coalescer"]


class Coalescer:
    """Async singleflight table.  All methods run on the event loop."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Task] = {}
        #: followers served from an in-flight leader (the saved executions)
        self.coalesced_hits = 0
        #: leader executions actually started
        self.executions = 0

    def inflight_keys(self) -> int:
        return len(self._inflight)

    async def run(self, key: str, thunk: Callable[[], Awaitable]) -> object:
        """Return ``thunk()``'s result, sharing it with concurrent callers.

        The first caller for ``key`` starts ``thunk()`` in a standalone
        task; every caller (leader included) awaits that task through
        :func:`asyncio.shield`, so cancelling one request never cancels
        the shared work.  Exceptions propagate to every waiter.
        """
        task = self._inflight.get(key)
        if task is None or task.done():
            self.executions += 1
            task = asyncio.ensure_future(thunk())
            self._inflight[key] = task
            task.add_done_callback(lambda _t, _k=key: self._forget(_k, _t))
        else:
            self.coalesced_hits += 1
        return await asyncio.shield(task)

    def _forget(self, key: str, task: asyncio.Task) -> None:
        if self._inflight.get(key) is task:
            del self._inflight[key]
        if task.cancelled():
            return
        # Touch the exception so an all-waiters-gone failure does not
        # spew "exception was never retrieved" into the daemon's log.
        task.exception()
