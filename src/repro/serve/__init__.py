"""repro.serve — compilation as a service.

The batch pipeline becomes a long-lived daemon: one hot
:class:`~repro.driver.session.CompilationSession` (memory LRU + sharded
disk cache) behind an asyncio TCP listener, shared by every client.

* :mod:`repro.serve.protocol` — length-prefixed JSON frames, option
  codecs, request identity;
* :mod:`repro.serve.server`   — the daemon: worker pool, per-request
  timeouts, graceful drain;
* :mod:`repro.serve.coalesce` — singleflight: duplicate in-flight
  requests share one pipeline run;
* :mod:`repro.serve.limiter`  — admission control: bounded queue,
  max in-flight, 429-style rejection with ``retry_after``;
* :mod:`repro.serve.client`   — sync client + :class:`RemoteSession`
  (a session façade with in-process fallback);
* :mod:`repro.serve.cli`      — ``repro-serve`` / ``repro-serve-client``.

See docs/SERVING.md for the protocol, backpressure semantics, and
deployment knobs; ``benchmarks/bench_serve.py`` is the load harness.
"""

from .client import (
    RemoteSession,
    ServeClient,
    ServerError,
    ServerRejected,
    ServerUnavailable,
    parse_server_spec,
)
from .protocol import DEFAULT_PORT, MAX_FRAME_BYTES, FrameTooLarge, ProtocolError
from .server import CompileServer, ServeConfig

__all__ = [
    "CompileServer",
    "DEFAULT_PORT",
    "FrameTooLarge",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "RemoteSession",
    "ServeClient",
    "ServeConfig",
    "ServerError",
    "ServerRejected",
    "ServerUnavailable",
    "parse_server_spec",
]
