"""Command-line entry points: ``repro-serve`` and ``repro-serve-client``.

Daemon::

    repro-serve --port 8454 --workers 4 --max-inflight 8 --cache-dir .hli-cache
    repro-serve --port 0          # bind a free port; printed on stdout

The daemon prints ``repro-serve: listening on HOST:PORT`` once bound
(machine-parseable — the load harness and CI scrape it), serves until
SIGTERM/SIGINT or a ``shutdown`` request, drains gracefully, and exits 0
on a clean drain.

Client::

    repro-serve-client --server 127.0.0.1:8454 ping
    repro-serve-client --server HOST:PORT compile file.c --mode hli --unroll 2
    repro-serve-client --server HOST:PORT lint file.c
    repro-serve-client --server HOST:PORT stats
    repro-serve-client --server HOST:PORT shutdown

Exit codes (client): ``0`` ok; ``1`` lint/validate findings; ``2`` bad
arguments or protocol error; ``3`` server unreachable.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from ..backend.ddg import DDGMode
from ..driver.compile import CompileOptions
from .client import ServeClient, ServerError, ServerUnavailable, parse_server_spec
from .protocol import DEFAULT_PORT, MAX_FRAME_BYTES
from .server import CompileServer, ServeConfig

__all__ = ["main", "client_main"]

_MODES = {m.value: m for m in DDGMode}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="Compilation-as-a-service daemon over one shared "
        "CompilationSession (see docs/SERVING.md).",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    p.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port; 0 binds a free one (default %(default)s)",
    )
    p.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="pipeline worker threads (default %(default)s)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="requests executing at once (default %(default)s)",
    )
    p.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="admitted requests allowed to wait; beyond this the server "
        "sheds load with retry_after (default %(default)s)",
    )
    p.add_argument(
        "--request-timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-request deadline; 0 disables (default %(default)s)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="graceful-drain budget after SIGTERM (default %(default)s)",
    )
    p.add_argument(
        "--max-frame-bytes", type=int, default=MAX_FRAME_BYTES, metavar="N",
        help="largest accepted request/response frame (default %(default)s)",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="back the shared session with a sharded on-disk artifact cache",
    )
    p.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="N",
        help="LRU-evict the disk cache above N bytes (requires --cache-dir)",
    )
    p.add_argument(
        "--max-memory-entries", type=int, default=1024, metavar="N",
        help="in-memory LRU capacity (default %(default)s)",
    )
    p.add_argument(
        "--no-metrics", action="store_true",
        help="disable the repro.obs counter registry in the daemon",
    )
    p.add_argument(
        "--trace-spans", action="store_true",
        help="record repro.obs spans too (debugging only: the span tree "
        "grows without bound in a long-lived process)",
    )
    return p


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
        max_frame_bytes=args.max_frame_bytes,
        cache_dir=args.cache_dir,
        max_memory_entries=args.max_memory_entries,
        max_disk_bytes=args.cache_max_bytes,
        metrics=not args.no_metrics,
        trace_spans=args.trace_spans,
    )


async def _run_daemon(config: ServeConfig) -> int:
    server = CompileServer(config)
    await server.start()
    server.install_signal_handlers()
    print(f"repro-serve: listening on {server.host}:{server.port}", flush=True)
    interrupted = await server.serve_until_drained()
    stats = server.counters
    print(
        f"repro-serve: drained ({stats.ok} ok, {stats.rejected} rejected, "
        f"{stats.errors} errors, {server.coalescer.coalesced_hits} coalesced, "
        f"{interrupted} in flight at drain)",
        flush=True,
    )
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cache_max_bytes is not None and not args.cache_dir:
        parser.error("--cache-max-bytes requires --cache-dir")
    if args.workers < 1 or args.max_inflight < 1:
        parser.error("--workers and --max-inflight must be >= 1")
    try:
        return asyncio.run(_run_daemon(config_from_args(args)))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        return 0


# -- repro-serve-client --------------------------------------------------------


def build_client_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve-client",
        description="Talk to a running repro-serve daemon.",
    )
    p.add_argument(
        "--server", default=f"127.0.0.1:{DEFAULT_PORT}", metavar="HOST:PORT",
        help="daemon address (default %(default)s)",
    )
    p.add_argument(
        "op",
        choices=("compile", "lint", "validate-claims", "stats", "ping", "shutdown"),
        help="request to send",
    )
    p.add_argument("files", nargs="*", help="MiniC source files (compile/lint ops)")
    p.add_argument("--mode", choices=sorted(_MODES), default="combined",
                   help="dependence mode (default %(default)s)")
    p.add_argument("--cse", action="store_true", help="run local CSE")
    p.add_argument("--licm", action="store_true", help="run LICM")
    p.add_argument("--unroll", type=int, default=1, metavar="N",
                   help="unroll factor (default: off)")
    p.add_argument("--timeout", type=float, default=120.0, metavar="SECONDS",
                   help="client-side socket timeout (default %(default)s)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="print raw JSON results")
    return p


def _print_result(op: str, name: str, result: dict, as_json: bool, out) -> int:
    if as_json:
        print(json.dumps({"file": name, "result": result}, indent=2), file=out)
    exit_code = 0
    if not as_json:
        state = result.get("cache_state", "?")
        fns = result.get("functions", [])
        print(
            f"{name}: {state} ({len(fns)} function(s), "
            f"{result.get('insns', 0)} insns, rtl {str(result.get('rtl_sha256'))[:12]})",
            file=out,
        )
    lint = result.get("lint")
    if lint is not None:
        findings = lint.get("findings", [])
        if not as_json:
            claims = sum(lint.get("claims_checked", {}).values())
            print(
                f"  lint: {len(findings)} finding(s), {claims} claim(s) replayed",
                file=out,
            )
            for f in findings:
                print(f"    {f['rule']} {f['unit']}: {f['message']}", file=out)
        if findings:
            exit_code = 1
    return exit_code


def client_main(argv: Optional[list[str]] = None) -> int:
    parser = build_client_parser()
    args = parser.parse_args(argv)
    host, port = parse_server_spec(args.server)
    options = CompileOptions(
        mode=_MODES[args.mode], cse=args.cse, licm=args.licm, unroll=args.unroll
    )
    try:
        with ServeClient(host, port, timeout=args.timeout) as client:
            if args.op == "ping":
                print("pong" if client.ping() else "no pong")
                return 0
            if args.op == "stats":
                print(json.dumps(client.stats(), indent=2))
                return 0
            if args.op == "shutdown":
                client.shutdown()
                print(f"repro-serve-client: asked {host}:{port} to drain")
                return 0
            if not args.files:
                parser.error(f"op {args.op!r} needs at least one source file")
            code = 0
            for path in args.files:
                with open(path) as f:
                    source = f.read()
                if args.op == "compile":
                    result = client.compile(source, path, options)
                elif args.op == "lint":
                    result = client.lint(source, path, options)
                else:
                    result = client.validate_claims(source, path, options)
                code = max(code, _print_result(args.op, path, result, args.as_json, sys.stdout))
            return code
    except ServerUnavailable as exc:
        print(f"repro-serve-client: {exc}", file=sys.stderr)
        return 3
    except (ServerError, OSError) as exc:
        print(f"repro-serve-client: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
