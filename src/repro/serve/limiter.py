"""Admission control for the daemon: bounded queue + max in-flight.

The controller admits at most ``max_inflight`` requests into execution
at once and lets at most ``max_queue`` more wait for a slot.  Anything
beyond that is *rejected immediately* with a ``retry_after`` hint —
load-shedding at the door (HTTP-429 semantics) instead of an unbounded
backlog whose latency grows without limit.  This is the standard
admission-control discipline of production web servers: under overload,
fail fast and cheap so the work you do accept finishes predictably.

``retry_after`` is an honest estimate: the queue's current depth times
the recent mean service time, divided by the parallel width — i.e. how
long until a slot plausibly frees up, not a constant.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..obs import metrics as _metrics

__all__ = ["AdmissionController", "Rejected", "Slot"]


class Rejected(Exception):
    """The request was refused at admission; retry after ``retry_after`` s."""

    def __init__(self, retry_after: float, reason: str) -> None:
        super().__init__(reason)
        self.retry_after = retry_after
        self.reason = reason


class Slot:
    """One admitted request's capacity reservation (async context manager)."""

    __slots__ = ("_ctrl", "_released")

    def __init__(self, ctrl: "AdmissionController") -> None:
        self._ctrl = ctrl
        self._released = False

    async def __aenter__(self) -> "Slot":
        await self._ctrl._enter(self)
        return self

    async def __aexit__(self, *exc: object) -> bool:
        self.release()
        return False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._ctrl._leave()


class AdmissionController:
    """Bounded-queue admission control.  All methods run on the event loop."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 64,
        default_retry_after: float = 0.5,
    ) -> None:
        self.max_inflight = max(1, max_inflight)
        self.max_queue = max(0, max_queue)
        self.default_retry_after = default_retry_after
        self._sem = asyncio.Semaphore(self.max_inflight)
        self.inflight = 0
        self.queued = 0
        self.rejected = 0
        self.admitted = 0
        #: exponentially-weighted mean service seconds (drives retry_after)
        self._mean_service = 0.0

    # -- admission -------------------------------------------------------------

    def admit(self) -> Slot:
        """Reserve capacity or raise :class:`Rejected`.

        Must be called (and the returned slot entered) on the event
        loop.  Capacity is charged at admission time — a queued request
        counts against ``max_queue`` until it gets an in-flight slot.
        """
        if self.queued >= self.max_queue and self._sem.locked():
            self.rejected += 1
            _metrics.inc("serve.admission.rejected")
            raise Rejected(
                self.retry_after(),
                f"at capacity ({self.inflight} in-flight, {self.queued} queued)",
            )
        self.admitted += 1
        return Slot(self)

    async def _enter(self, slot: Slot) -> None:
        self.queued += 1
        _metrics.gauge("serve.queue_depth", self.queued)
        try:
            await self._sem.acquire()
        finally:
            self.queued -= 1
            _metrics.gauge("serve.queue_depth", self.queued)
        self.inflight += 1
        _metrics.gauge("serve.inflight", self.inflight)

    def _leave(self) -> None:
        self.inflight -= 1
        _metrics.gauge("serve.inflight", self.inflight)
        self._sem.release()

    # -- hints -----------------------------------------------------------------

    def observe_service_time(self, seconds: float) -> None:
        """Feed one completed request's duration into the retry hint."""
        if self._mean_service == 0.0:
            self._mean_service = seconds
        else:
            self._mean_service += 0.2 * (seconds - self._mean_service)

    def retry_after(self) -> float:
        """Seconds until a slot plausibly frees up (never zero)."""
        if self._mean_service <= 0.0:
            return self.default_retry_after
        backlog = self.queued + self.inflight
        est = self._mean_service * max(1.0, backlog / self.max_inflight)
        return round(max(0.05, min(est, 60.0)), 3)
