"""Synchronous client for the ``repro-serve`` daemon.

Two layers:

* :class:`ServeClient` — one TCP connection speaking the framed-JSON
  protocol: ``compile`` / ``lint`` / ``validate_claims`` / ``stats`` /
  ``ping`` / ``shutdown``, plus :meth:`ServeClient.compile_retry` which
  honours the server's 429-style ``retry_after`` hints.
* :class:`RemoteSession` — a :class:`~repro.driver.session.
  CompilationSession`-shaped façade whose ``compile`` routes through a
  daemon and returns a full :class:`~repro.driver.compile.Compilation`
  (the server ships it over the wire via :mod:`repro.binfmt`),
  **falling back to in-process compilation** when the daemon is
  unreachable.  ``validate`` and ``repro-fuzz --server`` plug this in
  where a session is expected.

The object wire mode decodes server payloads through the self-describing
binfmt codec — never pickle — so a hostile or corrupted daemon response
can only ever produce registered compiler types or a clean decode error,
exactly like the on-disk artifact cache (see docs/SERVING.md).
"""

from __future__ import annotations

import base64
import socket
import threading
from typing import Optional

from ..driver.compile import Compilation, CompileOptions
from ..driver.session import CompilationSession, SessionStats
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    ProtocolError,
    options_to_wire,
    recv_frame,
    send_frame,
)

__all__ = [
    "RemoteSession",
    "ServeClient",
    "ServerError",
    "ServerRejected",
    "ServerUnavailable",
    "parse_server_spec",
]


class ServerError(Exception):
    """The server answered with ``status:"error"``."""

    def __init__(self, message: str, code: str = "internal") -> None:
        super().__init__(message)
        self.code = code


class ServerRejected(ServerError):
    """Admission control refused the request (retry after a delay)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message, code="rejected")
        self.retry_after = retry_after


class ServerUnavailable(Exception):
    """The daemon cannot be reached (connect / transport failure)."""


def parse_server_spec(spec: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``HOST``, defaulting the port)."""
    spec = spec.strip()
    if ":" in spec:
        host, _, port_s = spec.rpartition(":")
        try:
            return host or "127.0.0.1", int(port_s)
        except ValueError as exc:
            raise ValueError(f"bad server spec {spec!r} (want HOST:PORT)") from exc
    return spec or "127.0.0.1", DEFAULT_PORT


class ServeClient:
    """One connection to a daemon.  Not thread-safe: one client per thread."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 120.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self._sock: Optional[socket.socket] = None
        self._next_id = 0

    # -- connection ------------------------------------------------------------

    def connect(self) -> "ServeClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                raise ServerUnavailable(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- raw request -----------------------------------------------------------

    def request(self, op: str, **fields: object) -> dict:
        """One request/response exchange.  Raises on every non-ok status."""
        self.connect()
        self._next_id += 1
        msg = {"op": op, "id": self._next_id, **fields}
        try:
            send_frame(self._sock, msg, self.max_frame)
            resp = recv_frame(self._sock, self.max_frame)
        except ProtocolError:
            raise
        except OSError as exc:
            self.close()
            raise ServerUnavailable(f"transport failure: {exc}") from exc
        if resp is None:
            self.close()
            raise ServerUnavailable("server closed the connection")
        status = resp.get("status")
        if status == "ok":
            return resp.get("result", {})
        if status == "rejected":
            raise ServerRejected(
                resp.get("error", "rejected"),
                float(resp.get("retry_after") or 0.5),
            )
        raise ServerError(
            resp.get("error", "unknown server error"),
            code=resp.get("code", "internal"),
        )

    # -- ops -------------------------------------------------------------------

    def ping(self) -> bool:
        return self.request("ping") == "pong"

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        """Ask the daemon to drain gracefully."""
        return {"result": self.request("shutdown")}

    def compile(
        self,
        source: str,
        filename: str = "<serve>",
        options: Optional[CompileOptions] = None,
        want: str = "summary",
    ) -> dict:
        return self.request(
            "compile",
            source=source,
            filename=filename,
            options=options_to_wire(options),
            want=want,
        )

    def lint(
        self,
        source: str,
        filename: str = "<serve>",
        options: Optional[CompileOptions] = None,
    ) -> dict:
        return self.request(
            "lint", source=source, filename=filename, options=options_to_wire(options)
        )

    def validate_claims(
        self,
        source: str,
        filename: str = "<serve>",
        options: Optional[CompileOptions] = None,
    ) -> dict:
        return self.request(
            "validate-claims",
            source=source,
            filename=filename,
            options=options_to_wire(options),
        )

    def compile_wp(
        self,
        units: list,
        options: Optional[CompileOptions] = None,
        jobs: int = 1,
        partition: str = "none",
    ) -> dict:
        """Whole-program compile of ``[(filename, source), ...]`` units.

        ``jobs``/``partition`` schedule the server-side parallel back
        end; the summary reports per-unit cache states, the merged
        image's alpha-equivalent digest, and the partition plan.
        """
        return self.request(
            "compile-wp",
            units=[[f, s] for f, s in units],
            options=options_to_wire(options),
            jobs=jobs,
            partition=partition,
        )

    def compile_object(
        self,
        source: str,
        filename: str = "<serve>",
        options: Optional[CompileOptions] = None,
    ) -> Compilation:
        """Compile remotely and reconstruct the full :class:`Compilation`."""
        from .. import binfmt

        result = self.compile(source, filename, options, want="object")
        blob = base64.b64decode(result["object_b64"])
        try:
            comp = binfmt.decode(blob)
        except binfmt.BinFormatError as exc:
            raise ServerError(f"undecodable object payload: {exc}") from exc
        if not isinstance(comp, Compilation):
            raise ServerError("server returned a non-Compilation object payload")
        return comp

    def compile_retry(
        self,
        source: str,
        filename: str = "<serve>",
        options: Optional[CompileOptions] = None,
        want: str = "summary",
        retries: int = 8,
        max_backoff: float = 5.0,
    ) -> tuple[dict, int]:
        """Compile, sleeping out ``retry_after`` on rejection.

        Returns ``(result, rejections_seen)`` so load harnesses can report
        shed load separately from failures.  Raises :class:`ServerRejected`
        once the retry budget is exhausted.
        """
        import time

        rejections = 0
        while True:
            try:
                return self.compile(source, filename, options, want=want), rejections
            except ServerRejected as exc:
                rejections += 1
                if rejections > retries:
                    raise
                time.sleep(min(exc.retry_after, max_backoff))


class RemoteSession:
    """Session façade: remote compiles with graceful in-process fallback.

    Mirrors the slice of :class:`CompilationSession` the drivers use —
    ``compile``, ``stats``, ``cache_dir`` — so ``validate --server`` and
    ``repro-fuzz --server`` can swap it in without touching their phase
    logic.  ``stats`` counts the *server's* cache verdicts as seen from
    this client (one hit or miss per compile), keeping RESULTS.json
    meaningful.  After the first transport failure the session stops
    trying the daemon and serves everything from the local fallback.
    """

    def __init__(
        self,
        spec: str,
        fallback: Optional[CompilationSession] = None,
        timeout: float = 120.0,
    ) -> None:
        self.host, self.port = parse_server_spec(spec)
        self.timeout = timeout
        self.fallback = fallback or CompilationSession()
        self.stats = SessionStats()
        self.cache_dir = None
        self.remote_compiles = 0
        self.fallback_compiles = 0
        self._gave_up = False
        self._lock = threading.Lock()
        self._local = threading.local()

    def _client(self) -> ServeClient:
        client = getattr(self._local, "client", None)
        if client is None:
            client = self._local.client = ServeClient(
                self.host, self.port, timeout=self.timeout
            )
        return client

    @property
    def using_remote(self) -> bool:
        return not self._gave_up

    def compile(
        self,
        source: str,
        filename: str = "<input>",
        options: Optional[CompileOptions] = None,
        **kwargs: object,
    ) -> Compilation:
        """Compile via the daemon; fall back in-process if it is gone.

        ``kwargs`` (``external_effects``/``extra_salt``, whole-program
        mode) cannot cross the wire, so any such compile goes straight
        to the fallback session.
        """
        if self._gave_up or kwargs:
            self.fallback_compiles += 1
            return self.fallback.compile(source, filename, options, **kwargs)
        try:
            comp = self._client().compile_object(source, filename, options)
        except ServerUnavailable:
            with self._lock:
                self._gave_up = True
            self.fallback_compiles += 1
            return self.fallback.compile(source, filename, options)
        self.remote_compiles += 1
        with self._lock:
            if comp.cache_state == "memory":
                self.stats.hits_memory += 1
            elif comp.cache_state == "disk":
                self.stats.hits_disk += 1
            else:
                self.stats.misses += 1
        return comp

    def close(self) -> None:
        client = getattr(self._local, "client", None)
        if client is not None:
            client.close()
