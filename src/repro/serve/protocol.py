"""Wire protocol for ``repro-serve``: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Both directions use the same framing, so a
request/response exchange is two frames.  The framing keeps the stream
self-synchronizing: a malformed JSON body consumes exactly one frame and
the connection stays usable, while an oversized length prefix is the one
unrecoverable defect (the peer cannot skip bytes it refuses to read) and
closes the connection after an error response.

Requests are JSON objects with at least ``op`` and usually ``id`` (an
opaque client token echoed back so responses can be matched when a
client pipelines).  Responses carry ``status``:

* ``"ok"``        — ``result`` holds the op's payload;
* ``"rejected"``  — admission control refused the request; ``retry_after``
  (seconds, float) hints when to try again (HTTP-429 semantics);
* ``"error"``     — the request failed; ``error`` describes it and
  ``code`` classifies it (``bad-request``, ``compile-error``,
  ``timeout``, ``frame-too-large``, ``shutting-down``, ``internal``).

:class:`~repro.driver.compile.CompileOptions` crosses the wire as a
plain dict of its JSON-able knobs (:func:`options_to_wire` /
:func:`options_from_wire`); the latency callable is named, never
serialized as code.  Full compilations cross as base64-wrapped
:mod:`repro.binfmt` payloads (``object_b64``) — the wire carries no
pickle anywhere.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import socket
import struct
from typing import Optional

from ..backend.ddg import DDGMode
from ..driver.compile import CompileOptions
from ..machine.latencies import r4600_latency, r10000_latency

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "FrameTooLarge",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "options_to_wire",
    "options_from_wire",
    "request_key",
]

#: Default TCP port ("HLI" on a phone keypad is 454; keep it ephemeral-free).
DEFAULT_PORT = 8454

#: Default cap on one frame's payload (requests carry whole source files,
#: responses may carry binfmt-encoded compilations; 16 MiB covers both).
MAX_FRAME_BYTES = 16 << 20

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """The peer sent bytes that do not parse as a protocol frame."""


class FrameTooLarge(ProtocolError):
    """A frame's declared length exceeds the configured maximum."""

    def __init__(self, declared: int, limit: int) -> None:
        super().__init__(f"frame of {declared} bytes exceeds the {limit}-byte limit")
        self.declared = declared
        self.limit = limit


def encode_frame(obj: dict, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize ``obj`` into one wire frame (header + JSON payload)."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(len(payload), max_frame)
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame payload is {type(obj).__name__}, expected object")
    return obj


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame from an asyncio stream.

    Returns ``None`` on clean EOF before a header; raises
    :class:`FrameTooLarge` / :class:`ProtocolError` on defects and
    :class:`asyncio.IncompleteReadError` on mid-frame disconnect.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(length, max_frame)
    payload = await reader.readexactly(length)
    return _decode_payload(payload)


def send_frame(sock: socket.socket, obj: dict, max_frame: int = MAX_FRAME_BYTES) -> None:
    """Blocking send of one frame over a connected socket."""
    sock.sendall(encode_frame(obj, max_frame))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame: int = MAX_FRAME_BYTES) -> Optional[dict]:
    """Blocking read of one frame; ``None`` on clean EOF before a header."""
    first = sock.recv(_HEADER.size)
    if not first:
        return None
    header = first + (_recv_exact(sock, _HEADER.size - len(first)) if len(first) < _HEADER.size else b"")
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(length, max_frame)
    return _decode_payload(_recv_exact(sock, length))


# -- CompileOptions over the wire ---------------------------------------------

_LATENCIES = {"r4600": r4600_latency, "r10000": r10000_latency}
_LATENCY_NAMES = {id(fn): name for name, fn in _LATENCIES.items()}


def options_to_wire(opts: Optional[CompileOptions]) -> dict:
    """JSON-able view of the knobs the daemon honours.

    ``trace`` is deliberately dropped: the daemon owns its own
    observability switches and a client must not be able to leak spans
    into (or flip instrumentation on in) a shared server process.
    """
    opts = opts or CompileOptions()
    latency = _LATENCY_NAMES.get(id(opts.latency))
    if latency is None:
        raise ProtocolError(
            f"latency function {opts.latency!r} has no wire name "
            f"(known: {sorted(_LATENCIES)})"
        )
    return {
        "mode": opts.mode.value,
        "schedule": bool(opts.schedule),
        "latency": latency,
        "cse": bool(opts.cse),
        "licm": bool(opts.licm),
        "unroll": int(opts.unroll),
        "lint": bool(opts.lint),
        "pipeline": list(opts.pipeline) if opts.pipeline is not None else None,
    }


def options_from_wire(wire: Optional[dict]) -> CompileOptions:
    """Rebuild :class:`CompileOptions` from :func:`options_to_wire` output.

    Raises :class:`ProtocolError` on unknown modes/latencies or wrongly
    typed fields, so a bad request fails before any pipeline work.
    """
    wire = wire or {}
    if not isinstance(wire, dict):
        raise ProtocolError(f"options must be an object, got {type(wire).__name__}")
    mode_name = wire.get("mode", DDGMode.COMBINED.value)
    try:
        mode = DDGMode(mode_name)
    except ValueError as exc:
        raise ProtocolError(f"unknown dependence mode {mode_name!r}") from exc
    latency_name = wire.get("latency", "r4600")
    latency = _LATENCIES.get(latency_name)
    if latency is None:
        raise ProtocolError(f"unknown latency table {latency_name!r}")
    unroll = wire.get("unroll", 1)
    if not isinstance(unroll, int) or unroll < 1:
        raise ProtocolError(f"unroll must be a positive int, got {unroll!r}")
    pipeline = wire.get("pipeline")
    if pipeline is not None:
        if not isinstance(pipeline, list) or not all(isinstance(p, str) for p in pipeline):
            raise ProtocolError("pipeline must be a list of pass names")
        pipeline = tuple(pipeline)
    return CompileOptions(
        mode=mode,
        schedule=bool(wire.get("schedule", True)),
        latency=latency,
        cse=bool(wire.get("cse", False)),
        licm=bool(wire.get("licm", False)),
        unroll=unroll,
        lint=bool(wire.get("lint", False)),
        pipeline=pipeline,
    )


def request_key(op: str, source: str, filename: str, wire_opts: dict) -> str:
    """Coalescing identity of one request.

    Two requests share one pipeline execution iff every input the
    pipeline reads is identical: the op, the source text, the filename
    (it is part of the cache key), and the full option set.
    """
    h = hashlib.sha256()
    h.update(b"repro-serve-req\x00")
    h.update(op.encode("utf-8"))
    h.update(b"\x00")
    h.update(filename.encode("utf-8", "surrogatepass"))
    h.update(b"\x00")
    h.update(json.dumps(wire_opts, sort_keys=True).encode("utf-8"))
    h.update(b"\x00")
    h.update(source.encode("utf-8", "surrogatepass"))
    return h.hexdigest()
